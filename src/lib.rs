//! # `lps` — Logic Programming with Sets
//!
//! An executable, tested reproduction of **G. M. Kuper, “Logic
//! Programming with Sets”** (PODS 1987; JCSS 41, 1990): Horn-clause
//! logic programming extended with finite set values and *restricted
//! universal quantifiers* `(∀x ∈ X)`, evaluated bottom-up to the least
//! model the paper's Theorems 3/5 guarantee.
//!
//! ```
//! use lps::{Database, Dialect, Value};
//!
//! let mut db = Database::new(Dialect::Lps);
//! db.load_str(
//!     "
//!     % Example 1 of the paper: disjointness, declaratively.
//!     pair({a, b}, {c}). pair({a, b}, {b, c}).
//!     disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.
//!     ",
//! ).unwrap();
//! let mut model = db.evaluate().unwrap();
//! let ab = Value::set([Value::atom("a"), Value::atom("b")]);
//! let c = Value::set([Value::atom("c")]);
//! let bc = Value::set([Value::atom("b"), Value::atom("c")]);
//! assert!(model.holds("disj", &[ab.clone(), c]));
//! assert!(!model.holds("disj", &[ab, bc]));
//! ```
//!
//! ## Workspace layout
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`term`] (`lps-term`) | hash-consed ground terms, canonical sets, set algebra |
//! | [`syntax`] (`lps-syntax`) | the surface language: lexer, parser, pretty-printer |
//! | [`engine`] (`lps-engine`) | bottom-up evaluation: relations, plans, naive/semi-naive fixpoint, stratification, builtins, LDL grouping |
//! | [`core`](mod@core) (`lps-core`) | the paper's language: dialects, sort checking, the Theorem-6 compiler, the Theorem-10/11 translations, §4.2 set construction |
//!
//! ## Dialects
//!
//! * [`Dialect::PureLps`] — Definition 5 exactly.
//! * [`Dialect::Lps`] — positive-formula bodies (compiled per Theorem 6).
//! * [`Dialect::Elps`] — arbitrarily nested sets (§5). The default.
//! * [`Dialect::StratifiedElps`] — adds stratified negation and LDL
//!   grouping heads (§4.2, §6).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! the per-theorem experiment index.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use lps_core as core;
pub use lps_engine as engine;
pub use lps_syntax as syntax;
pub use lps_term as term;

pub use lps_core::{CoreError, Database, Dialect, Model, QueryAnswers, QueryAnswersRef, Value};
pub use lps_engine::{EvalConfig, EvalStats, FixpointStrategy, QueryPath, SetUniverse};

/// Everything needed for typical use: `use lps::prelude::*;`.
pub mod prelude {
    pub use crate::core::equiv::{assert_equivalent, compare_on};
    pub use crate::core::transform::magic::compile_query;
    pub use crate::core::transform::positive::{compile_positive_paper, normalize_program};
    pub use crate::core::transform::setof::{setof_clauses, setof_database};
    pub use crate::core::transform::translations::{
        elps_to_horn_scons, elps_to_horn_union, grouping_to_elps, horn_scons_to_elps,
        horn_union_to_elps, union_via_grouping,
    };
    pub use crate::{
        CoreError, Database, Dialect, EvalConfig, EvalStats, FixpointStrategy, Model, QueryAnswers,
        QueryPath, SetUniverse, Value,
    };
}
