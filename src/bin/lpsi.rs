//! `lpsi` — an interactive LPS/ELPS session.
//!
//! ```text
//! cargo run --bin lpsi [program.lps ...]
//! ```
//!
//! Program files (and stdin lines ending in `.`) accumulate facts and
//! rules; `?- literal.` queries evaluate the accumulated program and
//! print the matching tuples. Commands:
//!
//! ```text
//! :help                  this text
//! :dialect NAME          purelps | lps | elps | stratified
//! :universe POLICY       reject | active | subsets N
//! :model PRED            print a predicate's extension
//! :program               print the accumulated program
//! :normalized            print the Theorem-6-compiled program
//! :sorts                 print inferred predicate signatures
//! :stats                 evaluation statistics of the last run
//! :clear                 drop the accumulated program
//! :quit                  exit
//! ```

use std::io::{self, BufRead, Write};

use lps::{Database, Dialect, EvalConfig, EvalStats, SetUniverse};
use lps_syntax::{parse_program, pretty_program, Formula, Literal};

struct Session {
    dialect: Dialect,
    config: EvalConfig,
    source: String,
    last_stats: Option<EvalStats>,
}

impl Session {
    fn new() -> Self {
        Session {
            dialect: Dialect::StratifiedElps,
            config: EvalConfig::default(),
            source: String::new(),
            last_stats: None,
        }
    }

    fn database(&self) -> Result<Database, lps::CoreError> {
        let mut db = Database::with_config(self.dialect, self.config);
        db.load_str(&self.source)?;
        Ok(db)
    }

    /// Add program text (facts/rules), validating eagerly so errors
    /// point at the offending line.
    fn add(&mut self, text: &str) -> Result<(), String> {
        // Parse standalone first for a precise message.
        parse_program(text).map_err(|e| e.render(text))?;
        let mut candidate = self.source.clone();
        candidate.push_str(text);
        candidate.push('\n');
        let mut db = Database::with_config(self.dialect, self.config);
        db.load_str(&candidate).map_err(|e| e.to_string())?;
        db.check().map_err(|e| e.to_string())?;
        self.source = candidate;
        Ok(())
    }

    /// Run a query: a single literal with variables; prints matching
    /// rows.
    fn query(&mut self, text: &str) -> Result<(), String> {
        // Parse `?- body.` as a rule body by wrapping it.
        let wrapped = format!("query_result :- {text}");
        let parsed = parse_program(&wrapped).map_err(|e| e.render(&wrapped))?;
        let clause = parsed.clauses().next().ok_or("empty query")?;
        let body = clause.body.as_ref().ok_or("empty query")?;
        // Only simple positive literals are supported as queries.
        let Formula::Lit(Literal::Pred(name, args, _)) = body else {
            return Err(
                "queries must be a single predicate literal, e.g. ?- disj(X, {a}).".to_owned(),
            );
        };

        let db = self.database().map_err(|e| e.to_string())?;
        let model = db.evaluate().map_err(|e| e.to_string())?;
        self.last_stats = Some(model.stats());

        let rows = model.extension_n(name, args.len());
        // Filter rows against any ground arguments in the query.
        let ground: Vec<Option<lps::Value>> = args.iter().map(term_to_value).collect();
        let mut hits = 0usize;
        for row in &rows {
            let matches = row
                .iter()
                .zip(&ground)
                .all(|(v, g)| g.as_ref().is_none_or(|g| g == v));
            if matches {
                hits += 1;
                let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  {name}({})", rendered.join(", "));
            }
        }
        if hits == 0 {
            println!("  no.");
        } else {
            println!("  {hits} answer(s).");
        }
        Ok(())
    }
}

/// Convert a ground query term to a value (None for variables —
/// wildcard positions).
fn term_to_value(t: &lps_syntax::Term) -> Option<lps::Value> {
    use lps_syntax::Term;
    match t {
        Term::Var(..) => None,
        Term::Const(c, _) => Some(lps::Value::atom(c.clone())),
        Term::Int(i, _) => Some(lps::Value::int(*i)),
        Term::App(f, args, _) => {
            let vals: Option<Vec<_>> = args.iter().map(term_to_value).collect();
            Some(lps::Value::app(f.clone(), vals?))
        }
        Term::SetLit(elems, _) => {
            let vals: Option<Vec<_>> = elems.iter().map(term_to_value).collect();
            Some(lps::Value::set(vals?))
        }
        Term::BinOp(..) => None,
    }
}

fn print_help() {
    println!(
        "Enter facts/rules ending in `.`; `?- literal.` to query.\n\
         :help :dialect :universe :model :program :normalized :sorts :stats :clear :quit"
    );
}

fn main() -> io::Result<()> {
    let mut session = Session::new();

    // Load program files given on the command line.
    for path in std::env::args().skip(1) {
        match std::fs::read_to_string(&path) {
            Ok(text) => match session.add(&text) {
                Ok(()) => eprintln!("loaded {path}"),
                Err(e) => {
                    eprintln!("error loading {path}:\n{e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("lpsi — logic programming with sets (Kuper, PODS 1987). :help for help.");
    let stdin = io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("lps> ");
        } else {
            print!("...> ");
        }
        io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();

        // Commands only at the start of an input.
        if buffer.is_empty() && trimmed.starts_with(':') {
            let mut parts = trimmed.splitn(2, ' ');
            let cmd = parts.next().unwrap_or("");
            let arg = parts.next().unwrap_or("").trim();
            match cmd {
                ":quit" | ":q" => break,
                ":help" | ":h" => print_help(),
                ":clear" => {
                    session.source.clear();
                    println!("cleared.");
                }
                ":program" => print!("{}", session.source),
                ":stats" => match &session.last_stats {
                    Some(s) => println!(
                        "facts={} rounds={} strata={} rule_evals={} \
                         probes={} probe_rows={} probe_allocs={}",
                        s.facts_derived,
                        s.iterations,
                        s.strata,
                        s.rule_evaluations,
                        s.index_probes,
                        s.probe_rows,
                        s.probe_allocs
                    ),
                    None => println!("no evaluation yet."),
                },
                ":dialect" => {
                    session.dialect = match arg {
                        "purelps" => Dialect::PureLps,
                        "lps" => Dialect::Lps,
                        "elps" => Dialect::Elps,
                        "stratified" => Dialect::StratifiedElps,
                        other => {
                            println!("unknown dialect `{other}` (purelps|lps|elps|stratified)");
                            continue;
                        }
                    };
                    println!("dialect = {:?}", session.dialect);
                }
                ":universe" => {
                    let mut words = arg.split_whitespace();
                    session.config.set_universe = match words.next() {
                        Some("reject") => SetUniverse::Reject,
                        Some("active") => SetUniverse::ActiveSets,
                        Some("subsets") => {
                            let n: usize = words.next().and_then(|w| w.parse().ok()).unwrap_or(4);
                            SetUniverse::ActiveSubsets { max_card: n }
                        }
                        _ => {
                            println!("usage: :universe reject | active | subsets N");
                            continue;
                        }
                    };
                    println!("universe = {:?}", session.config.set_universe);
                }
                ":model" => {
                    if arg.is_empty() {
                        println!("usage: :model PRED");
                        continue;
                    }
                    match session.database().and_then(|db| db.evaluate()) {
                        Ok(model) => {
                            let rows = model.extension(arg);
                            for row in &rows {
                                let rendered: Vec<String> =
                                    row.iter().map(|v| v.to_string()).collect();
                                println!("  {arg}({})", rendered.join(", "));
                            }
                            println!("  {} fact(s).", rows.len());
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                ":normalized" => match session.database().and_then(|db| db.normalized()) {
                    Ok(p) => print!("{}", pretty_program(&p)),
                    Err(e) => println!("error: {e}"),
                },
                ":sorts" => match session.database().and_then(|db| db.check()) {
                    Ok(table) => {
                        let mut sigs: Vec<String> = table
                            .iter()
                            .map(|(name, sorts)| {
                                let rendered: Vec<&str> = sorts
                                    .iter()
                                    .map(|s| match s {
                                        lps_syntax::SortAnn::Atom => "atom",
                                        lps_syntax::SortAnn::Set => "set",
                                        lps_syntax::SortAnn::Any => "any",
                                    })
                                    .collect();
                                format!("  pred {name}({}).", rendered.join(", "))
                            })
                            .collect();
                        sigs.sort();
                        for s in sigs {
                            println!("{s}");
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
                other => println!("unknown command `{other}` — :help"),
            }
            continue;
        }

        // Accumulate multi-line input until a final `.`.
        buffer.push_str(&line);
        if !trimmed.ends_with('.') {
            continue;
        }
        let input = std::mem::take(&mut buffer);
        let input = input.trim();

        if let Some(query) = input.strip_prefix("?-") {
            if let Err(e) = session.query(query.trim()) {
                println!("error: {e}");
            }
        } else if !input.is_empty() {
            match session.add(input) {
                Ok(()) => println!("ok."),
                Err(e) => println!("error: {e}"),
            }
        }
    }
    Ok(())
}
