//! `lpsi` — an interactive LPS/ELPS session.
//!
//! ```text
//! cargo run --bin lpsi [program.lps ...]
//! cargo run --bin lpsi -- --serve ADDR [program.lps ...]
//! cargo run --bin lpsi -- --client ADDR
//! ```
//!
//! `--serve` compiles the given program files and serves them
//! concurrently on `ADDR` (e.g. `127.0.0.1:7171`; port `0` picks a
//! free port, printed as `listening on <addr>`): one writer thread
//! owns the engine, every connection gets a handler thread answering
//! point queries lock-free from epoch-published snapshots
//! (`lps_core::serve`). `--client` connects a line-oriented REPL to a
//! running server: `?- goal.` queries, bare fact clauses add facts.
//!
//! Without those flags, program files (and stdin lines ending in `.`)
//! accumulate facts and rules; `?- literal.` queries evaluate the
//! accumulated program and print the matching tuples. Commands:
//!
//! ```text
//! :help                  this text
//! :dialect NAME          purelps | lps | elps | stratified
//! :universe POLICY       reject | active | subsets N
//! :threads N|auto        worker threads for the join phase (1 =
//!                        sequential, auto = one per core); models are
//!                        bit-identical at any setting
//! :demand on|cold|off    demand-driven (magic-set) query answering
//!                        (on = retained demand spaces, cold = re-derive
//!                        per query)
//! :planner on|off|stats  cost-based join ordering and SIPS selection
//!                        (on by default; `stats` prints the
//!                        per-predicate cardinality snapshot); answers
//!                        are identical either way
//! :profile GOAL          run GOAL with per-literal profiling: the
//!                        planner's estimated rows next to the actual
//!                        probes/rows of each body literal
//! :explain GOAL          chosen adornment, SIPS, and join order for a
//!                        point goal, without running it
//! :model PRED            print a predicate's extension
//! :program               print the accumulated program
//! :normalized            print the Theorem-6-compiled program
//! :sorts                 print inferred predicate signatures
//! :stats [reset]         evaluation statistics of the session
//!                        (`reset` zeroes last-pass and cumulative)
//! :reset                 drop facts, keep rules and compiled plans
//! :clear                 drop the accumulated program
//! :quit                  exit
//! ```
//!
//! `--trace-out FILE` turns on structured tracing (`vendor/lps_trace`)
//! for the session and writes the collected spans as Chrome
//! trace-format JSON (load in `chrome://tracing` or Perfetto) when the
//! session ends. `:server-stats` in `--client` mode fetches the
//! server's metrics exposition (the `S` wire op).
//!
//! The session keeps one live engine. With demand mode on (the
//! default), queries are answered *goal-directed*: the engine
//! magic-rewrites the rules reachable from the goal for its bound/free
//! pattern, caches the specialized plan per adornment (conjunctions
//! per goal shape, constants lifted into magic seeds), and derives
//! only the tuples the goal's bindings can reach — the model is never
//! materialized unless a command (`:model`) or a non-monotone goal
//! forces it. Demand spaces are *retained*: repeated queries are pure
//! reads, new constants and ground facts entered between queries
//! continue the fixpoint incrementally (`:stats` shows `demand_cont`),
//! and `:demand cold` ablates the retention (re-derive per query).
//! Queries may be conjunctions (`?- tc(a, X), q(X, {b}).`), compiled
//! as temporary query rules. With demand off — or once a model
//! exists — queries read the materialized model, and ground facts
//! entered afterwards are folded in by the engine's incremental
//! update path (seeded semi-naive deltas) instead of recomputing from
//! scratch. Rules, dialect, or universe changes rebuild the session;
//! `:reset` keeps rules and batch plans but evicts demand plans,
//! reclaiming their relation space.

use std::io::{self, BufRead, Write};

use lps::{Database, Dialect, EvalConfig, EvalStats, Model, SetUniverse, Value};
use lps_syntax::{parse_program, pretty_program, Clause, Formula, HeadArg, Item, Literal, Program};

struct Session {
    dialect: Dialect,
    config: EvalConfig,
    source: String,
    /// Demand-driven query answering: queries compile magic-set plans
    /// instead of materializing the model first.
    demand: bool,
    /// The live engine session, created by the first query (demand
    /// mode loads it *without* materializing) and maintained
    /// incrementally; `None` until then or after anything that
    /// invalidates the compiled program (rules, dialect/universe
    /// changes, `:clear`).
    model: Option<Model>,
    last_stats: Option<EvalStats>,
}

impl Session {
    fn new() -> Self {
        Session {
            dialect: Dialect::StratifiedElps,
            config: EvalConfig::default(),
            source: String::new(),
            demand: true,
            model: None,
            last_stats: None,
        }
    }

    fn database(&self) -> Result<Database, lps::CoreError> {
        let mut db = Database::with_config(self.dialect, self.config);
        db.load_str(&self.source)?;
        Ok(db)
    }

    /// Drop the live session (rules/dialect/universe changed).
    fn invalidate(&mut self) {
        self.model = None;
    }

    /// The live session, loaded but not necessarily materialized —
    /// the entry point for demand-driven queries.
    fn ensure_session(&mut self) -> Result<&mut Model, String> {
        if self.model.is_none() {
            let db = self.database().map_err(|e| e.to_string())?;
            self.model = Some(db.session().map_err(|e| e.to_string())?);
        }
        Ok(self.model.as_mut().expect("just ensured"))
    }

    /// The up-to-date *materialized* model: built on first use, then
    /// maintained by incremental updates (a no-op when nothing is
    /// pending).
    fn ensure_model(&mut self) -> Result<&mut Model, String> {
        self.ensure_session()?;
        let model = self.model.as_mut().expect("just ensured");
        if model.needs_update() {
            model.update().map_err(|e| e.to_string())?;
        }
        let stats = model.stats();
        self.last_stats = Some(stats);
        Ok(self.model.as_mut().expect("just ensured"))
    }

    /// Add program text (facts/rules), validating eagerly so errors
    /// point at the offending line. Ground facts flow into the live
    /// session's pending deltas; anything else invalidates it.
    fn add(&mut self, text: &str) -> Result<(), String> {
        // Parse standalone first for a precise message.
        let parsed = parse_program(text).map_err(|e| e.render(text))?;
        let mut candidate = self.source.clone();
        candidate.push_str(text);
        candidate.push('\n');
        let mut db = Database::with_config(self.dialect, self.config);
        db.load_str(&candidate).map_err(|e| e.to_string())?;
        db.check().map_err(|e| e.to_string())?;
        self.source = candidate;
        if self.model.is_some() {
            let mut keep_session = false;
            if let Some(facts) = ground_facts(&parsed) {
                let model = self.model.as_mut().expect("checked above");
                keep_session = facts
                    .iter()
                    .all(|(pred, args)| model.add_fact(pred, args).is_ok());
            }
            if !keep_session {
                self.invalidate();
            }
        }
        Ok(())
    }

    /// Run a query — a goal conjunction like `?- tc(a, X), q(X, {b}).`
    /// — and print the matching rows. A single positive literal whose
    /// arguments are distinct variables or ground terms takes the
    /// point-query path (`Engine::query`, plan cached per bound/free
    /// adornment); everything else compiles as a temporary query rule.
    /// With demand mode off the model is materialized first and the
    /// same pipeline reads it.
    fn query(&mut self, text: &str) -> Result<(), String> {
        // Parse `?- body.` as a rule body by wrapping it.
        let wrapped = format!("query_goal :- {text}");
        let parsed = parse_program(&wrapped).map_err(|e| e.render(&wrapped))?;
        let clause = parsed.clauses().next().ok_or("empty query")?;
        let body = clause.body.as_ref().ok_or("empty query")?;

        let point = match body {
            Formula::Lit(Literal::Pred(name, args, _)) => {
                point_query_args(args).map(|pa| (name.clone(), pa))
            }
            _ => None,
        };

        let demand = self.demand;
        let model = if demand {
            self.ensure_session()?
        } else {
            self.ensure_model()?
        };
        let answers = match &point {
            Some((name, args)) => model.query(name, args),
            None => model.query_str(text),
        }
        .map_err(|e| e.to_string())?;
        let stats = model.stats();
        self.last_stats = Some(stats);

        match &point {
            Some((name, _)) => {
                // Point queries print in the predicate's own shape.
                for row in &answers.rows {
                    let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("  {name}({})", rendered.join(", "));
                }
            }
            None if answers.columns.is_empty() => {
                // Fully ground goal: a single empty row means yes.
                println!(
                    "  {}",
                    if answers.rows.is_empty() {
                        "no."
                    } else {
                        "yes."
                    }
                );
                return Ok(());
            }
            None => {
                // Conjunctive goal: print variable bindings.
                for row in &answers.rows {
                    let bindings: Vec<String> = answers
                        .columns
                        .iter()
                        .zip(row)
                        .map(|(c, v)| format!("{c} = {v}"))
                        .collect();
                    println!("  {}", bindings.join(", "));
                }
            }
        }
        if answers.rows.is_empty() {
            println!("  no.");
        } else {
            println!("  {} answer(s).", answers.rows.len());
        }
        Ok(())
    }

    /// `:profile <goal>` — run the goal with per-literal profiling on
    /// and print, for each rule of the chosen plan, the planner's
    /// estimated row count next to the actual probes and rows each
    /// body literal produced. The session is rebuilt first so the goal
    /// derives from a cold plan: on a retained (warm) demand space a
    /// repeat query is a pure read and there would be no per-literal
    /// work to attribute.
    fn profile(&mut self, text: &str) -> Result<(), String> {
        self.invalidate();
        self.ensure_session()?;
        let model = self.model.as_mut().expect("just ensured");
        model.engine_mut().config_mut().profile = true;
        let outcome = self.query(text);
        let report = self.model.as_mut().map(|m| {
            m.engine_mut().config_mut().profile = false;
            m.engine().last_profile().cloned()
        });
        outcome?;
        match report.flatten() {
            Some(profile) if !profile.rules.is_empty() => {
                println!("  profile (estimated vs actual rows per body literal):");
                for rule in &profile.rules {
                    println!("    {}", rule.head);
                    for lit in &rule.literals {
                        println!(
                            "      {}  est={}  probes={}  rows={}",
                            lit.pred, lit.estimated_rows, lit.probes, lit.actual_rows
                        );
                    }
                }
            }
            _ => println!(
                "  (no per-literal profile — the goal took the \
                 materialized/fallback path, not a demand plan)"
            ),
        }
        Ok(())
    }

    /// `:explain <goal>` — print the chosen adornment, SIPS policy,
    /// and per-rule join order for a point goal without running it.
    fn explain(&mut self, text: &str) -> Result<(), String> {
        let wrapped = format!("query_goal :- {text}");
        let parsed = parse_program(&wrapped).map_err(|e| e.render(&wrapped))?;
        let clause = parsed.clauses().next().ok_or("empty goal")?;
        let body = clause.body.as_ref().ok_or("empty goal")?;
        let point = match body {
            Formula::Lit(Literal::Pred(name, args, _)) => {
                point_query_args(args).map(|pa| (name.clone(), pa))
            }
            _ => None,
        };
        let Some((name, args)) = point else {
            return Err("`:explain` takes a single point goal, e.g. `:explain t(a, X).`".into());
        };
        let model = self.ensure_session()?;
        let report = model.explain(&name, &args).map_err(|e| e.to_string())?;
        for line in report.lines() {
            println!("  {line}");
        }
        Ok(())
    }
}

/// The point-query argument vector of a literal whose arguments are
/// all either variables or ground terms — `None` when any argument
/// carries structure (set patterns with variables, arithmetic) or a
/// variable repeats, in which case the goal needs the full conjunctive
/// pipeline to join correctly. Repetition counts for `_`-named
/// variables too: the lowering maps every occurrence of one name —
/// `_A` included — to the same variable, so repeats co-refer.
fn point_query_args(args: &[lps_syntax::Term]) -> Option<Vec<Option<lps::Value>>> {
    use lps_syntax::Term;
    let mut seen: Vec<&str> = Vec::new();
    let mut out = Vec::with_capacity(args.len());
    for arg in args {
        match arg {
            Term::Var(v, _) => {
                if seen.contains(&v.as_str()) {
                    return None; // repeated variable: a real join
                }
                seen.push(v);
                out.push(None);
            }
            other => out.push(Some(term_to_value(other)?)),
        }
    }
    Some(out)
}

/// If every item of `parsed` is a ground fact clause, return the
/// `(pred, args)` pairs for the live session's incremental path;
/// `None` (rules, declarations, variables, grouping heads) means the
/// session must be rebuilt.
fn ground_facts(parsed: &Program) -> Option<Vec<(String, Vec<Value>)>> {
    let mut out = Vec::new();
    for item in &parsed.items {
        let Item::Clause(Clause {
            head, body: None, ..
        }) = item
        else {
            return None;
        };
        let mut args = Vec::with_capacity(head.args.len());
        for arg in &head.args {
            let HeadArg::Term(t) = arg else { return None };
            args.push(term_to_value(t)?);
        }
        out.push((head.pred.clone(), args));
    }
    Some(out)
}

/// Convert a ground query term to a value (None for variables —
/// wildcard positions).
fn term_to_value(t: &lps_syntax::Term) -> Option<lps::Value> {
    use lps_syntax::Term;
    match t {
        Term::Var(..) => None,
        Term::Const(c, _) => Some(lps::Value::atom(c.clone())),
        Term::Int(i, _) => Some(lps::Value::int(*i)),
        Term::App(f, args, _) => {
            let vals: Option<Vec<_>> = args.iter().map(term_to_value).collect();
            Some(lps::Value::app(f.clone(), vals?))
        }
        Term::SetLit(elems, _) => {
            let vals: Option<Vec<_>> = elems.iter().map(term_to_value).collect();
            Some(lps::Value::set(vals?))
        }
        Term::BinOp(..) => None,
    }
}

fn print_help() {
    println!(
        "Enter facts/rules ending in `.`; `?- goal, goal, ....` to query.\n\
         :help :dialect :universe :threads :demand :planner :profile :explain :model :program \
         :normalized :sorts :stats [reset] :reset :clear :quit"
    );
}

/// `lpsi --serve ADDR [files…]`: compile the files and serve them.
fn serve_main(addr: &str, files: &[String], trace: bool) -> io::Result<()> {
    let mut config = EvalConfig::default();
    config.trace = config.trace || trace;
    let mut db = Database::with_config(Dialect::StratifiedElps, config);
    for path in files {
        let text = std::fs::read_to_string(path)?;
        if let Err(e) = db.load_str(&text) {
            eprintln!("error loading {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("loaded {path}");
    }
    let listener = std::net::TcpListener::bind(addr)?;
    let server = match lps::core::Server::spawn(listener, &db) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // The smoke test parses this line for the resolved port.
    println!("listening on {}", server.local_addr());
    io::stdout().flush()?;
    server.serve_forever()
}

/// `lpsi --client ADDR`: a line-oriented REPL over the wire protocol.
fn client_main(addr: &str) -> io::Result<()> {
    let mut client = lps::core::Client::connect(addr)?;
    println!(
        "connected to {addr}. `?- goal.` queries, fact clauses add facts, \
         :server-stats fetches metrics, :quit exits."
    );
    let stdin = io::stdin();
    loop {
        print!("lps> ");
        io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if input == ":quit" || input == ":q" {
            break;
        }
        if input == ":server-stats" {
            match client.server_stats()? {
                Ok(text) => {
                    for metric_line in text.lines() {
                        println!("  {metric_line}");
                    }
                }
                Err(msg) => println!("error: {msg}"),
            }
            continue;
        }
        let outcome = if let Some(goal) = input.strip_prefix("?-") {
            client.query(goal.trim())
        } else {
            client.add_fact(input).map(|r| r.map(|()| Vec::new()))
        };
        match outcome? {
            Ok(rows) => {
                for row in &rows {
                    println!("  {row}");
                }
                println!("  ok ({} answer(s)).", rows.len());
            }
            Err(msg) => println!("error: {msg}"),
        }
    }
    Ok(())
}

fn main() -> io::Result<()> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();

    // `--trace-out FILE`: collect structured spans for the whole
    // session and write Chrome trace-format JSON at exit.
    let trace_out = match argv.iter().position(|a| a == "--trace-out") {
        Some(i) => {
            if argv.len() <= i + 1 {
                eprintln!("usage: lpsi --trace-out FILE [...]");
                std::process::exit(2);
            }
            let path = argv.remove(i + 1);
            argv.remove(i);
            lps_trace::set_enabled(true);
            Some(path)
        }
        None => None,
    };

    // Serving modes bypass the interactive session entirely.
    for flag in ["--serve", "--client"] {
        if let Some(i) = argv.iter().position(|a| a == flag) {
            let Some(addr) = argv.get(i + 1) else {
                eprintln!("usage: lpsi {flag} ADDR [program.lps ...]");
                std::process::exit(2);
            };
            let files: Vec<String> = argv[..i].iter().chain(&argv[i + 2..]).cloned().collect();
            return if flag == "--serve" {
                serve_main(addr, &files, trace_out.is_some())
            } else {
                client_main(addr)
            };
        }
    }

    let mut session = Session::new();
    if trace_out.is_some() {
        // Engine span sites gate on the config flag as well as the
        // global collector toggle — turn both on.
        session.config.trace = true;
    }

    // Load program files given on the command line.
    for path in argv {
        match std::fs::read_to_string(&path) {
            Ok(text) => match session.add(&text) {
                Ok(()) => eprintln!("loaded {path}"),
                Err(e) => {
                    eprintln!("error loading {path}:\n{e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("lpsi — logic programming with sets (Kuper, PODS 1987). :help for help.");
    let stdin = io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("lps> ");
        } else {
            print!("...> ");
        }
        io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();

        // Commands only at the start of an input.
        if buffer.is_empty() && trimmed.starts_with(':') {
            let mut parts = trimmed.splitn(2, ' ');
            let cmd = parts.next().unwrap_or("");
            let arg = parts.next().unwrap_or("").trim();
            match cmd {
                ":quit" | ":q" => break,
                ":help" | ":h" => print_help(),
                ":clear" => {
                    session.source.clear();
                    session.invalidate();
                    println!("cleared.");
                }
                ":reset" => {
                    // Drop fact clauses from the source; rules (and
                    // declarations) survive, and so do the live
                    // session's compiled batch plans. Demand plans are
                    // evicted — their retained spaces are meaningless
                    // without the facts — reclaiming their relation
                    // memory.
                    let parsed = parse_program(&session.source).expect("accumulated source parses");
                    let (facts, kept): (Vec<Item>, Vec<Item>) = parsed
                        .items
                        .into_iter()
                        .partition(|item| matches!(item, Item::Clause(Clause { body: None, .. })));
                    session.source = pretty_program(&Program { items: kept });
                    if let Some(m) = session.model.as_mut() {
                        m.reset_facts();
                    }
                    println!(
                        "reset: dropped {} fact(s); rules and batch plans kept; \
                         demand plans evicted.",
                        facts.len()
                    );
                }
                ":program" => print!("{}", session.source),
                ":stats" if arg == "reset" => {
                    // Zero both the last-pass and cumulative counters.
                    // Max-merged ratios (misest_ratio) would otherwise
                    // pin at their historical worst forever, which
                    // makes before/after comparisons within one
                    // session impossible.
                    if let Some(m) = session.model.as_mut() {
                        m.engine_mut().reset_stats();
                    }
                    session.last_stats = None;
                    println!("stats reset.");
                }
                ":stats" => match &session.last_stats {
                    Some(s) => println!(
                        "facts={} rounds={} strata={} rule_evals={} \
                         probes={} probe_rows={} probe_allocs={} \
                         incr_runs={} seeded={} \
                         adorns={} magic_seeds={} demand_fb={} \
                         demand_cont={} evicted={} \
                         par_rounds={} merge_rows={} imbalance={} rebalanced={} \
                         reorders={} est_rows={} stats_refresh={} misest_ratio={}",
                        s.facts_derived,
                        s.iterations,
                        s.strata,
                        s.rule_evaluations,
                        s.index_probes,
                        s.probe_rows,
                        s.probe_allocs,
                        s.incremental_runs,
                        s.delta_seed_facts,
                        s.adornments_compiled,
                        s.magic_facts_seeded,
                        s.demand_fallbacks,
                        s.demand_continuations,
                        s.plans_evicted,
                        s.parallel_rounds,
                        s.merge_rows,
                        s.worker_imbalance,
                        s.partitions_rebalanced,
                        s.reorders_applied,
                        s.estimated_rows,
                        s.stats_refreshes,
                        s.misestimate_ratio
                    ),
                    None => println!("no evaluation yet."),
                },
                ":demand" => {
                    let mode_str = |demand: bool, retain: bool| match (demand, retain) {
                        (false, _) => "off",
                        (true, true) => "on",
                        (true, false) => "cold",
                    };
                    let (demand, retain) = match arg {
                        "on" => (true, true),
                        "cold" => (true, false),
                        "off" => (false, session.config.demand_retention),
                        "" => {
                            println!(
                                "demand = {}",
                                mode_str(session.demand, session.config.demand_retention)
                            );
                            continue;
                        }
                        other => {
                            println!("unknown demand mode `{other}` (on|cold|off)");
                            continue;
                        }
                    };
                    if retain != session.config.demand_retention {
                        // The retention toggle is an engine config
                        // change: rebuild the live session under it.
                        session.config.demand_retention = retain;
                        session.invalidate();
                    }
                    session.demand = demand;
                    println!(
                        "demand = {}",
                        mode_str(session.demand, session.config.demand_retention)
                    );
                }
                ":planner" => {
                    match arg {
                        "" => {
                            println!(
                                "planner = {}",
                                if session.config.cost_planner {
                                    "on"
                                } else {
                                    "off"
                                }
                            );
                        }
                        "on" | "off" => {
                            let on = arg == "on";
                            if on != session.config.cost_planner {
                                // Cached plans were compiled under the
                                // other ordering policy: rebuild.
                                session.config.cost_planner = on;
                                session.invalidate();
                            }
                            println!("planner = {arg}");
                        }
                        "stats" => match session.ensure_session() {
                            Ok(model) => {
                                let engine = model.engine_mut();
                                let n = engine.preds().len();
                                let mut lines = Vec::new();
                                for i in 0..n {
                                    let id = lps_engine::PredId::from_index(i);
                                    let Some(st) = engine.planner_stats().pred(id).cloned() else {
                                        continue;
                                    };
                                    if st.rows == 0 {
                                        continue;
                                    }
                                    let name = engine.pred_name(id);
                                    let distincts: Vec<String> =
                                        st.col_distinct.iter().map(usize::to_string).collect();
                                    lines.push(format!(
                                        "  {name}/{}: rows={} distinct=[{}]",
                                        st.col_distinct.len(),
                                        st.rows,
                                        distincts.join(", ")
                                    ));
                                }
                                lines.sort();
                                for line in &lines {
                                    println!("{line}");
                                }
                                println!("  {} predicate(s) with rows.", lines.len());
                            }
                            Err(e) => println!("error: {e}"),
                        },
                        other => println!("unknown planner mode `{other}` (on|off|stats)"),
                    }
                    continue;
                }
                ":dialect" => {
                    session.invalidate();
                    session.dialect = match arg {
                        "purelps" => Dialect::PureLps,
                        "lps" => Dialect::Lps,
                        "elps" => Dialect::Elps,
                        "stratified" => Dialect::StratifiedElps,
                        other => {
                            println!("unknown dialect `{other}` (purelps|lps|elps|stratified)");
                            continue;
                        }
                    };
                    println!("dialect = {:?}", session.dialect);
                }
                ":threads" => {
                    let show = |threads: usize| match threads {
                        0 => "auto".to_string(),
                        n => n.to_string(),
                    };
                    match arg {
                        "" => {
                            println!("threads = {}", show(session.config.threads));
                            continue;
                        }
                        "auto" => session.config.threads = 0,
                        n => match n.parse::<usize>() {
                            Ok(n) if n >= 1 => session.config.threads = n,
                            _ => {
                                println!("usage: :threads N | auto (N >= 1)");
                                continue;
                            }
                        },
                    }
                    // The join fan-out is invisible (bit-identical
                    // models), so the live session — retained demand
                    // spaces included — survives the change.
                    if let Some(m) = session.model.as_mut() {
                        m.engine_mut().set_threads(session.config.threads);
                    }
                    println!("threads = {}", show(session.config.threads));
                }
                ":universe" => {
                    session.invalidate();
                    let mut words = arg.split_whitespace();
                    session.config.set_universe = match words.next() {
                        Some("reject") => SetUniverse::Reject,
                        Some("active") => SetUniverse::ActiveSets,
                        Some("subsets") => {
                            let n: usize = words.next().and_then(|w| w.parse().ok()).unwrap_or(4);
                            SetUniverse::ActiveSubsets { max_card: n }
                        }
                        _ => {
                            println!("usage: :universe reject | active | subsets N");
                            continue;
                        }
                    };
                    println!("universe = {:?}", session.config.set_universe);
                }
                ":model" => {
                    if arg.is_empty() {
                        println!("usage: :model PRED");
                        continue;
                    }
                    match session.ensure_model() {
                        Ok(model) => {
                            let rows = model.extension(arg);
                            for row in &rows {
                                let rendered: Vec<String> =
                                    row.iter().map(|v| v.to_string()).collect();
                                println!("  {arg}({})", rendered.join(", "));
                            }
                            println!("  {} fact(s).", rows.len());
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                ":profile" | ":explain" => {
                    if arg.is_empty() {
                        println!("usage: {cmd} GOAL (e.g. {cmd} t(a, X).)");
                        continue;
                    }
                    // The query pipeline parses `goal.` — supply the
                    // final period if the user left it off.
                    let goal = if arg.ends_with('.') {
                        arg.to_string()
                    } else {
                        format!("{arg}.")
                    };
                    let outcome = if cmd == ":profile" {
                        session.profile(&goal)
                    } else {
                        session.explain(&goal)
                    };
                    if let Err(e) = outcome {
                        println!("error: {e}");
                    }
                }
                ":normalized" => match session.database().and_then(|db| db.normalized()) {
                    Ok(p) => print!("{}", pretty_program(&p)),
                    Err(e) => println!("error: {e}"),
                },
                ":sorts" => match session.database().and_then(|db| db.check()) {
                    Ok(table) => {
                        let mut sigs: Vec<String> = table
                            .iter()
                            .map(|(name, sorts)| {
                                let rendered: Vec<&str> = sorts
                                    .iter()
                                    .map(|s| match s {
                                        lps_syntax::SortAnn::Atom => "atom",
                                        lps_syntax::SortAnn::Set => "set",
                                        lps_syntax::SortAnn::Any => "any",
                                    })
                                    .collect();
                                format!("  pred {name}({}).", rendered.join(", "))
                            })
                            .collect();
                        sigs.sort();
                        for s in sigs {
                            println!("{s}");
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
                other => println!("unknown command `{other}` — :help"),
            }
            continue;
        }

        // Accumulate multi-line input until a final `.`.
        buffer.push_str(&line);
        if !trimmed.ends_with('.') {
            continue;
        }
        let input = std::mem::take(&mut buffer);
        let input = input.trim();

        if let Some(query) = input.strip_prefix("?-") {
            if let Err(e) = session.query(query.trim()) {
                println!("error: {e}");
            }
        } else if !input.is_empty() {
            match session.add(input) {
                Ok(()) => println!("ok."),
                Err(e) => println!("error: {e}"),
            }
        }
    }

    if let Some(path) = &trace_out {
        match lps_trace::write_chrome_trace(path) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => eprintln!("cannot write trace to {path}: {e}"),
        }
    }
    Ok(())
}
