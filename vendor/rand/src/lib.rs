//! Minimal, deterministic stand-in for the subset of `rand` 0.8 used
//! by this workspace (see `vendor/README.md`). Not cryptographically
//! secure; backed by SplitMix64.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits -> [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a `Range` by this stub.
pub trait SampleUniform: Copy {
    /// Map 64 random bits into `range` (uniform up to negligible bias).
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(bits: u64, range: Range<Self>) -> Self {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(lo < hi, "gen_range called with empty range");
                let width = (hi - lo) as u128;
                (lo + (bits as u128 % width) as i128) as Self
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0usize..17);
            assert!(x < 17);
            assert_eq!(x, b.gen_range(0usize..17));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..50).any(|_| r.gen_bool(0.0)));
        assert!((0..50).all(|_| r.gen_bool(1.0)));
    }
}
