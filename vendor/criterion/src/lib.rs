//! Minimal stand-in for the subset of `criterion` used by the `e*`
//! benches (see `vendor/README.md`). Reports a median of wall-clock
//! samples as plain text; no statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the sampling loop.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.0, f);
    }
}

/// A named collection of benchmarks sharing a `Criterion` config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.criterion, &id.0, f);
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(self.criterion, &id.0, |b| f(b, input));
    }

    /// End the group (prints nothing extra in this stub).
    pub fn finish(self) {}
}

/// A `function / parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label `function` applied to `parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, collecting up to `sample_size` samples within the
    /// measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Prevent the optimizer from discarding a value (alias of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, mut f: F) {
    let mut bencher = Bencher {
        sample_size: criterion.sample_size,
        measurement_time: criterion.measurement_time,
        warm_up_time: criterion.warm_up_time,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "{label:<40} median {:>12.1} us ({} samples)",
        median.as_secs_f64() * 1e6,
        bencher.samples.len()
    );
}

/// Bundle benchmark functions with a config, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags like
            // `--bench`; a bare `--test` run skips measurement.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut criterion = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("g", 2), &41, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
        assert!(runs >= 3);
    }
}
