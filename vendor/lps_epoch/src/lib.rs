//! A lock-free-on-read epoch pointer over `Arc<T>`: one writer swaps
//! in new versions, many readers acquire the current version without
//! ever blocking the writer or each other.
//!
//! Offline stand-in for the arc-swap dependency this workspace would
//! normally pull from crates.io (see `vendor/README.md` for the
//! vendoring discipline). The API is the small fragment the
//! `lps-engine` snapshot layer needs:
//!
//! ```
//! use std::sync::Arc;
//! let cell = lps_epoch::EpochCell::new(Arc::new(1u64));
//! assert_eq!(*cell.load(), 1);
//! cell.store(Arc::new(2));
//! assert_eq!(*cell.load(), 2);
//! ```
//!
//! # Why not `Mutex<Arc<T>>`?
//!
//! The snapshot read path is the serving hot path: every point query
//! on every connection starts with a `load()`. A mutex would serialize
//! all readers through one cache line *and* let a descheduled reader
//! block the writer's publish. Here readers only perform atomic loads
//! and stores on their own hazard slot, so read throughput scales with
//! cores and the writer never waits on a reader.
//!
//! # Protocol (hazard slots)
//!
//! The naive lock-free read — load the pointer, then bump the Arc's
//! strong count — has a classic use-after-free race: the writer could
//! swap and drop the last reference between the reader's load and its
//! increment. The standard fix, and the one used here, is a bounded
//! array of *hazard slots*:
//!
//! * **Read:** load the current pointer, claim a free slot, publish
//!   the pointer into it, then *re-load* the cell. If the cell still
//!   holds the same pointer, the publication happened before any
//!   subsequent retirement scan, so the object is protected: increment
//!   its strong count, clear the slot, return the `Arc`. If the cell
//!   moved on, release the slot and retry.
//! * **Write:** swap the new pointer in, push the old one onto a
//!   retired list, then free every retired pointer that no hazard slot
//!   mentions (scanned under the retire mutex, which only writers and
//!   the rare slot-exhausted reader touch).
//! * **Slot exhaustion:** with more concurrent readers than slots, a
//!   reader falls back to taking the retire mutex; the writer reclaims
//!   only under that same mutex, so a load performed while holding it
//!   cannot race reclamation.
//!
//! ABA (the allocator reusing a retired address for a new version) is
//! harmless: the reader's re-load validates the *cell*, not history.
//! If the same address is current again, the reader protects and
//! returns the new object at that address — never the freed one,
//! because an address is only reused after being reclaimed, and it is
//! only reclaimed while absent from every hazard slot.
//!
//! All cell/slot operations use `SeqCst`: publishes of a slot and the
//! writer's scan of the slots must observe a single total order for
//! the "published before retirement scan" argument above to hold, and
//! the cost is irrelevant next to the query work each `load()` guards.

use std::sync::atomic::{AtomicPtr, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Number of hazard slots, i.e. the number of readers that can be
/// simultaneously *inside* `load()` (a few instructions each) before
/// one falls back to the mutex path. Connections far outnumber this
/// in practice; concurrent in-flight loads do not.
const SLOTS: usize = 32;

/// A single-writer / many-reader epoch pointer over `Arc<T>`.
///
/// Readers call [`EpochCell::load`] to acquire the current version;
/// the writer calls [`EpochCell::store`] to publish a new one. Old
/// versions stay alive while any reader holds their `Arc` and are
/// freed once the last clone drops.
pub struct EpochCell<T> {
    /// Current version, as a raw pointer produced by `Arc::into_raw`.
    /// Never null.
    current: AtomicPtr<T>,
    /// Hazard slots: non-null entries are pointers some reader is in
    /// the middle of protecting.
    slots: [AtomicPtr<T>; SLOTS],
    /// Versions swapped out but possibly still being protected by an
    /// in-flight `load()`. Doubles as the slot-exhaustion fallback
    /// lock (see module docs).
    retired: Mutex<Vec<*mut T>>,
}

// SAFETY: the raw pointers all originate from `Arc<T>` and are only
// turned back into `Arc`s under the hazard protocol above; sharing
// the cell across threads is exactly sharing `Arc<T>`s, which is safe
// for `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell holding `initial` as the current version.
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            slots: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Acquire the current version. Lock-free unless more than
    /// [`SLOTS`] readers are inside `load()` at the same instant.
    pub fn load(&self) -> Arc<T> {
        loop {
            let ptr = self.current.load(SeqCst);
            let Some(slot) = self.claim_slot(ptr) else {
                // All slots busy: fall back to the retire mutex. The
                // writer only frees retired pointers while holding it,
                // so the pointer we re-load here stays alive for the
                // duration of the increment.
                let guard = self.retired.lock().unwrap();
                let ptr = self.current.load(SeqCst);
                // SAFETY: `ptr` came from `Arc::into_raw` and cannot
                // be reclaimed while we hold the retire lock.
                let arc = unsafe {
                    Arc::increment_strong_count(ptr);
                    Arc::from_raw(ptr)
                };
                drop(guard);
                return arc;
            };
            // Validate: if the cell still holds `ptr`, our slot store
            // is ordered before any retirement scan that could free
            // it, so `ptr` is protected.
            if self.current.load(SeqCst) == ptr {
                // SAFETY: `ptr` came from `Arc::into_raw`; the hazard
                // slot keeps it from being reclaimed until cleared,
                // and the increment happens before the clear.
                let arc = unsafe {
                    Arc::increment_strong_count(ptr);
                    Arc::from_raw(ptr)
                };
                self.slots[slot].store(std::ptr::null_mut(), SeqCst);
                return arc;
            }
            // The writer moved on between our load and the slot store;
            // release and retry against the new current.
            self.slots[slot].store(std::ptr::null_mut(), SeqCst);
        }
    }

    /// Publish `next` as the current version and reclaim retired
    /// versions no reader is protecting.
    pub fn store(&self, next: Arc<T>) {
        let old = self.current.swap(Arc::into_raw(next) as *mut T, SeqCst);
        let mut retired = self.retired.lock().unwrap();
        retired.push(old);
        // Reclaim every retired pointer absent from all hazard slots.
        // Holding the lock here is what makes the slot-exhaustion
        // fallback in `load()` sound.
        retired.retain(|&p| {
            if self.slots.iter().any(|s| s.load(SeqCst) == p) {
                return true;
            }
            // SAFETY: `p` came from `Arc::into_raw`, was swapped out
            // of `current` exactly once, and no hazard slot (hence no
            // in-flight `load`) references it; dropping the Arc
            // releases the count we took in `into_raw`.
            unsafe { drop(Arc::from_raw(p)) };
            false
        });
    }

    /// Try to claim a free hazard slot and publish `ptr` into it.
    fn claim_slot(&self, ptr: *mut T) -> Option<usize> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(std::ptr::null_mut(), ptr, SeqCst, SeqCst)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no reader can be in flight, so every slot is
        // conceptually clear and everything can be released.
        // SAFETY: `current` and each retired pointer came from
        // `Arc::into_raw` and are dropped exactly once here.
        unsafe {
            drop(Arc::from_raw(self.current.load(SeqCst)));
            for p in self.retired.get_mut().unwrap().drain(..) {
                drop(Arc::from_raw(p));
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("current", &*self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn load_returns_initial() {
        let cell = EpochCell::new(Arc::new(7u32));
        assert_eq!(*cell.load(), 7);
        assert_eq!(*cell.load(), 7);
    }

    #[test]
    fn store_publishes_new_version() {
        let cell = EpochCell::new(Arc::new(String::from("a")));
        let old = cell.load();
        cell.store(Arc::new(String::from("b")));
        assert_eq!(*cell.load(), "b");
        // The old version stays valid while a reader holds it.
        assert_eq!(*old, "a");
    }

    /// Counts live instances so the tests below can assert that every
    /// version is dropped exactly once.
    struct Canary {
        value: u64,
        live: Arc<AtomicUsize>,
    }

    impl Canary {
        fn new(value: u64, live: &Arc<AtomicUsize>) -> Arc<Self> {
            live.fetch_add(1, Ordering::SeqCst);
            Arc::new(Canary {
                value,
                live: Arc::clone(live),
            })
        }
    }

    impl Drop for Canary {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn versions_are_freed_exactly_once() {
        let live = Arc::new(AtomicUsize::new(0));
        {
            let cell = EpochCell::new(Canary::new(0, &live));
            for v in 1..100 {
                cell.store(Canary::new(v, &live));
            }
            // Everything except the current version (and any still in
            // the retired list pending the next scan) is freed by now;
            // dropping the cell releases the rest.
            assert!(live.load(Ordering::SeqCst) >= 1);
        }
        assert_eq!(live.load(Ordering::SeqCst), 0, "leak or double free");
    }

    #[test]
    fn held_reader_arc_keeps_version_alive_across_stores() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::new(Canary::new(0, &live));
        let held = cell.load();
        for v in 1..10 {
            cell.store(Canary::new(v, &live));
        }
        assert_eq!(held.value, 0);
        drop(held);
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_readers_and_writer_stress() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(EpochCell::new(Canary::new(0, &live)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..6)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut loads = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let snap = cell.load();
                        // Versions are published in increasing order;
                        // a reader must never observe time running
                        // backwards (a freed/torn version would show
                        // up as garbage or a stale value here).
                        assert!(snap.value >= last, "epoch went backwards");
                        last = snap.value;
                        loads += 1;
                    }
                    loads
                })
            })
            .collect();
        for v in 1..=2000u64 {
            cell.store(Canary::new(v, &live));
        }
        stop.store(true, Ordering::SeqCst);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(cell.load().value, 2000);
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0, "leak or double free");
    }

    #[test]
    fn slot_exhaustion_falls_back_without_unsafety() {
        // More reader threads than SLOTS, all hammering load() while
        // the writer publishes: some loads must take the mutex
        // fallback; the assertions are the same either way.
        let live = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(EpochCell::new(Canary::new(0, &live)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..SLOTS + 4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let _ = cell.load();
                    }
                })
            })
            .collect();
        for v in 1..=200u64 {
            cell.store(Canary::new(v, &live));
        }
        stop.store(true, Ordering::SeqCst);
        for h in readers {
            h.join().unwrap();
        }
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0, "leak or double free");
    }

    #[test]
    fn debug_renders_current_value() {
        let cell = EpochCell::new(Arc::new(5i32));
        assert!(format!("{cell:?}").contains('5'));
    }
}
