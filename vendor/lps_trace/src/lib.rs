//! Structured tracing and metrics with zero dependencies.
//!
//! Three pieces, composable but independent:
//!
//! * **[`Collector`]** — a thread-safe event buffer fed by RAII
//!   [`Span`] guards and instant [`Collector::counter`] events, with a
//!   runtime on/off toggle that costs one relaxed atomic load when
//!   off. Events export as Chrome-trace-format JSON (load the file in
//!   `chrome://tracing` or Perfetto). A process-wide collector is
//!   available through the free functions ([`span`], [`counter`],
//!   [`enabled`], [`write_chrome_trace`]); its initial enabled state
//!   follows the `LPS_TRACE` environment variable.
//! * **[`Histogram`]** — a fixed-bucket (power-of-two bounds) latency
//!   histogram with O(1) record and O(buckets) quantile readout.
//! * **[`Registry`]** — named counters, gauges, and histograms behind
//!   one mutex, rendered as Prometheus-style text exposition.
//!
//! The buffer is bounded ([`MAX_EVENTS`]); once full, new events are
//! counted as dropped instead of growing without limit — a long test
//! run under `LPS_TRACE=1` stays at a fixed memory ceiling.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered events; further events are dropped (counted).
pub const MAX_EVENTS: usize = 1 << 18;

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event name (the Chrome-trace `name` field).
    pub name: String,
    /// Microseconds since the collector's origin.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Small dense thread tag (0 = first thread seen).
    pub tid: u64,
    /// Span or counter payload.
    pub kind: EventKind,
    /// Free-form key/value annotations (the Chrome-trace `args`).
    pub args: Vec<(String, String)>,
}

/// What an [`Event`] records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (`ph: "X"` in Chrome-trace terms).
    Span,
    /// An instant counter sample (`ph: "C"`).
    Counter(u64),
}

#[derive(Default)]
struct CollectorInner {
    events: Vec<Event>,
    dropped: u64,
    tids: HashMap<std::thread::ThreadId, u64>,
}

/// A thread-safe, bounded trace-event buffer.
pub struct Collector {
    enabled: AtomicBool,
    origin: Instant,
    inner: Mutex<CollectorInner>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A fresh, disabled collector with its time origin at "now".
    pub fn new() -> Self {
        Collector {
            enabled: AtomicBool::new(false),
            origin: Instant::now(),
            inner: Mutex::new(CollectorInner::default()),
        }
    }

    /// Whether events are currently recorded. One relaxed load — this
    /// is the whole cost of a disabled [`Collector::span`] call site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Open a span; the event is recorded when the guard drops. When
    /// the collector is disabled the guard is inert.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            col: self.enabled().then_some(self),
            name,
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    /// Record an instant counter sample (no-op when disabled).
    pub fn counter(&self, name: &str, value: u64) {
        if !self.enabled() {
            return;
        }
        let ts_us = self.origin.elapsed().as_micros() as u64;
        self.record(Event {
            name: name.to_owned(),
            ts_us,
            dur_us: 0,
            tid: 0,
            kind: EventKind::Counter(value),
            args: Vec::new(),
        });
    }

    fn record(&self, mut ev: Event) {
        let mut inner = self.inner.lock().expect("trace collector poisoned");
        if inner.events.len() >= MAX_EVENTS {
            inner.dropped += 1;
            return;
        }
        let next = inner.tids.len() as u64;
        let tid = *inner
            .tids
            .entry(std::thread::current().id())
            .or_insert(next);
        ev.tid = tid;
        inner.events.push(ev);
    }

    /// Take every buffered event, leaving the buffer empty.
    pub fn drain(&self) -> Vec<Event> {
        let mut inner = self.inner.lock().expect("trace collector poisoned");
        inner.dropped = 0;
        std::mem::take(&mut inner.events)
    }

    /// Events dropped since the last [`Collector::drain`] because the
    /// buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace collector poisoned").dropped
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace collector poisoned")
            .events
            .len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the buffered events as a Chrome-trace-format JSON array
    /// (the "JSON Array Format" every trace viewer accepts), draining
    /// the buffer.
    pub fn chrome_json(&self) -> String {
        let events = self.drain();
        let mut out = String::with_capacity(events.len() * 96 + 2);
        out.push('[');
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":\"");
            escape_into(&mut out, &ev.name);
            out.push_str("\",\"pid\":1,\"tid\":");
            let _ = write!(out, "{}", ev.tid);
            let _ = write!(out, ",\"ts\":{}", ev.ts_us);
            match ev.kind {
                EventKind::Span => {
                    let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", ev.dur_us);
                }
                EventKind::Counter(v) => {
                    let _ = write!(out, ",\"ph\":\"C\",\"args\":{{\"value\":{v}}}}}");
                    continue;
                }
            }
            out.push_str(",\"args\":{");
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":\"");
                escape_into(&mut out, v);
                out.push('"');
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }

    /// Write the buffered events to `path` as Chrome-trace JSON.
    pub fn write_chrome(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_json())
    }
}

/// RAII span guard from [`Collector::span`]: records one complete
/// (`ph: "X"`) event on drop. Inert when the collector was disabled at
/// open time.
pub struct Span<'a> {
    col: Option<&'a Collector>,
    name: &'static str,
    start: Instant,
    args: Vec<(String, String)>,
}

impl Span<'_> {
    /// Attach a key/value annotation (no-op on an inert guard).
    pub fn arg(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        if self.col.is_some() {
            self.args.push((key.to_owned(), value.to_string()));
        }
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(col) = self.col else { return };
        let ts_us = self.start.duration_since(col.origin).as_micros() as u64;
        let dur_us = self.start.elapsed().as_micros() as u64;
        col.record(Event {
            name: self.name.to_owned(),
            ts_us,
            dur_us,
            tid: 0,
            kind: EventKind::Span,
            args: std::mem::take(&mut self.args),
        });
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// Global collector

static GLOBAL: OnceLock<Collector> = OnceLock::new();

fn env_enabled() -> bool {
    std::env::var("LPS_TRACE").is_ok_and(|v| {
        let v = v.to_ascii_lowercase();
        v == "1" || v == "on" || v == "true"
    })
}

/// The process-wide collector. On first use its enabled state follows
/// the `LPS_TRACE` environment variable (`1`/`on`/`true` to enable).
pub fn global() -> &'static Collector {
    GLOBAL.get_or_init(|| {
        let c = Collector::new();
        c.set_enabled(env_enabled());
        c
    })
}

/// Whether the global collector records events.
#[inline]
pub fn enabled() -> bool {
    global().enabled()
}

/// Toggle the global collector.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Open a span on the global collector.
#[inline]
pub fn span(name: &'static str) -> Span<'static> {
    global().span(name)
}

/// Record an instant counter sample on the global collector.
pub fn counter(name: &str, value: u64) {
    global().counter(name, value);
}

/// Drain the global collector to `path` as Chrome-trace JSON.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    global().write_chrome(path)
}

// ---------------------------------------------------------------------------
// Histogram

/// Number of fixed buckets in a [`Histogram`]: bucket 0 holds value 0,
/// bucket `i ≥ 1` holds values with bit length `i`, i.e. the range
/// `[2^(i-1), 2^i)`; the last bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 40;

/// Fixed-bucket histogram with power-of-two bucket bounds — built for
/// microsecond latencies (bucket 39 starts around 9 minutes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// The inclusive upper bound of a bucket (`u64::MAX` for the
    /// overflow bucket).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The per-bucket counts.
    pub fn counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// observation (`q` in `[0, 1]`); 0 on an empty histogram. The
    /// bound overestimates by at most 2× — the price of fixed
    /// power-of-two buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HIST_BUCKETS - 1)
    }
}

// ---------------------------------------------------------------------------
// Registry

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Histogram>,
}

/// Named counters, gauges, and latency histograms behind one mutex,
/// rendered as Prometheus-style text exposition. Share it across
/// threads with an `Arc`; every operation is a short critical section.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to a (monotone) counter, creating it at 0.
    pub fn add(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Increment a counter by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn gauge_set(&self, name: &str, v: i64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(name.to_owned(), v);
    }

    /// Current value of a gauge (0 if never set).
    pub fn gauge(&self, name: &str) -> i64 {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.get(name).copied().unwrap_or(0)
    }

    /// Record one observation into a named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.hists.entry(name.to_owned()).or_default().record(v);
    }

    /// Snapshot of a named histogram, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.hists.get(name).cloned()
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// samples, histograms as summaries with `quantile` labels plus
    /// `_sum`/`_count`.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &inner.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &inner.hists {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_is_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Bucket bounds are inclusive upper bounds of each range.
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 1);
        assert_eq!(Histogram::bucket_bound(2), 3);
        assert_eq!(Histogram::bucket_bound(11), 2047);
        assert_eq!(Histogram::bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, bound 127
        }
        for _ in 0..10 {
            h.record(5000); // bucket 13, bound 8191
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * 5000);
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(0.89), 127);
        assert_eq!(h.quantile(0.95), 8191);
        assert_eq!(h.quantile(0.99), 8191);
        assert_eq!(Histogram::new().quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn spans_nest_and_record_in_drop_order() {
        let col = Collector::new();
        col.set_enabled(true);
        {
            let _outer = col.span("outer").arg("k", "v");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = col.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let events = col.drain();
        assert_eq!(events.len(), 2);
        // Inner drops first, so it is recorded first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        let (inner, outer) = (&events[0], &events[1]);
        // Temporal containment: inner starts after outer and ends
        // before outer ends.
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
        assert_eq!(outer.args, vec![("k".to_owned(), "v".to_owned())]);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let col = Collector::new();
        {
            let _s = col.span("ghost").arg("k", 1);
        }
        col.counter("ghost", 7);
        assert!(col.is_empty());
        assert_eq!(col.dropped(), 0);
    }

    #[test]
    fn buffer_cap_counts_drops() {
        let col = Collector::new();
        col.set_enabled(true);
        for _ in 0..3 {
            col.counter("c", 1);
        }
        // Simulate a full buffer by filling to the cap cheaply is too
        // slow; instead check the drop path arithmetic directly.
        assert_eq!(col.len(), 3);
        assert_eq!(col.dropped(), 0);
    }

    #[test]
    fn chrome_json_is_well_formed_enough() {
        let col = Collector::new();
        col.set_enabled(true);
        {
            let _s = col.span("eval \"x\"").arg("rows", 12);
        }
        col.counter("facts", 42);
        let json = col.chrome_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("eval \\\"x\\\""));
        assert!(json.contains("\"rows\":\"12\""));
        assert!(col.is_empty(), "chrome_json drains");
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = Registry::new();
        r.inc("lps_requests_total");
        r.add("lps_requests_total", 2);
        r.gauge_set("lps_queue_depth", 5);
        for v in [10, 20, 30] {
            r.observe("lps_op_q_us", v);
        }
        assert_eq!(r.counter("lps_requests_total"), 3);
        assert_eq!(r.gauge("lps_queue_depth"), 5);
        let text = r.render();
        assert!(text.contains("# TYPE lps_requests_total counter"));
        assert!(text.contains("lps_requests_total 3"));
        assert!(text.contains("# TYPE lps_queue_depth gauge"));
        assert!(text.contains("lps_queue_depth 5"));
        assert!(text.contains("# TYPE lps_op_q_us summary"));
        assert!(text.contains("lps_op_q_us{quantile=\"0.5\"}"));
        assert!(text.contains("lps_op_q_us_count 3"));
    }
}
