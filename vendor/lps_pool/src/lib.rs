//! A minimal scoped worker pool: persistent threads, borrowed closures.
//!
//! Offline stand-in for the rayon/scoped-threadpool dependency this
//! workspace would normally pull from crates.io (see `vendor/README.md`
//! for the vendoring discipline). The API is the small fragment the
//! `lps-engine` parallel evaluator needs:
//!
//! ```
//! let pool = lps_pool::Pool::new(4);
//! let mut parts = vec![0u64; 4];
//! pool.scoped(|scope| {
//!     for (i, p) in parts.iter_mut().enumerate() {
//!         scope.execute(move || *p = i as u64 * 10);
//!     }
//! });
//! assert_eq!(parts, [0, 10, 20, 30]);
//! ```
//!
//! Design points, driven by the semi-naive fixpoint's usage pattern
//! (hundreds to thousands of small fork-join rounds per evaluation):
//!
//! * **Persistent workers.** Threads are spawned once in [`Pool::new`]
//!   and reused across scopes; a round pays a queue push and a wake,
//!   not a `thread::spawn`.
//! * **Bounded spin before parking.** Workers spin briefly between
//!   rounds so back-to-back scopes usually skip the condvar round-trip,
//!   then park. The spin is short enough to stay civil on machines
//!   with fewer cores than workers.
//! * **Scoped borrows.** [`Scope::execute`] accepts closures that
//!   borrow from the caller's stack frame; [`Pool::scoped`] joins every
//!   submitted job before returning (even on panic), which is what
//!   makes the lifetime erasure below sound.
//! * **Panic propagation.** A panicking job poisons its scope; the
//!   scope re-panics on exit after all sibling jobs finish.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job as stored in the queue: lifetime-erased (see [`Scope::execute`]
/// for the soundness argument) and paired with the state of the scope
/// that submitted it.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    scope: Arc<ScopeState>,
}

/// Shared pool state: the job queue and shutdown flag.
struct Inner {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    available: Condvar,
    /// Fast-path job counter so idle workers can spin without taking
    /// the queue lock.
    jobs: AtomicUsize,
    shutdown: AtomicBool,
}

/// Per-scope completion state.
struct ScopeState {
    /// Jobs submitted and not yet finished.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// Set when any job of this scope panicked.
    panicked: AtomicBool,
}

impl ScopeState {
    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every job submitted to this scope has finished.
    fn join(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }
}

/// Iterations of `spin_loop` before an idle worker parks on the
/// condvar. Back-to-back fixpoint rounds are typically closer together
/// than this; the value is small enough that oversubscribed machines
/// (more workers than cores) don't burn a scheduling quantum spinning.
const SPIN_LIMIT: u32 = 4096;

/// A fixed-size pool of persistent worker threads.
pub struct Pool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Pool {
    /// Spawn a pool of `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Pool {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            jobs: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lps-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run a fork-join region: `f` may submit borrowing jobs through
    /// the [`Scope`]; every job completes before `scoped` returns.
    ///
    /// # Panics
    /// Panics after joining the region if any submitted job panicked
    /// (the worker thread itself survives).
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
            _marker: PhantomData,
        };
        // The guard joins the scope even when `f` itself panics —
        // without this, borrowed jobs could outlive the caller's frame.
        struct JoinGuard<'a>(&'a ScopeState);
        impl Drop for JoinGuard<'_> {
            fn drop(&mut self) {
                self.0.join();
            }
        }
        let result = {
            let _guard = JoinGuard(&scope.state);
            f(&scope)
        };
        if scope.state.panicked.load(Ordering::Acquire) {
            panic!("lps_pool: a scoped job panicked");
        }
        result
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside catch_unwind (impossible
            // for jobs, which are caught) would surface here.
            let _ = handle.join();
        }
    }
}

/// Handle for submitting borrowing jobs inside [`Pool::scoped`].
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    /// Invariance over `'scope`: closures must not be allowed to
    /// borrow for longer than the region they were submitted in.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Submit a job. It may borrow anything that outlives `'scope`;
    /// the enclosing [`Pool::scoped`] call joins it before returning.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        {
            let mut pending = self.state.pending.lock().unwrap();
            *pending += 1;
        }
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the only thing erased here is the `'scope` lifetime.
        // The job is joined before `Pool::scoped` returns (the
        // `JoinGuard` runs even on panic), so the closure and its
        // borrows never outlive the `'scope` region. The queue treats
        // the box as opaque and never clones it.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let job = Job {
            run,
            scope: Arc::clone(&self.state),
        };
        {
            let mut queue = self.pool.inner.queue.lock().unwrap();
            queue.push_back(job);
        }
        self.pool.inner.jobs.fetch_add(1, Ordering::Release);
        self.pool.inner.available.notify_one();
    }
}

fn worker_loop(inner: &Inner) {
    let mut spins: u32 = 0;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if inner.jobs.load(Ordering::Acquire) == 0 {
            // Idle: spin briefly (cheap wake for back-to-back rounds),
            // then park on the condvar.
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            let queue = inner.queue.lock().unwrap();
            let _unused = inner
                .available
                .wait_timeout_while(queue, std::time::Duration::from_millis(50), |q| {
                    q.is_empty() && !inner.shutdown.load(Ordering::Acquire)
                })
                .unwrap();
            spins = 0;
            continue;
        }
        let job = {
            let mut queue = inner.queue.lock().unwrap();
            queue.pop_front()
        };
        let Some(job) = job else {
            continue;
        };
        inner.jobs.fetch_sub(1, Ordering::AcqRel);
        spins = 0;
        if catch_unwind(AssertUnwindSafe(job.run)).is_err() {
            job.scope.panicked.store(true, Ordering::Release);
        }
        job.scope.finish_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn jobs_run_and_results_are_visible() {
        let pool = Pool::new(4);
        let mut parts = vec![0u64; 16];
        pool.scoped(|scope| {
            for (i, p) in parts.iter_mut().enumerate() {
                scope.execute(move || *p = (i as u64 + 1) * 3);
            }
        });
        let want: Vec<u64> = (0..16).map(|i| (i + 1) * 3).collect();
        assert_eq!(parts, want);
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = Pool::new(2);
        let counter = AtomicU64::new(0);
        for _ in 0..100 {
            pool.scoped(|scope| {
                for _ in 0..4 {
                    scope.execute(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn empty_scope_is_a_cheap_noop() {
        let pool = Pool::new(2);
        let out = pool.scoped(|_| 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn scoped_joins_before_returning() {
        let pool = Pool::new(2);
        let flag = AtomicBool::new(false);
        pool.scoped(|scope| {
            scope.execute(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.store(true, Ordering::Release);
            });
        });
        assert!(flag.load(Ordering::Acquire), "jobs outlived the scope");
    }

    #[test]
    fn panicking_job_poisons_the_scope_not_the_pool() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("boom"));
            });
        }));
        assert!(caught.is_err(), "scope must re-panic");
        // The pool still works afterwards.
        let counter = AtomicU64::new(0);
        pool.scoped(|scope| {
            for _ in 0..8 {
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn sibling_jobs_finish_even_when_one_panics() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                for i in 0..8 {
                    let counter = Arc::clone(&counter);
                    scope.execute(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err());
        assert_eq!(counter.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn many_concurrent_borrowing_jobs() {
        let pool = Pool::new(8);
        let mut rows = vec![0u32; 256];
        pool.scoped(|scope| {
            for chunk in rows.chunks_mut(16) {
                scope.execute(move || {
                    for (i, r) in chunk.iter_mut().enumerate() {
                        *r = i as u32;
                    }
                });
            }
        });
        for chunk in rows.chunks(16) {
            for (i, r) in chunk.iter().enumerate() {
                assert_eq!(*r, i as u32);
            }
        }
    }
}
