//! Minimal, deterministic stand-in for the subset of `proptest` used
//! by this workspace (see `vendor/README.md`).
//!
//! Cases are generated pseudo-randomly from a fixed seed, so runs are
//! reproducible. There is no shrinking: a failing case panics with the
//! generated inputs left to the assertion message.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The test driver: config and RNG.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG used by `proptest!` expansions.
        pub fn deterministic() -> Self {
            TestRng { state: 0x5DEECE66D }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `self` generates leaves and
        /// `recurse` wraps an inner strategy into one more level.
        /// `depth` bounds nesting; the size hints are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(level).boxed();
                level = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            level
        }

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let width = (hi - lo) as u128;
                    (lo + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    // A `&str` is a strategy for `String` via a small subset of regex
    // syntax: concatenations of literal characters and character
    // classes `[a-z0-9]`, each optionally repeated `{m}` or `{m,n}`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One unit: a class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern")
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m} / {m,n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let m: usize = body.parse().unwrap();
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }

    fn expand_class(class: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                out.extend((lo..=hi).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                out.push(class[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy for the full value range of a primitive type.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Primitive types with a full-range strategy.
    pub trait ArbitraryPrim: Sized {
        /// Produce a value from raw bits.
        fn from_bits(bits: u64) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl ArbitraryPrim for $t {
                fn from_bits(bits: u64) -> Self {
                    bits as $t
                }
            }
        )*};
    }

    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryPrim for bool {
        fn from_bits(bits: u64) -> bool {
            bits & 1 == 1
        }
    }

    impl<T: ArbitraryPrim> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::from_bits(rng.next_u64())
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: ArbitraryPrim>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option`s: `None` half the time.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some(inner)` or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod bits {
    //! Bit-masked integer strategies.

    /// `u8` values restricted to a bit window.
    pub mod u8 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `u8`s whose set bits lie within `[lo, hi)`.
        #[derive(Debug, Clone)]
        pub struct Masked {
            mask: u8,
        }

        impl Strategy for Masked {
            type Value = u8;
            fn generate(&self, rng: &mut TestRng) -> u8 {
                rng.next_u64() as u8 & self.mask
            }
        }

        /// Generate `u8`s that only use bits `lo..hi`.
        pub fn between(lo: u8, hi: u8) -> Masked {
            assert!(lo < hi && hi <= 8, "invalid bit window");
            let mask = (((1u16 << hi) - 1) as u8) & !((1u8 << lo) - 1);
            Masked { mask }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            // Build the strategies once (as one tuple strategy), then
            // draw from them per case.
            let strategy = ($(($strategy),)+);
            for _case in 0..config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Z][a-z0-9]{0,3}", &mut rng);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_uppercase());
            assert!(s.len() <= 4);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn ranges_and_collections_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u8..8, 0..10), &mut rng);
            assert!(v.len() < 10);
            assert!(v.iter().all(|&x| x < 8));
            let x = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&x));
            let m = Strategy::generate(&crate::bits::u8::between(0, 4), &mut rng);
            assert!(m < 16);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns bind, bodies run.
        #[test]
        fn macro_binds_patterns(mut xs in crate::collection::vec(0u8..4, 0..4), flag in any::<bool>()) {
            xs.push(0);
            prop_assert!(!xs.is_empty());
            let _ = flag;
        }

        #[test]
        fn oneof_and_recursive(v in depth_strategy()) {
            prop_assert!(v <= 3);
        }
    }

    fn depth_strategy() -> BoxedStrategy<u32> {
        let leaf = Just(0u32);
        leaf.prop_recursive(3, 8, 2, |inner| inner.prop_map(|d| (d + 1).min(3)))
    }
}
