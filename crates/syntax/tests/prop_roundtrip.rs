//! Property test: for generated ASTs, `parse(pretty(ast))` produces a
//! structurally identical AST (modulo spans — compared via a second
//! pretty-print, which erases span information deterministically).

use proptest::prelude::*;

use lps_syntax::{
    parse_program, pretty_program, ArithOp, Clause, CmpOp, Formula, HeadArg, HeadAtom, Item,
    Literal, Program, Span, Term,
};

fn var_name() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,3}".prop_map(|s| s)
}

fn const_name() -> impl Strategy<Value = String> {
    // Avoid keywords: start with a letter keywords don't start with.
    "[b-d][a-z0-9]{0,4}".prop_map(|s| s)
}

fn pred_name() -> impl Strategy<Value = String> {
    "[p-s][a-z0-9]{0,4}".prop_map(|s| s)
}

fn term_strategy(depth: u32) -> BoxedStrategy<Term> {
    let leaf = prop_oneof![
        var_name().prop_map(|v| Term::Var(v, Span::default())),
        const_name().prop_map(|c| Term::Const(c, Span::default())),
        (-50i64..50).prop_map(|i| Term::Int(i, Span::default())),
    ];
    leaf.prop_recursive(depth, 12, 3, |inner| {
        prop_oneof![
            (const_name(), proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(f, args)| Term::App(f, args, Span::default())),
            proptest::collection::vec(inner, 0..3)
                .prop_map(|elems| Term::SetLit(elems, Span::default())),
        ]
    })
    .boxed()
}

/// Arithmetic expressions: left-nested chains only, mirroring what the
/// parser can produce (the grammar has no parentheses at term level).
fn arith_strategy() -> impl Strategy<Value = Term> {
    let atom = prop_oneof![
        var_name().prop_map(|v| Term::Var(v, Span::default())),
        (0i64..50).prop_map(|i| Term::Int(i, Span::default())),
    ];
    (
        atom.clone(),
        proptest::collection::vec(
            (prop_oneof![Just(ArithOp::Add), Just(ArithOp::Sub)], atom),
            0..3,
        ),
    )
        .prop_map(|(first, rest)| {
            rest.into_iter().fold(first, |acc, (op, t)| {
                Term::BinOp(op, Box::new(acc), Box::new(t), Span::default())
            })
        })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::In),
        Just(CmpOp::NotIn),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (
            pred_name(),
            proptest::collection::vec(term_strategy(2), 0..3)
        )
            .prop_map(|(p, args)| Literal::Pred(p, args, Span::default())),
        (cmp_op(), arith_strategy(), arith_strategy()).prop_map(|(op, l, r)| Literal::Cmp(
            op,
            l,
            r,
            Span::default()
        )),
    ]
}

fn formula_strategy(depth: u32) -> BoxedStrategy<Formula> {
    let leaf = literal_strategy().prop_map(Formula::Lit);
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Formula::and),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Formula::or),
            inner
                .clone()
                .prop_map(|f| Formula::Not(Box::new(f), Span::default())),
            (var_name(), var_name(), inner.clone()).prop_map(|(v, s, body)| Formula::Forall {
                var: v,
                set: Term::Var(s, Span::default()),
                body: Box::new(body),
                span: Span::default(),
            }),
            (var_name(), var_name(), inner).prop_map(|(v, s, body)| Formula::Exists {
                var: v,
                set: Term::Var(s, Span::default()),
                body: Box::new(body),
                span: Span::default(),
            }),
        ]
    })
    .boxed()
}

fn clause_strategy() -> impl Strategy<Value = Clause> {
    let head_arg = prop_oneof![
        term_strategy(2).prop_map(HeadArg::Term),
        var_name().prop_map(|v| HeadArg::Group(v, Span::default())),
    ];
    (
        pred_name(),
        proptest::collection::vec(head_arg, 0..3),
        proptest::option::of(formula_strategy(3)),
    )
        .prop_map(|(pred, args, body)| Clause {
            head: HeadAtom {
                pred,
                args,
                span: Span::default(),
            },
            body,
            span: Span::default(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_pretty_is_identity(clauses in proptest::collection::vec(clause_strategy(), 1..4)) {
        let program = Program {
            items: clauses.into_iter().map(Item::Clause).collect(),
        };
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\nsource:\n{printed}", e.render(&printed)));
        let printed2 = pretty_program(&reparsed);
        prop_assert_eq!(&printed, &printed2, "pretty must be a fixed point of parse∘pretty");
        // Also compare structure modulo spans by erasing spans through
        // a Debug-format comparison of span-free projections.
        prop_assert_eq!(strip(&program), strip(&reparsed));
    }
}

/// Span-free structural projection used for AST comparison.
fn strip(p: &Program) -> String {
    // Pretty-printing is injective on the AST fragments we generate
    // (conservative parenthesization), so the printed form doubles as
    // a canonical structural key.
    pretty_program(p)
}
