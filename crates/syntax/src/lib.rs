//! # `lps-syntax` — surface language for LPS/ELPS
//!
//! A Prolog-flavoured concrete syntax for the language of Kuper's
//! *Logic Programming with Sets*. Identifiers starting with an
//! uppercase letter or `_` are variables; the paper's lexical sort
//! convention (lowercase `x` for atoms, uppercase `X` for sets) is
//! replaced by sort inference in `lps-core`.
//!
//! ```text
//! % Example 1/2 of the paper:
//! disj(X, Y)   :- forall U in X: forall V in Y: U != V.
//! subset(X, Y) :- forall U in X: U in Y.
//!
//! % Example 3 (a Theorem-6 body: disjunction under a quantifier):
//! union(X, Y, Z) :- subset(X, Z), subset(Y, Z),
//!                   forall W in Z: (W in X ; W in Y).
//!
//! % Example 4 (unnest), and an LDL grouping head (Definition 14):
//! s(X, Y)     :- r(X, Ys), Y in Ys.
//! owns(P, <C>) :- car(P, C).
//!
//! % Facts, set literals, integers, arithmetic, negation:
//! parts(bike, {wheel, frame}).
//! cost(wheel, 30).
//! expensive(P) :- cost(P, N), N > 100.
//! lonely(X) :- item(X), not connected(X).
//! ```
//!
//! Grammar (see [`parser`] for the full rules):
//!
//! ```text
//! program  := item* ;
//! item     := "pred" NAME "(" sort ("," sort)* ")" "."   % optional decls
//!           | clause ;
//! clause   := head (":-" formula)? "." ;
//! head     := NAME ("(" headarg ("," headarg)* ")")? ;
//! headarg  := term | "<" VAR ">" ;                        % grouping
//! formula  := conj (";" conj)* ;                          % disjunction
//! conj     := prim ("," prim)* ;
//! prim     := "(" formula ")" | quant | "not" prim | literal ;
//! quant    := ("forall"|"exists") VAR "in" term
//!                 ("," quant | ":" prim) ;
//! literal  := NAME ("(" term ("," term)* ")")?
//!           | expr relop expr ;
//! relop    := "=" | "!=" | "in" | "notin"
//!           | "<" | "<=" | ">" | ">=" ;
//! expr     := mul (("+"|"-") mul)* ;
//! mul      := term ("*" term)* ;
//! term     := VAR | NAME | INT | "-" INT
//!           | NAME "(" term ("," term)* ")"
//!           | "{" (term ("," term)*)? "}" ;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{
    ArithOp, Clause, CmpOp, Formula, HeadArg, HeadAtom, Item, Literal, PredDecl, Program, SortAnn,
    Term,
};
pub use error::{Span, SyntaxError};
pub use parser::parse_program;
pub use pretty::pretty_program;

/// Parse a single clause (convenience for tests and examples).
pub fn parse_clause(src: &str) -> Result<Clause, SyntaxError> {
    let program = parse_program(src)?;
    let mut clauses: Vec<Clause> = program
        .items
        .into_iter()
        .filter_map(|i| match i {
            Item::Clause(c) => Some(c),
            Item::Decl(_) => None,
        })
        .collect();
    match clauses.len() {
        1 => Ok(clauses.pop().expect("len checked")),
        n => Err(SyntaxError::new(
            Span::point(0),
            format!("expected exactly one clause, found {n}"),
        )),
    }
}
