//! Hand-written lexer for the LPS surface syntax.
//!
//! `%` starts a line comment. Whitespace separates tokens. Identifiers
//! are `[A-Za-z_][A-Za-z0-9_]*`; the `$` character is reserved for
//! compiler-generated auxiliary predicate names (Theorem 6) and is
//! rejected here so generated names can never collide with user names.

use crate::error::{Span, SyntaxError};
use crate::token::{Token, TokenKind};

/// Tokenize `src` completely, ending with an [`TokenKind::Eof`] token.
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'%' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => tokens.push(single(TokenKind::LParen, &mut pos)),
            b')' => tokens.push(single(TokenKind::RParen, &mut pos)),
            b'{' => tokens.push(single(TokenKind::LBrace, &mut pos)),
            b'}' => tokens.push(single(TokenKind::RBrace, &mut pos)),
            b',' => tokens.push(single(TokenKind::Comma, &mut pos)),
            b';' => tokens.push(single(TokenKind::Semi, &mut pos)),
            b'.' => tokens.push(single(TokenKind::Dot, &mut pos)),
            b'+' => tokens.push(single(TokenKind::Plus, &mut pos)),
            b'-' => tokens.push(single(TokenKind::Minus, &mut pos)),
            b'*' => tokens.push(single(TokenKind::Star, &mut pos)),
            b'=' => tokens.push(single(TokenKind::Eq, &mut pos)),
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(double(TokenKind::Le, &mut pos));
                } else {
                    tokens.push(single(TokenKind::Lt, &mut pos));
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(double(TokenKind::Ge, &mut pos));
                } else {
                    tokens.push(single(TokenKind::Gt, &mut pos));
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(double(TokenKind::Ne, &mut pos));
                } else {
                    return Err(SyntaxError::new(
                        Span::new(pos, pos + 1),
                        "unexpected `!` (did you mean `!=` or `not`?)",
                    ));
                }
            }
            b':' => {
                if bytes.get(pos + 1) == Some(&b'-') {
                    tokens.push(double(TokenKind::Turnstile, &mut pos));
                } else {
                    tokens.push(single(TokenKind::Colon, &mut pos));
                }
            }
            b'0'..=b'9' => {
                let start = pos;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text = &src[start..pos];
                let value: i64 = text.parse().map_err(|_| {
                    SyntaxError::new(
                        Span::new(start, pos),
                        format!("integer literal `{text}` out of range"),
                    )
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span: Span::new(start, pos),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let text = &src[start..pos];
                tokens.push(Token {
                    kind: TokenKind::classify_ident(text),
                    span: Span::new(start, pos),
                });
            }
            b'$' => {
                return Err(SyntaxError::new(
                    Span::new(pos, pos + 1),
                    "`$` is reserved for compiler-generated names",
                ));
            }
            _ => {
                // Report the whole UTF-8 character, not just a byte.
                let ch = src[pos..].chars().next().expect("in-bounds char");
                return Err(SyntaxError::new(
                    Span::new(pos, pos + ch.len_utf8()),
                    format!("unexpected character `{ch}`"),
                ));
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(src.len()),
    });
    Ok(tokens)
}

fn single(kind: TokenKind, pos: &mut usize) -> Token {
    let span = Span::new(*pos, *pos + 1);
    *pos += 1;
    Token { kind, span }
}

fn double(kind: TokenKind, pos: &mut usize) -> Token {
    let span = Span::new(*pos, *pos + 2);
    *pos += 2;
    Token { kind, span }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_clause_skeleton() {
        use TokenKind::*;
        assert_eq!(
            kinds("p(X) :- q(X)."),
            vec![
                Name("p".into()),
                LParen,
                Var("X".into()),
                RParen,
                Turnstile,
                Name("q".into()),
                LParen,
                Var("X".into()),
                RParen,
                Dot,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_quantifier_and_set_literal() {
        use TokenKind::*;
        assert_eq!(
            kinds("forall U in X: U != y, {a, 1}"),
            vec![
                Forall,
                Var("U".into()),
                In,
                Var("X".into()),
                Colon,
                Var("U".into()),
                Ne,
                Name("y".into()),
                Comma,
                LBrace,
                Name("a".into()),
                Comma,
                Int(1),
                RBrace,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("< <= > >= = != + - *"),
            vec![Lt, Le, Gt, Ge, Eq, Ne, Plus, Minus, Star, Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("p. % trailing comment\n% full line\nq."),
            vec![Name("p".into()), Dot, Name("q".into()), Dot, Eof]
        );
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::point(5));
    }

    #[test]
    fn rejects_reserved_dollar() {
        let err = lex("$aux").unwrap_err();
        assert!(err.message.contains("reserved"));
    }

    #[test]
    fn rejects_stray_bang() {
        let err = lex("p ! q").unwrap_err();
        assert!(err.message.contains("!="));
    }

    #[test]
    fn rejects_unknown_character_with_full_char_span() {
        let err = lex("p § q").unwrap_err();
        assert_eq!(err.span.end - err.span.start, '§'.len_utf8());
    }

    #[test]
    fn rejects_overflowing_integer() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   % only comment"), vec![TokenKind::Eof]);
    }
}
