//! Token definitions for the LPS surface syntax.

use std::fmt;

use crate::error::Span;

/// Kinds of tokens produced by the lexer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Lowercase-initial identifier: constant, function, or predicate
    /// name.
    Name(String),
    /// Uppercase- or `_`-initial identifier: a variable.
    Var(String),
    /// Integer literal (non-negative; unary minus is handled by the
    /// parser).
    Int(i64),

    // Keywords.
    /// `forall` — restricted universal quantifier (Definition 4).
    Forall,
    /// `exists` — restricted existential quantifier (Definition 12).
    Exists,
    /// `in` — membership, as quantifier binder or comparison.
    In,
    /// `notin` — negated membership comparison.
    NotIn,
    /// `not` — negation-as-failure (stratified; §4.2).
    Not,
    /// `pred` — predicate sort declaration.
    Pred,

    // Punctuation and operators.
    /// `:-`
    Turnstile,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Classify an identifier: keyword, variable, or name.
    pub fn classify_ident(text: &str) -> TokenKind {
        match text {
            "forall" => TokenKind::Forall,
            "exists" => TokenKind::Exists,
            "in" => TokenKind::In,
            "notin" => TokenKind::NotIn,
            "not" => TokenKind::Not,
            "pred" => TokenKind::Pred,
            _ => {
                let first = text.chars().next().expect("non-empty ident");
                if first.is_uppercase() || first == '_' {
                    TokenKind::Var(text.to_owned())
                } else {
                    TokenKind::Name(text.to_owned())
                }
            }
        }
    }

    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Name(n) => format!("name `{n}`"),
            TokenKind::Var(v) => format!("variable `{v}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Forall => "`forall`".into(),
            TokenKind::Exists => "`exists`".into(),
            TokenKind::In => "`in`".into(),
            TokenKind::NotIn => "`notin`".into(),
            TokenKind::Not => "`not`".into(),
            TokenKind::Pred => "`pred`".into(),
            TokenKind::Turnstile => "`:-`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_keywords() {
        assert_eq!(TokenKind::classify_ident("forall"), TokenKind::Forall);
        assert_eq!(TokenKind::classify_ident("in"), TokenKind::In);
        assert_eq!(TokenKind::classify_ident("pred"), TokenKind::Pred);
    }

    #[test]
    fn classify_variables_and_names() {
        assert_eq!(
            TokenKind::classify_ident("X"),
            TokenKind::Var("X".to_owned())
        );
        assert_eq!(
            TokenKind::classify_ident("_tmp"),
            TokenKind::Var("_tmp".to_owned())
        );
        assert_eq!(
            TokenKind::classify_ident("widget"),
            TokenKind::Name("widget".to_owned())
        );
        // Keyword-prefixed names are still names.
        assert_eq!(
            TokenKind::classify_ident("input"),
            TokenKind::Name("input".to_owned())
        );
    }
}
