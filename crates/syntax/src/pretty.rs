//! Pretty-printer: renders AST back to concrete syntax that reparses
//! to the same AST (`parse ∘ pretty = id`, checked by property tests).

use std::fmt::Write as _;

use crate::ast::{
    Clause, Formula, HeadArg, HeadAtom, Item, Literal, PredDecl, Program, SortAnn, Term,
};

/// Render a whole program, one item per line.
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for item in &program.items {
        match item {
            Item::Decl(d) => writeln!(out, "{}", pretty_decl(d)).expect("write to string"),
            Item::Clause(c) => writeln!(out, "{}", pretty_clause(c)).expect("write to string"),
        }
    }
    out
}

/// Render a declaration.
pub fn pretty_decl(d: &PredDecl) -> String {
    if d.sorts.is_empty() {
        format!("pred {}.", d.name)
    } else {
        let sorts: Vec<&str> = d
            .sorts
            .iter()
            .map(|s| match s {
                SortAnn::Atom => "atom",
                SortAnn::Set => "set",
                SortAnn::Any => "any",
            })
            .collect();
        format!("pred {}({}).", d.name, sorts.join(", "))
    }
}

/// Render a single clause.
pub fn pretty_clause(c: &Clause) -> String {
    let head = pretty_head(&c.head);
    match &c.body {
        None => format!("{head}."),
        Some(body) => format!("{head} :- {}.", pretty_formula(body)),
    }
}

/// Render a clause head.
pub fn pretty_head(h: &HeadAtom) -> String {
    if h.args.is_empty() {
        return h.pred.clone();
    }
    let args: Vec<String> = h
        .args
        .iter()
        .map(|a| match a {
            HeadArg::Term(t) => pretty_term(t),
            HeadArg::Group(v, _) => format!("<{v}>"),
        })
        .collect();
    format!("{}({})", h.pred, args.join(", "))
}

/// Render a formula. Parenthesization is conservative: disjunctions and
/// quantifier bodies are always parenthesized, so the output reparses
/// with identical structure.
pub fn pretty_formula(f: &Formula) -> String {
    match f {
        Formula::Lit(lit) => pretty_literal(lit),
        Formula::Not(inner, _) => format!("not {}", pretty_prim(inner)),
        Formula::And(fs) => fs
            .iter()
            .map(pretty_conjunct)
            .collect::<Vec<_>>()
            .join(", "),
        Formula::Or(fs) => fs
            .iter()
            .map(pretty_formula)
            .collect::<Vec<_>>()
            .join(" ; "),
        Formula::Forall { var, set, body, .. } => format!(
            "forall {var} in {}: {}",
            pretty_term(set),
            pretty_prim(body)
        ),
        Formula::Exists { var, set, body, .. } => format!(
            "exists {var} in {}: {}",
            pretty_term(set),
            pretty_prim(body)
        ),
    }
}

/// A conjunct inside an `And`: disjunctions need parens.
fn pretty_conjunct(f: &Formula) -> String {
    match f {
        Formula::Or(_) => format!("({})", pretty_formula(f)),
        _ => pretty_formula(f),
    }
}

/// A formula in `prim` position (quantifier body, negation operand):
/// conjunctions and disjunctions need parens.
fn pretty_prim(f: &Formula) -> String {
    match f {
        Formula::And(_) | Formula::Or(_) => format!("({})", pretty_formula(f)),
        _ => pretty_formula(f),
    }
}

/// Render a literal.
pub fn pretty_literal(lit: &Literal) -> String {
    match lit {
        Literal::Pred(name, args, _) => {
            if args.is_empty() {
                name.clone()
            } else {
                let rendered: Vec<String> = args.iter().map(pretty_term).collect();
                format!("{name}({})", rendered.join(", "))
            }
        }
        Literal::Cmp(op, lhs, rhs, _) => {
            format!("{} {} {}", pretty_term(lhs), op.symbol(), pretty_term(rhs))
        }
    }
}

/// Render a term. Arithmetic is parenthesized pessimistically except
/// that `*` chains and `+`/`-` chains keep their natural
/// left-associative shape.
pub fn pretty_term(t: &Term) -> String {
    match t {
        Term::Var(v, _) => v.clone(),
        Term::Const(c, _) => c.clone(),
        Term::Int(i, _) => i.to_string(),
        Term::App(f, args, _) => {
            let rendered: Vec<String> = args.iter().map(pretty_term).collect();
            format!("{f}({})", rendered.join(", "))
        }
        Term::SetLit(elems, _) => {
            let rendered: Vec<String> = elems.iter().map(pretty_term).collect();
            format!("{{{}}}", rendered.join(", "))
        }
        Term::BinOp(op, lhs, rhs, _) => {
            // Without parentheses in the grammar, nested arithmetic
            // must flatten to the same left-associative parse. Mul
            // under Add/Sub is fine (binds tighter); anything else
            // nested on the right would reassociate, but the parser
            // can only produce left-nested chains, so rendering
            // left-to-right is faithful.
            format!("{} {} {}", pretty_term(lhs), op.symbol(), pretty_term(rhs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    /// Normalize an AST by stripping spans, via pretty-printing both
    /// sides — structural comparison without span noise.
    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let printed = pretty_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n---\n{printed}", e.render(&printed)));
        let printed2 = pretty_program(&p2);
        assert_eq!(printed, printed2, "pretty output must be a fixed point");
    }

    #[test]
    fn roundtrips_paper_examples() {
        roundtrip("disj(X, Y) :- forall U in X: forall V in Y: U != V.");
        roundtrip("subset(X, Y) :- forall U in X: U in Y.");
        roundtrip("union(X, Y, Z) :- sub(X, Z), sub(Y, Z), forall W in Z: (W in X ; W in Y).");
        roundtrip("s(X, Y) :- r(X, Ys), Y in Ys.");
        roundtrip("sum(X, N) :- X = {N}.");
        roundtrip("sum(Z, K) :- du(X, Y, Z), sum(X, M), sum(Y, N), M + N = K.");
    }

    #[test]
    fn roundtrips_declarations_and_groups() {
        roundtrip("pred parts(atom, set).\nowns(P, <C>) :- car(P, C).");
    }

    #[test]
    fn roundtrips_negation_and_nested_sets() {
        roundtrip("lonely(X) :- item(X), not connected(X).");
        roundtrip("p({{a}, {}}, -3).");
    }

    #[test]
    fn roundtrips_disjunction_under_negation() {
        roundtrip("p(X) :- not (q(X) ; r(X)).");
    }

    #[test]
    fn roundtrips_arithmetic_chains() {
        roundtrip("p(K) :- K = 1 + 2 * 3 - 4.");
        roundtrip("p(K) :- K = 2 * 3 * 4.");
    }

    #[test]
    fn fixed_point_on_quantified_conjunction() {
        roundtrip("h(X) :- forall U in X: (p(U), q(U)).");
        roundtrip("h(X) :- forall U in X: p(U), q(X).");
    }
}
