//! Recursive-descent parser for the LPS surface syntax.
//!
//! See the grammar in the crate docs. The parser is deterministic with
//! one token of lookahead everywhere except head arguments, where `<`
//! introduces a grouping slot `<X>` (two tokens of lookahead
//! distinguish it from a comparison, which cannot start a head
//! argument anyway).

use crate::ast::{
    ArithOp, Clause, CmpOp, Formula, HeadArg, HeadAtom, Item, Literal, PredDecl, Program, SortAnn,
    Term,
};
use crate::error::{Span, SyntaxError};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parse a full program.
pub fn parse_program(src: &str) -> Result<Program, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at(&TokenKind::Eof) {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, SyntaxError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            let found = self.peek();
            Err(SyntaxError::new(
                found.span,
                format!("expected {}, found {}", kind.describe(), found),
            ))
        }
    }

    fn name(&mut self) -> Result<(String, Span), SyntaxError> {
        match &self.peek().kind {
            TokenKind::Name(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Name(n) => Ok((n, t.span)),
                    _ => unreachable!(),
                }
            }
            _ => {
                let found = self.peek();
                Err(SyntaxError::new(
                    found.span,
                    format!("expected a name, found {found}"),
                ))
            }
        }
    }

    fn var(&mut self) -> Result<(String, Span), SyntaxError> {
        match &self.peek().kind {
            TokenKind::Var(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Var(v) => Ok((v, t.span)),
                    _ => unreachable!(),
                }
            }
            _ => {
                let found = self.peek();
                Err(SyntaxError::new(
                    found.span,
                    format!("expected a variable, found {found}"),
                ))
            }
        }
    }

    // item := "pred" decl | clause
    fn item(&mut self) -> Result<Item, SyntaxError> {
        if self.at(&TokenKind::Pred) {
            Ok(Item::Decl(self.decl()?))
        } else {
            Ok(Item::Clause(self.clause()?))
        }
    }

    // decl := "pred" NAME "(" sort ("," sort)* ")" "."
    fn decl(&mut self) -> Result<PredDecl, SyntaxError> {
        let start = self.expect(&TokenKind::Pred)?.span;
        let (name, _) = self.name()?;
        let mut sorts = Vec::new();
        if self.at(&TokenKind::LParen) {
            self.bump();
            loop {
                let (sort_name, sort_span) = self.name()?;
                sorts.push(match sort_name.as_str() {
                    "atom" => SortAnn::Atom,
                    "set" => SortAnn::Set,
                    "any" => SortAnn::Any,
                    other => {
                        return Err(SyntaxError::new(
                            sort_span,
                            format!("unknown sort `{other}` (expected atom, set, or any)"),
                        ))
                    }
                });
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let end = self.expect(&TokenKind::Dot)?.span;
        Ok(PredDecl {
            name,
            sorts,
            span: start.merge(end),
        })
    }

    // clause := head (":-" formula)? "."
    fn clause(&mut self) -> Result<Clause, SyntaxError> {
        let head = self.head()?;
        let body = if self.at(&TokenKind::Turnstile) {
            self.bump();
            Some(self.formula()?)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Dot)?.span;
        let span = head.span.merge(end);
        Ok(Clause { head, body, span })
    }

    // head := NAME ("(" headarg ("," headarg)* ")")?
    fn head(&mut self) -> Result<HeadAtom, SyntaxError> {
        let (pred, name_span) = self.name()?;
        let mut args = Vec::new();
        let mut span = name_span;
        if self.at(&TokenKind::LParen) {
            self.bump();
            loop {
                args.push(self.head_arg()?);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            span = span.merge(self.expect(&TokenKind::RParen)?.span);
        }
        Ok(HeadAtom { pred, args, span })
    }

    // headarg := "<" VAR ">" | term
    fn head_arg(&mut self) -> Result<HeadArg, SyntaxError> {
        if self.at(&TokenKind::Lt) {
            let start = self.bump().span;
            let (v, _) = self.var()?;
            let end = self.expect(&TokenKind::Gt)?.span;
            Ok(HeadArg::Group(v, start.merge(end)))
        } else {
            Ok(HeadArg::Term(self.expr()?))
        }
    }

    // formula := conj (";" conj)*
    fn formula(&mut self) -> Result<Formula, SyntaxError> {
        let mut disjuncts = vec![self.conj()?];
        while self.at(&TokenKind::Semi) {
            self.bump();
            disjuncts.push(self.conj()?);
        }
        Ok(Formula::or(disjuncts))
    }

    // conj := prim ("," prim)*
    fn conj(&mut self) -> Result<Formula, SyntaxError> {
        let mut conjuncts = vec![self.prim()?];
        while self.at(&TokenKind::Comma) {
            self.bump();
            conjuncts.push(self.prim()?);
        }
        Ok(Formula::and(conjuncts))
    }

    // prim := "(" formula ")" | quant | "not" prim | literal
    fn prim(&mut self) -> Result<Formula, SyntaxError> {
        match &self.peek().kind {
            TokenKind::LParen => {
                self.bump();
                let f = self.formula()?;
                self.expect(&TokenKind::RParen)?;
                Ok(f)
            }
            TokenKind::Forall | TokenKind::Exists => self.quant(),
            TokenKind::Not => {
                let start = self.bump().span;
                let inner = self.prim()?;
                Ok(Formula::Not(Box::new(inner), start))
            }
            _ => self.literal(),
        }
    }

    // quant := ("forall"|"exists") VAR "in" term ("," quant | ":" prim)
    //
    // The comma continuation requires the next token to be another
    // quantifier keyword, which keeps it unambiguous with conjunction:
    //   forall U in X, forall V in Y: p(U, V)
    // parses as nested quantifiers whose shared scope is p(U, V) —
    // exactly the paper's prefix form (∀u∈X)(∀v∈Y) p(u, v).
    fn quant(&mut self) -> Result<Formula, SyntaxError> {
        let is_forall = self.at(&TokenKind::Forall);
        let start = self.bump().span;
        let (var, _) = self.var()?;
        self.expect(&TokenKind::In)?;
        let set = self.term()?;
        let body = if self.at(&TokenKind::Comma)
            && matches!(self.peek2().kind, TokenKind::Forall | TokenKind::Exists)
        {
            self.bump(); // the comma
            self.quant()?
        } else {
            self.expect(&TokenKind::Colon)?;
            self.prim()?
        };
        let span = start.merge(body_span(&body).unwrap_or(start));
        Ok(if is_forall {
            Formula::Forall {
                var,
                set,
                body: Box::new(body),
                span,
            }
        } else {
            Formula::Exists {
                var,
                set,
                body: Box::new(body),
                span,
            }
        })
    }

    // literal := NAME ("(" term ("," term)* ")")? [relop expr]
    //          | expr relop expr
    fn literal(&mut self) -> Result<Formula, SyntaxError> {
        let lhs = self.expr()?;
        if let Some(op) = self.try_relop() {
            let rhs = self.expr()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Formula::Lit(Literal::Cmp(op, lhs, rhs, span)));
        }
        // No relational operator: the expression itself must be a
        // predicate atom (a name, possibly applied).
        match lhs {
            Term::Const(name, span) => Ok(Formula::Lit(Literal::Pred(name, vec![], span))),
            Term::App(name, args, span) => Ok(Formula::Lit(Literal::Pred(name, args, span))),
            other => Err(SyntaxError::new(
                other.span(),
                "expected a predicate atom or a comparison",
            )),
        }
    }

    fn try_relop(&mut self) -> Option<CmpOp> {
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::In => CmpOp::In,
            TokenKind::NotIn => CmpOp::NotIn,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    // expr := mul (("+"|"-") mul)*
    fn expr(&mut self) -> Result<Term, SyntaxError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Term::BinOp(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    // mul := term ("*" term)*
    fn mul(&mut self) -> Result<Term, SyntaxError> {
        let mut lhs = self.term()?;
        while self.at(&TokenKind::Star) {
            self.bump();
            let rhs = self.term()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Term::BinOp(ArithOp::Mul, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    // term := VAR | INT | "-" INT | NAME ("(" term ("," term)* ")")?
    //       | "{" (term ("," term)*)? "}"
    fn term(&mut self) -> Result<Term, SyntaxError> {
        match self.peek().kind.clone() {
            TokenKind::Var(v) => {
                let t = self.bump();
                Ok(Term::Var(v, t.span))
            }
            TokenKind::Int(i) => {
                let t = self.bump();
                Ok(Term::Int(i, t.span))
            }
            TokenKind::Minus => {
                let start = self.bump().span;
                match self.peek().kind.clone() {
                    TokenKind::Int(i) => {
                        let t = self.bump();
                        Ok(Term::Int(-i, start.merge(t.span)))
                    }
                    _ => {
                        let found = self.peek();
                        Err(SyntaxError::new(
                            found.span,
                            format!("expected an integer after unary `-`, found {found}"),
                        ))
                    }
                }
            }
            TokenKind::Name(n) => {
                let t = self.bump();
                let mut span = t.span;
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.expr()?);
                        if self.at(&TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    span = span.merge(self.expect(&TokenKind::RParen)?.span);
                    Ok(Term::App(n, args, span))
                } else {
                    Ok(Term::Const(n, span))
                }
            }
            TokenKind::LBrace => {
                let start = self.bump().span;
                let mut elems = Vec::new();
                if !self.at(&TokenKind::RBrace) {
                    loop {
                        elems.push(self.expr()?);
                        if self.at(&TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                let end = self.expect(&TokenKind::RBrace)?.span;
                Ok(Term::SetLit(elems, start.merge(end)))
            }
            _ => {
                let found = self.peek();
                Err(SyntaxError::new(
                    found.span,
                    format!("expected a term, found {found}"),
                ))
            }
        }
    }
}

fn body_span(f: &Formula) -> Option<Span> {
    match f {
        Formula::Lit(lit) => Some(lit.span()),
        Formula::Not(_, span) => Some(*span),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().rev().find_map(body_span),
        Formula::Forall { span, .. } | Formula::Exists { span, .. } => Some(*span),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Clause {
        crate::parse_clause(src).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn parses_fact_with_set_literal() {
        let c = parse_one("parts(widget, {bolt, nut, gear}).");
        assert_eq!(c.head.pred, "parts");
        assert_eq!(c.head.args.len(), 2);
        assert!(c.body.is_none());
        match &c.head.args[1] {
            HeadArg::Term(Term::SetLit(elems, _)) => assert_eq!(elems.len(), 3),
            other => panic!("expected set literal, got {other:?}"),
        }
    }

    #[test]
    fn parses_zero_arity_fact() {
        let c = parse_one("halt.");
        assert_eq!(c.head.pred, "halt");
        assert!(c.head.args.is_empty());
    }

    #[test]
    fn parses_paper_example_1_disj() {
        let c = parse_one("disj(X, Y) :- forall U in X: forall V in Y: U != V.");
        let body = c.body.unwrap();
        match body {
            Formula::Forall { var, body, .. } => {
                assert_eq!(var, "U");
                match *body {
                    Formula::Forall { var, body, .. } => {
                        assert_eq!(var, "V");
                        assert!(matches!(
                            *body,
                            Formula::Lit(Literal::Cmp(CmpOp::Ne, _, _, _))
                        ));
                    }
                    other => panic!("expected inner forall, got {other:?}"),
                }
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn comma_chained_quantifier_prefix() {
        // forall U in X, forall V in Y: p(U, V) — the paper's
        // (∀u∈X)(∀v∈Y) prefix form.
        let c = parse_one("d(X, Y) :- forall U in X, forall V in Y: p(U, V).");
        match c.body.unwrap() {
            Formula::Forall { body, .. } => {
                assert!(matches!(*body, Formula::Forall { .. }));
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn quantifier_scope_is_one_prim_unless_parenthesized() {
        // `forall U in X: p(U), q(X)` — q(X) is OUTSIDE the quantifier.
        let c = parse_one("h(X) :- forall U in X: p(U), q(X).");
        match c.body.unwrap() {
            Formula::And(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(matches!(fs[0], Formula::Forall { .. }));
            }
            other => panic!("expected And, got {other:?}"),
        }
        // With parens the whole conjunction is in scope.
        let c = parse_one("h(X) :- forall U in X: (p(U), q(X)).");
        match c.body.unwrap() {
            Formula::Forall { body, .. } => {
                assert!(matches!(*body, Formula::And(_)));
            }
            other => panic!("expected Forall, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_example_3_union_with_disjunction() {
        let c = parse_one(
            "union(X, Y, Z) :- subs(X, Z), subs(Y, Z), forall W in Z: (W in X ; W in Y).",
        );
        match c.body.unwrap() {
            Formula::And(fs) => {
                assert_eq!(fs.len(), 3);
                match &fs[2] {
                    Formula::Forall { body, .. } => {
                        assert!(matches!(**body, Formula::Or(_)));
                    }
                    other => panic!("expected forall, got {other:?}"),
                }
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn parses_exists() {
        let c = parse_one("nonempty(X) :- exists U in X: U = U.");
        assert!(matches!(c.body.unwrap(), Formula::Exists { .. }));
    }

    #[test]
    fn parses_grouping_head() {
        let c = parse_one("owns(P, <C>) :- car(P, C).");
        assert!(c.head.has_grouping());
        match &c.head.args[1] {
            HeadArg::Group(v, _) => assert_eq!(v, "C"),
            other => panic!("expected group, got {other:?}"),
        }
    }

    #[test]
    fn parses_negation() {
        let c = parse_one("lonely(X) :- item(X), not connected(X).");
        match c.body.unwrap() {
            Formula::And(fs) => assert!(matches!(fs[1], Formula::Not(..))),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_comparison() {
        let c = parse_one("sum(Z, K) :- du(X, Y, Z), sum(X, M), sum(Y, N), M + N = K.");
        match c.body.unwrap() {
            Formula::And(fs) => match &fs[3] {
                Formula::Lit(Literal::Cmp(CmpOp::Eq, lhs, _, _)) => {
                    assert!(matches!(lhs, Term::BinOp(ArithOp::Add, _, _, _)));
                }
                other => panic!("expected comparison, got {other:?}"),
            },
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn arith_precedence_mul_binds_tighter() {
        let c = parse_one("p(K) :- K = 1 + 2 * 3.");
        match c.body.unwrap() {
            Formula::Lit(Literal::Cmp(CmpOp::Eq, _, rhs, _)) => match rhs {
                Term::BinOp(ArithOp::Add, _, r, _) => {
                    assert!(matches!(*r, Term::BinOp(ArithOp::Mul, _, _, _)));
                }
                other => panic!("expected Add at top, got {other:?}"),
            },
            other => panic!("expected Cmp, got {other:?}"),
        }
    }

    #[test]
    fn parses_negative_integers() {
        let c = parse_one("p(-5).");
        match &c.head.args[0] {
            HeadArg::Term(Term::Int(-5, _)) => {}
            other => panic!("expected -5, got {other:?}"),
        }
    }

    #[test]
    fn parses_declarations() {
        let p = parse_program("pred parts(atom, set).\npred flag.\n").unwrap();
        let decls: Vec<_> = p.decls().collect();
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[0].name, "parts");
        assert_eq!(decls[0].sorts, vec![SortAnn::Atom, SortAnn::Set]);
        assert!(decls[1].sorts.is_empty());
    }

    #[test]
    fn rejects_unknown_sort() {
        let err = parse_program("pred p(sets).").unwrap_err();
        assert!(err.message.contains("unknown sort"));
    }

    #[test]
    fn parses_empty_set_and_nested_sets() {
        let c = parse_one("p({}, {{a}, {}}).");
        match &c.head.args[0] {
            HeadArg::Term(Term::SetLit(elems, _)) => assert!(elems.is_empty()),
            other => panic!("expected empty set, got {other:?}"),
        }
        match &c.head.args[1] {
            HeadArg::Term(Term::SetLit(elems, _)) => assert_eq!(elems.len(), 2),
            other => panic!("expected nested set, got {other:?}"),
        }
    }

    #[test]
    fn error_on_missing_dot() {
        let err = parse_program("p(X) :- q(X)").unwrap_err();
        assert!(err.message.contains("`.`"), "{}", err.message);
    }

    #[test]
    fn error_on_bare_term_body() {
        let err = parse_program("p(X) :- X.").unwrap_err();
        assert!(err.message.contains("predicate atom"));
    }

    #[test]
    fn error_on_dangling_comparison() {
        assert!(parse_program("p :- 1 <.").is_err());
    }

    #[test]
    fn multi_clause_program_keeps_order() {
        let p = parse_program("a. b :- a. c :- b.").unwrap();
        let heads: Vec<&str> = p.clauses().map(|c| c.head.pred.as_str()).collect();
        assert_eq!(heads, vec!["a", "b", "c"]);
    }
}
