//! Source spans and syntax diagnostics.

use std::fmt;

/// A byte range in the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Construct a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos`.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based `(line, column)` of the span start within `src`.
    pub fn line_col(self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// A lexing or parsing error with location information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyntaxError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl SyntaxError {
    /// Construct an error.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        SyntaxError {
            span,
            message: message.into(),
        }
    }

    /// Render the error with a source excerpt and caret line.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        let line_text = src.lines().nth(line - 1).unwrap_or("");
        let caret_pad = " ".repeat(col.saturating_sub(1));
        let width = (self.span.end - self.span.start).max(1);
        let carets = "^".repeat(width.min(line_text.len().saturating_sub(col - 1)).max(1));
        format!(
            "syntax error at line {line}, column {col}: {}\n  |\n  | {line_text}\n  | {caret_pad}{carets}",
            self.message
        )
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at bytes {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::point(0).line_col(src), (1, 1));
        assert_eq!(Span::point(4).line_col(src), (2, 1));
        assert_eq!(Span::point(6).line_col(src), (2, 3));
        assert_eq!(Span::point(9).line_col(src), (3, 2));
    }

    #[test]
    fn render_includes_caret() {
        let src = "p(X :- q(X).";
        let err = SyntaxError::new(Span::new(5, 7), "unexpected `:-`");
        let rendered = err.render(src);
        assert!(rendered.contains("line 1, column 6"));
        assert!(rendered.contains("^^"));
        assert!(rendered.contains("p(X :- q(X)."));
    }
}
