//! Abstract syntax for LPS/ELPS programs.
//!
//! The AST mirrors the paper's definitions:
//!
//! * [`Clause`] — Definition 5, generalized: the body is a full
//!   *positive formula* (Definition 12) plus negated literals; the
//!   Theorem-6 compiler in `lps-core` lowers it to pure LPS clauses
//!   (quantifier prefix + conjunction of atomic formulas).
//! * [`HeadArg::Group`] — LDL grouping heads `p(x̄, ⟨x⟩)`
//!   (Definition 14), written `p(X, <Y>)`.
//! * [`Literal::Cmp`] — the special predicates `=`, `∈` of
//!   Definition 1 plus the derived/builtin comparisons.

use crate::error::Span;

/// A parsed program: declarations and clauses in source order.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The top-level items.
    pub items: Vec<Item>,
}

impl Program {
    /// Just the clauses, in order.
    pub fn clauses(&self) -> impl Iterator<Item = &Clause> {
        self.items.iter().filter_map(|i| match i {
            Item::Clause(c) => Some(c),
            Item::Decl(_) => None,
        })
    }

    /// Just the predicate declarations, in order.
    pub fn decls(&self) -> impl Iterator<Item = &PredDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Decl(d) => Some(d),
            Item::Clause(_) => None,
        })
    }
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// `pred name(sort, …).`
    Decl(PredDecl),
    /// A fact or rule.
    Clause(Clause),
}

/// Sort annotation in a predicate declaration: the `αᵢ` strings of
/// Definition 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortAnn {
    /// Sort *a* — individual objects.
    Atom,
    /// Sort *s* — sets.
    Set,
    /// Unconstrained (ELPS is untyped; also used before inference).
    Any,
}

/// `pred name(atom, set, …).` — optional sort declaration for a
/// predicate. Without a declaration, sorts are inferred.
#[derive(Clone, Debug, PartialEq)]
pub struct PredDecl {
    /// Predicate name.
    pub name: String,
    /// Sort of each argument position.
    pub sorts: Vec<SortAnn>,
    /// Source location.
    pub span: Span,
}

/// A fact (`body == None`) or rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Clause {
    /// The head atom (must be a non-special predicate; Definition 5).
    pub head: HeadAtom,
    /// The body formula, if any.
    pub body: Option<Formula>,
    /// Source location of the whole clause.
    pub span: Span,
}

/// The head of a clause.
#[derive(Clone, Debug, PartialEq)]
pub struct HeadAtom {
    /// Predicate name.
    pub pred: String,
    /// Arguments (terms, or a grouping slot).
    pub args: Vec<HeadArg>,
    /// Source location.
    pub span: Span,
}

impl HeadAtom {
    /// Whether any argument is an LDL grouping slot `<X>`.
    pub fn has_grouping(&self) -> bool {
        self.args.iter().any(|a| matches!(a, HeadArg::Group(..)))
    }
}

/// One argument of a clause head.
#[derive(Clone, Debug, PartialEq)]
pub enum HeadArg {
    /// An ordinary term.
    Term(Term),
    /// An LDL grouping slot `<X>` (Definition 14): collect the set of
    /// `X` values over the body's satisfying assignments, grouped by
    /// the remaining head arguments.
    Group(String, Span),
}

/// Body formulas: positive formulas (Definition 12) extended with
/// negated literals (§4.2) for the stratified fragment.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// An atomic formula.
    Lit(Literal),
    /// Negation-as-failure of a sub-formula (stratified programs only).
    Not(Box<Formula>, Span),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// `(∀ var ∈ set) body` — restricted universal quantification
    /// (Definition 4). True when `set` is empty.
    Forall {
        /// Bound variable.
        var: String,
        /// The set ranged over (a term of sort *s*).
        set: Term,
        /// The quantified sub-formula.
        body: Box<Formula>,
        /// Source location.
        span: Span,
    },
    /// `(∃ var ∈ set) body` — restricted existential quantification
    /// (Definition 12 case 3).
    Exists {
        /// Bound variable.
        var: String,
        /// The set ranged over.
        set: Term,
        /// The quantified sub-formula.
        body: Box<Formula>,
        /// Source location.
        span: Span,
    },
}

impl Formula {
    /// Conjunction of `fs`, flattening nested `And`s and dropping the
    /// wrapper for singletons.
    pub fn and(fs: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(fs.len());
        for f in fs {
            match f {
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Formula::And(flat)
        }
    }

    /// Disjunction of `fs`, flattening nested `Or`s.
    pub fn or(fs: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(fs.len());
        for f in fs {
            match f {
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Formula::Or(flat)
        }
    }

    /// Whether the formula is *positive* in the sense of Definition 12
    /// (no negation anywhere).
    pub fn is_positive(&self) -> bool {
        match self {
            Formula::Lit(_) => true,
            Formula::Not(..) => false,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_positive),
            Formula::Forall { body, .. } | Formula::Exists { body, .. } => body.is_positive(),
        }
    }

    /// Free variables in order of first occurrence (quantifiers bind
    /// their variable within their body).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Formula::Lit(lit) => lit.collect_vars_excluding(bound, out),
            Formula::Not(f, _) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Forall { var, set, body, .. } | Formula::Exists { var, set, body, .. } => {
                set.collect_vars_excluding(bound, out);
                bound.push(var.clone());
                body.collect_free(bound, out);
                bound.pop();
            }
        }
    }
}

/// An atomic formula.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// `p(t₁, …, tₙ)` for a user or auxiliary predicate.
    Pred(String, Vec<Term>, Span),
    /// A builtin comparison `t₁ op t₂` — the special predicates `=ᵃ`,
    /// `=ˢ`, `∈` of Definition 1 and the derived/arithmetic relations.
    Cmp(CmpOp, Term, Term, Span),
}

impl Literal {
    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            Literal::Pred(_, _, s) | Literal::Cmp(_, _, _, s) => *s,
        }
    }

    fn collect_vars_excluding(&self, bound: &[String], out: &mut Vec<String>) {
        match self {
            Literal::Pred(_, args, _) => {
                for a in args {
                    a.collect_vars_excluding(bound, out);
                }
            }
            Literal::Cmp(_, l, r, _) => {
                l.collect_vars_excluding(bound, out);
                r.collect_vars_excluding(bound, out);
            }
        }
    }
}

/// Builtin comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CmpOp {
    /// `=` — identity on atoms (`=ᵃ`) or extensional equality on sets
    /// (`=ˢ`); which one is resolved by sort checking.
    Eq,
    /// `!=` — the negation of equality. Used by Example 1's `disj`.
    Ne,
    /// `in` — membership `∈`.
    In,
    /// `notin` — negated membership.
    NotIn,
    /// `<` on integers.
    Lt,
    /// `<=` on integers.
    Le,
    /// `>` on integers.
    Gt,
    /// `>=` on integers.
    Ge,
}

impl CmpOp {
    /// Concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::In => "in",
            CmpOp::NotIn => "notin",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators usable inside comparison literals
/// (`K = M + N` in Example 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl ArithOp {
    /// Concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
        }
    }
}

/// Terms (Definition 2, plus integers and arithmetic expressions).
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A variable.
    Var(String, Span),
    /// A named constant.
    Const(String, Span),
    /// An integer constant.
    Int(i64, Span),
    /// Function application `f(t₁, …, tₖ)`.
    App(String, Vec<Term>, Span),
    /// Set literal `{t₁, …, tₙ}` — the `{ₙ` constructors.
    SetLit(Vec<Term>, Span),
    /// Arithmetic expression; only allowed inside comparison literals.
    BinOp(ArithOp, Box<Term>, Box<Term>, Span),
}

impl Term {
    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            Term::Var(_, s)
            | Term::Const(_, s)
            | Term::Int(_, s)
            | Term::App(_, _, s)
            | Term::SetLit(_, s)
            | Term::BinOp(_, _, _, s) => *s,
        }
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(..) => false,
            Term::Const(..) | Term::Int(..) => true,
            Term::App(_, args, _) | Term::SetLit(args, _) => args.iter().all(Term::is_ground),
            Term::BinOp(_, l, r, _) => l.is_ground() && r.is_ground(),
        }
    }

    /// Collect variables in first-occurrence order.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars_excluding(&[], &mut out);
        out
    }

    fn collect_vars_excluding(&self, bound: &[String], out: &mut Vec<String>) {
        match self {
            Term::Var(v, _) => {
                if !bound.contains(v) && !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Term::Const(..) | Term::Int(..) => {}
            Term::App(_, args, _) | Term::SetLit(args, _) => {
                for a in args {
                    a.collect_vars_excluding(bound, out);
                }
            }
            Term::BinOp(_, l, r, _) => {
                l.collect_vars_excluding(bound, out);
                r.collect_vars_excluding(bound, out);
            }
        }
    }

    /// Whether the term contains an arithmetic operator anywhere.
    pub fn has_arith(&self) -> bool {
        match self {
            Term::BinOp(..) => true,
            Term::Var(..) | Term::Const(..) | Term::Int(..) => false,
            Term::App(_, args, _) | Term::SetLit(args, _) => args.iter().any(Term::has_arith),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Term {
        Term::Var(name.into(), Span::default())
    }

    #[test]
    fn and_flattens() {
        let lit = |n: &str| Formula::Lit(Literal::Pred(n.into(), vec![], Span::default()));
        let inner = Formula::And(vec![lit("a"), lit("b")]);
        let f = Formula::and(vec![inner, lit("c")]);
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        // Singleton unwraps.
        assert_eq!(Formula::and(vec![lit("a")]), lit("a"));
    }

    #[test]
    fn positivity() {
        let lit = Formula::Lit(Literal::Pred("p".into(), vec![], Span::default()));
        assert!(lit.is_positive());
        let neg = Formula::Not(Box::new(lit.clone()), Span::default());
        assert!(!neg.is_positive());
        let under_quant = Formula::Forall {
            var: "X".into(),
            set: var("S"),
            body: Box::new(neg),
            span: Span::default(),
        };
        assert!(!under_quant.is_positive());
    }

    #[test]
    fn free_vars_respect_binding() {
        // forall U in X: p(U, Y) — free vars are X and Y, not U.
        let f = Formula::Forall {
            var: "U".into(),
            set: var("X"),
            body: Box::new(Formula::Lit(Literal::Pred(
                "p".into(),
                vec![var("U"), var("Y")],
                Span::default(),
            ))),
            span: Span::default(),
        };
        assert_eq!(f.free_vars(), vec!["X".to_owned(), "Y".to_owned()]);
    }

    #[test]
    fn shadowed_outer_var_is_still_free_outside() {
        // p(U), forall U in X: q(U) — the first U is free.
        let f = Formula::And(vec![
            Formula::Lit(Literal::Pred("p".into(), vec![var("U")], Span::default())),
            Formula::Forall {
                var: "U".into(),
                set: var("X"),
                body: Box::new(Formula::Lit(Literal::Pred(
                    "q".into(),
                    vec![var("U")],
                    Span::default(),
                ))),
                span: Span::default(),
            },
        ]);
        assert_eq!(f.free_vars(), vec!["U".to_owned(), "X".to_owned()]);
    }

    #[test]
    fn term_groundness_and_vars() {
        let t = Term::SetLit(
            vec![
                Term::Const("a".into(), Span::default()),
                Term::App("f".into(), vec![var("X")], Span::default()),
            ],
            Span::default(),
        );
        assert!(!t.is_ground());
        assert_eq!(t.vars(), vec!["X".to_owned()]);
        let g = Term::SetLit(vec![Term::Int(1, Span::default())], Span::default());
        assert!(g.is_ground());
    }

    #[test]
    fn arith_detection() {
        let sum = Term::BinOp(
            ArithOp::Add,
            Box::new(var("M")),
            Box::new(var("N")),
            Span::default(),
        );
        assert!(sum.has_arith());
        assert!(!var("M").has_arith());
    }
}
