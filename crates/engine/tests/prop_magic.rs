//! Property test: demand-driven query answering is invisible. For
//! random programs, random fact sets, and random bound/free query
//! patterns, `Engine::query` on a fresh (never-materialized) session
//! must return exactly the rows that full materialization plus
//! filtering returns — on the monotone programs (where the magic-set
//! rewrite applies and the demand path must be taken) and on programs
//! with negation or grouping (where the engine must take the sound
//! fallback instead). Conjunctive goals through `Engine::query_rule`
//! are checked against a hand-rolled join of the materialized model.

use proptest::prelude::*;

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::rule::{BodyLit, GroupSpec, Rule};
use lps_engine::{Engine, EvalConfig, PredId, QueryPath};
use lps_term::TermId;

fn v(i: u32) -> Pattern {
    Pattern::Var(VarId(i))
}

fn rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
    Rule {
        head,
        head_args,
        group: None,
        outer,
        quant: None,
        num_vars: nv,
        var_names: (0..nv).map(|i| format!("V{i}")).collect(),
        var_sorts: vec![],
    }
}

/// The predicates of the generated programs (same family as
/// `prop_incremental`): transitive closure `t` over `e`, a join `s`,
/// and optionally a negation stratum and an LDL grouping head.
struct Preds {
    e: PredId,
    t: PredId,
    s: PredId,
    node: PredId,
    iso: PredId,
    grp: PredId,
}

fn build(with_neg: bool, with_group: bool) -> (Engine, Preds) {
    let mut e = Engine::new(EvalConfig::default());
    let preds = Preds {
        e: e.pred("e", 2),
        t: e.pred("t", 2),
        s: e.pred("s", 2),
        node: e.pred("node", 1),
        iso: e.pred("iso", 1),
        grp: e.pred("grp", 2),
    };
    e.rule(rule(
        preds.t,
        vec![v(0), v(1)],
        vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
        2,
    ))
    .unwrap();
    e.rule(rule(
        preds.t,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.e, vec![v(0), v(1)]),
            BodyLit::Pos(preds.t, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    // s(X, Z) :- t(X, Y), e(Y, Z).
    e.rule(rule(
        preds.s,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.t, vec![v(0), v(1)]),
            BodyLit::Pos(preds.e, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    if with_neg {
        e.rule(rule(
            preds.node,
            vec![v(0)],
            vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(rule(
            preds.iso,
            vec![v(0)],
            vec![
                BodyLit::Pos(preds.node, vec![v(0)]),
                BodyLit::Neg(preds.t, vec![v(0), v(0)]),
            ],
            1,
        ))
        .unwrap();
    }
    if with_group {
        let mut g = rule(
            preds.grp,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(preds.t, vec![v(0), v(1)])],
            2,
        );
        g.group = Some(GroupSpec {
            arg_pos: 1,
            var: VarId(1),
        });
        e.rule(g).unwrap();
    }
    (e, preds)
}

fn atoms(e: &mut Engine) -> Vec<TermId> {
    (0..6)
        .map(|i| e.store_mut().atom(&format!("n{i}")))
        .collect()
}

fn load_facts(e: &mut Engine, pred: PredId, ids: &[TermId], edges: &[(u8, u8)]) {
    for &(a, b) in edges {
        e.fact(pred, vec![ids[a as usize], ids[b as usize]])
            .unwrap();
    }
}

/// Pick the query predicate and its argument list from the generated
/// choices. Returns `(pred, args, query_reaches_nonmono)`.
fn pick_query(
    p: &Preds,
    ids: &[TermId],
    which: u8,
    mask: u8,
    consts: (u8, u8),
) -> (PredId, Vec<Option<TermId>>, bool) {
    let (pred, arity, nonmono) = match which % 6 {
        0 => (p.e, 2, false),
        1 => (p.t, 2, false),
        2 => (p.s, 2, false),
        3 => (p.node, 1, false),
        4 => (p.iso, 1, true),
        _ => (p.grp, 2, true),
    };
    let consts = [consts.0, consts.1];
    let args: Vec<Option<TermId>> = (0..arity)
        .map(|i| (mask & (1 << i) != 0).then(|| ids[consts[i] as usize]))
        .collect();
    (pred, args, nonmono)
}

/// Demand query on a fresh session vs filtered full materialization.
fn check_query(
    edges: &[(u8, u8)],
    which: u8,
    mask: u8,
    consts: (u8, u8),
    with_neg: bool,
    with_group: bool,
) {
    // Reference: materialize everything, filter.
    let (mut reference, rp) = build(with_neg, with_group);
    let rids = atoms(&mut reference);
    load_facts(&mut reference, rp.e, &rids, edges);
    reference.run().unwrap();
    let (pred, args, _) = pick_query(&rp, &rids, which, mask, consts);
    let mut want: Vec<Vec<TermId>> = reference
        .rows(pred)
        .filter(|row| {
            row.iter()
                .zip(&args)
                .all(|(t, a)| a.is_none_or(|g| g == *t))
        })
        .map(<[_]>::to_vec)
        .collect();
    want.sort();

    // Demand: same store-interning order, fresh (never-run) session.
    let (mut demand, dp) = build(with_neg, with_group);
    let dids = atoms(&mut demand);
    load_facts(&mut demand, dp.e, &dids, edges);
    let (dpred, dargs, _) = pick_query(&dp, &dids, which, mask, consts);
    let res = demand.query(dpred, &dargs).unwrap();
    let got = res.rows.sorted();
    // Same atoms were interned in the same order in both engines, so
    // the rows must agree bit for bit.
    assert_eq!(got, want, "query {which} mask {mask:#b}");

    // Path discipline: a goal that reaches negation or grouping must
    // fall back; a purely monotone goal must take the demand path and
    // never count a fallback. (`iso`/`grp` without their rule flags
    // are empty EDB predicates: demand answers them trivially.)
    let obstructed = (which % 6 == 4 && with_neg) || (which % 6 == 5 && with_group);
    if obstructed {
        assert_eq!(res.path, QueryPath::Fallback);
        assert_eq!(res.stats.demand_fallbacks, 1);
    } else {
        assert_eq!(res.path, QueryPath::Demand, "monotone goal stays demand");
        assert_eq!(res.stats.demand_fallbacks, 0);
    }

    // A second query on the (possibly now materialized) session must
    // agree with itself.
    let res2 = demand.query(dpred, &dargs).unwrap();
    let got2 = res2.rows.sorted();
    assert_eq!(got2, got, "repeat query is stable");
}

/// Conjunctive goal `q(X, Z) :- t(c, X), e(X, Z)` (optionally with the
/// first argument free) vs a hand-rolled join over the materialized
/// model.
fn check_conjunctive(edges: &[(u8, u8)], bind_first: bool, c: u8) {
    let (mut reference, rp) = build(false, false);
    let rids = atoms(&mut reference);
    load_facts(&mut reference, rp.e, &rids, edges);
    reference.run().unwrap();
    let t_rows: Vec<Vec<TermId>> = reference.rows(rp.t).map(<[_]>::to_vec).collect();
    let e_rows: Vec<Vec<TermId>> = reference.rows(rp.e).map(<[_]>::to_vec).collect();
    let mut want: Vec<Vec<TermId>> = Vec::new();
    for tr in &t_rows {
        if bind_first && tr[0] != rids[c as usize] {
            continue;
        }
        for er in &e_rows {
            if tr[1] == er[0] {
                let row = if bind_first {
                    vec![tr[1], er[1]]
                } else {
                    vec![tr[0], tr[1], er[1]]
                };
                if !want.contains(&row) {
                    want.push(row);
                }
            }
        }
    }
    want.sort();

    let (mut demand, dp) = build(false, false);
    let dids = atoms(&mut demand);
    load_facts(&mut demand, dp.e, &dids, edges);
    let res = if bind_first {
        let q = demand.pred("query#goal", 2);
        demand
            .query_rule(rule(
                q,
                vec![v(1), v(2)],
                vec![
                    BodyLit::Pos(dp.t, vec![Pattern::Ground(dids[c as usize]), v(1)]),
                    BodyLit::Pos(dp.e, vec![v(1), v(2)]),
                ],
                3,
            ))
            .unwrap()
    } else {
        let q = demand.pred("query#goal", 3);
        demand
            .query_rule(rule(
                q,
                vec![v(0), v(1), v(2)],
                vec![
                    BodyLit::Pos(dp.t, vec![v(0), v(1)]),
                    BodyLit::Pos(dp.e, vec![v(1), v(2)]),
                ],
                3,
            ))
            .unwrap()
    };
    assert_eq!(res.path, QueryPath::Demand);
    let got = res.rows.sorted();
    assert_eq!(got, want, "conjunctive goal bind_first={bind_first}");
}

/// One step of a random live-session interleaving.
#[derive(Clone, Debug)]
enum Op {
    /// `Engine::fact` on the EDB predicate (pre- or post-query).
    Fact(u8, u8),
    /// `Engine::run` — materializes (batch or incremental), after
    /// which queries must read the maintained model.
    Update,
    /// `Engine::query` with a random predicate/adornment/constants.
    Query {
        which: u8,
        mask: u8,
        consts: (u8, u8),
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..6), (0u8..6)).prop_map(|(a, b)| Op::Fact(a, b)),
        Just(Op::Update),
        ((0u8..6), (0u8..4), ((0u8..6), (0u8..6))).prop_map(|(which, mask, consts)| Op::Query {
            which,
            mask,
            consts
        }),
    ]
}

/// Drive one live session through a random interleaving of `fact()`,
/// `update()` and repeated `query()` calls, checking every query
/// against a fresh engine that materializes the same fact set and
/// filters — the incremental-demand ≡ filtered-full-materialization
/// invariant of the retained demand spaces (E14), across plan-cache
/// eviction (`cache_bound` as low as 1), the retention ablation, and
/// the non-monotone fallback paths.
fn check_interleaving(
    ops: &[Op],
    with_neg: bool,
    with_group: bool,
    cache_bound: usize,
    retention: bool,
) {
    let (mut live, lp) = build(with_neg, with_group);
    live.config_mut().demand_plan_cache = cache_bound;
    live.config_mut().demand_retention = retention;
    let lids = atoms(&mut live);
    let mut facts: Vec<(u8, u8)> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Fact(a, b) => {
                live.fact(lp.e, vec![lids[a as usize], lids[b as usize]])
                    .unwrap();
                facts.push((a, b));
            }
            Op::Update => {
                live.run().unwrap();
            }
            Op::Query {
                which,
                mask,
                consts,
            } => {
                let (pred, args, _) = pick_query(&lp, &lids, which, mask, consts);
                let res = live.query(pred, &args).unwrap();
                // Compare as owned values: the live session's store may
                // have interned intermediate *sets* (grouping results
                // of earlier materializations) the fresh reference
                // never sees, so raw TermIds can diverge while the
                // denoted rows agree.
                let mut got: Vec<Vec<lps_term::Value>> = res
                    .rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|&id| lps_term::Value::from_store(live.store(), id))
                            .collect()
                    })
                    .collect();
                got.sort();

                let (mut reference, rp) = build(with_neg, with_group);
                let rids = atoms(&mut reference);
                load_facts(&mut reference, rp.e, &rids, &facts);
                reference.run().unwrap();
                let (rpred, rargs, _) = pick_query(&rp, &rids, which, mask, consts);
                let mut want: Vec<Vec<lps_term::Value>> = reference
                    .rows(rpred)
                    .filter(|row| {
                        row.iter()
                            .zip(&rargs)
                            .all(|(t, a)| a.is_none_or(|g| g == *t))
                    })
                    .map(|row| {
                        row.iter()
                            .map(|&id| lps_term::Value::from_store(reference.store(), id))
                            .collect()
                    })
                    .collect();
                want.sort();
                assert_eq!(
                    got, want,
                    "step {step}: query {which} mask {mask:#b} \
                     (neg={with_neg} group={with_group} bound={cache_bound} \
                     retention={retention})"
                );
            }
        }
    }
}

/// Conjunctive goals through the shape-keyed plan cache: a stream of
/// `q(Y, Z) :- t(cᵢ, Y), e(Y, Z)` goals with varying constants,
/// interleaved with fact arrivals, each checked against a hand-rolled
/// join over a freshly materialized model.
fn check_conjunctive_stream(fact_stream: &[(u8, u8)], consts: &[u8], cache_bound: usize) {
    let (mut live, lp) = build(false, false);
    live.config_mut().demand_plan_cache = cache_bound;
    let lids = atoms(&mut live);
    let q = live.pred("query#goal", 2);
    let mut facts: Vec<(u8, u8)> = Vec::new();
    for (i, &c) in consts.iter().enumerate() {
        if let Some(&(a, b)) = fact_stream.get(i) {
            live.fact(lp.e, vec![lids[a as usize], lids[b as usize]])
                .unwrap();
            facts.push((a, b));
        }
        let res = live
            .query_rule(rule(
                q,
                vec![v(1), v(2)],
                vec![
                    BodyLit::Pos(lp.t, vec![Pattern::Ground(lids[c as usize]), v(1)]),
                    BodyLit::Pos(lp.e, vec![v(1), v(2)]),
                ],
                3,
            ))
            .unwrap();
        let got = res.rows.sorted();

        let (mut reference, rp) = build(false, false);
        let rids = atoms(&mut reference);
        load_facts(&mut reference, rp.e, &rids, &facts);
        reference.run().unwrap();
        let t_rows: Vec<Vec<TermId>> = reference.rows(rp.t).map(<[_]>::to_vec).collect();
        let e_rows: Vec<Vec<TermId>> = reference.rows(rp.e).map(<[_]>::to_vec).collect();
        let mut want: Vec<Vec<TermId>> = Vec::new();
        for tr in &t_rows {
            if tr[0] != rids[c as usize] {
                continue;
            }
            for er in &e_rows {
                if tr[1] == er[0] {
                    let row = vec![tr[1], er[1]];
                    if !want.contains(&row) {
                        want.push(row);
                    }
                }
            }
        }
        want.sort();
        assert_eq!(got, want, "goal {i} const {c} bound {cache_bound}");
    }
}

proptest! {
    /// Monotone programs: every bound/free pattern over every
    /// predicate takes the demand path and agrees with the filtered
    /// full model.
    #[test]
    fn demand_equals_materialization_on_monotone_programs(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        which in 0u8..4,
        mask in 0u8..4,
        consts in (0u8..6, 0u8..6),
    ) {
        check_query(&edges, which, mask, consts, false, false);
    }

    /// Programs with negation and grouping: goals that reach the
    /// non-monotone constructs fall back to full materialization, and
    /// the answers stay identical either way.
    #[test]
    fn demand_equals_materialization_under_negation_and_grouping(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        which in 0u8..6,
        mask in 0u8..4,
        consts in (0u8..6, 0u8..6),
        with_group in 0u8..2,
    ) {
        check_query(&edges, which, mask, consts, true, with_group == 1);
    }

    /// Conjunctive goals through `Engine::query_rule` match a
    /// hand-rolled join of the materialized model.
    #[test]
    fn conjunctive_goals_match_reference_join(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        bind_first in 0u8..2,
        c in 0u8..6,
    ) {
        check_conjunctive(&edges, bind_first == 1, c);
    }

    /// Random interleavings of `fact()` / `update()` / repeated
    /// `query()` on one live session — incremental demand over
    /// retained spaces must be indistinguishable from filtered full
    /// materialization, including across the materialization boundary
    /// an `update()` forces.
    #[test]
    fn interleaved_sessions_match_materialization(
        ops in proptest::collection::vec(op_strategy(), 1..14),
        with_neg in any::<bool>(),
        with_group in any::<bool>(),
    ) {
        check_interleaving(&ops, with_neg, with_group, 64, true);
    }

    /// The same interleavings with the plan cache bound at 1 (every
    /// new shape evicts the previous plan and reclaims its space) and
    /// with retention ablated — eviction churn and cold re-derivation
    /// must never surface stale or missing rows.
    #[test]
    fn interleaved_sessions_survive_eviction_and_ablation(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        with_neg in any::<bool>(),
        retention in any::<bool>(),
    ) {
        check_interleaving(&ops, with_neg, false, 1, retention);
    }

    /// Conjunctive goal streams hit the shape-keyed plan cache
    /// (constants vary, shape fixed) interleaved with fact arrivals,
    /// with and without eviction pressure.
    #[test]
    fn conjunctive_streams_match_reference_join(
        fact_stream in proptest::collection::vec((0u8..6, 0u8..6), 0..8),
        consts in proptest::collection::vec(0u8..6, 1..6),
        bound_one in any::<bool>(),
    ) {
        check_conjunctive_stream(&fact_stream, &consts, if bound_one { 1 } else { 64 });
    }
}
