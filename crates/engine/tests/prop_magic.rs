//! Property test: demand-driven query answering is invisible. For
//! random programs, random fact sets, and random bound/free query
//! patterns, `Engine::query` on a fresh (never-materialized) session
//! must return exactly the rows that full materialization plus
//! filtering returns — on the monotone programs (where the magic-set
//! rewrite applies and the demand path must be taken) and on programs
//! with negation or grouping (where the engine must take the sound
//! fallback instead). Conjunctive goals through `Engine::query_rule`
//! are checked against a hand-rolled join of the materialized model.

use proptest::prelude::*;

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::rule::{BodyLit, GroupSpec, Rule};
use lps_engine::{Engine, EvalConfig, PredId, QueryPath};
use lps_term::TermId;

fn v(i: u32) -> Pattern {
    Pattern::Var(VarId(i))
}

fn rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
    Rule {
        head,
        head_args,
        group: None,
        outer,
        quant: None,
        num_vars: nv,
        var_names: (0..nv).map(|i| format!("V{i}")).collect(),
        var_sorts: vec![],
    }
}

/// The predicates of the generated programs (same family as
/// `prop_incremental`): transitive closure `t` over `e`, a join `s`,
/// and optionally a negation stratum and an LDL grouping head.
struct Preds {
    e: PredId,
    t: PredId,
    s: PredId,
    node: PredId,
    iso: PredId,
    grp: PredId,
}

fn build(with_neg: bool, with_group: bool) -> (Engine, Preds) {
    let mut e = Engine::new(EvalConfig::default());
    let preds = Preds {
        e: e.pred("e", 2),
        t: e.pred("t", 2),
        s: e.pred("s", 2),
        node: e.pred("node", 1),
        iso: e.pred("iso", 1),
        grp: e.pred("grp", 2),
    };
    e.rule(rule(
        preds.t,
        vec![v(0), v(1)],
        vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
        2,
    ))
    .unwrap();
    e.rule(rule(
        preds.t,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.e, vec![v(0), v(1)]),
            BodyLit::Pos(preds.t, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    // s(X, Z) :- t(X, Y), e(Y, Z).
    e.rule(rule(
        preds.s,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.t, vec![v(0), v(1)]),
            BodyLit::Pos(preds.e, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    if with_neg {
        e.rule(rule(
            preds.node,
            vec![v(0)],
            vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(rule(
            preds.iso,
            vec![v(0)],
            vec![
                BodyLit::Pos(preds.node, vec![v(0)]),
                BodyLit::Neg(preds.t, vec![v(0), v(0)]),
            ],
            1,
        ))
        .unwrap();
    }
    if with_group {
        let mut g = rule(
            preds.grp,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(preds.t, vec![v(0), v(1)])],
            2,
        );
        g.group = Some(GroupSpec {
            arg_pos: 1,
            var: VarId(1),
        });
        e.rule(g).unwrap();
    }
    (e, preds)
}

fn atoms(e: &mut Engine) -> Vec<TermId> {
    (0..6)
        .map(|i| e.store_mut().atom(&format!("n{i}")))
        .collect()
}

fn load_facts(e: &mut Engine, pred: PredId, ids: &[TermId], edges: &[(u8, u8)]) {
    for &(a, b) in edges {
        e.fact(pred, vec![ids[a as usize], ids[b as usize]])
            .unwrap();
    }
}

/// Pick the query predicate and its argument list from the generated
/// choices. Returns `(pred, args, query_reaches_nonmono)`.
fn pick_query(
    p: &Preds,
    ids: &[TermId],
    which: u8,
    mask: u8,
    consts: (u8, u8),
) -> (PredId, Vec<Option<TermId>>, bool) {
    let (pred, arity, nonmono) = match which % 6 {
        0 => (p.e, 2, false),
        1 => (p.t, 2, false),
        2 => (p.s, 2, false),
        3 => (p.node, 1, false),
        4 => (p.iso, 1, true),
        _ => (p.grp, 2, true),
    };
    let consts = [consts.0, consts.1];
    let args: Vec<Option<TermId>> = (0..arity)
        .map(|i| (mask & (1 << i) != 0).then(|| ids[consts[i] as usize]))
        .collect();
    (pred, args, nonmono)
}

/// Demand query on a fresh session vs filtered full materialization.
fn check_query(
    edges: &[(u8, u8)],
    which: u8,
    mask: u8,
    consts: (u8, u8),
    with_neg: bool,
    with_group: bool,
) {
    // Reference: materialize everything, filter.
    let (mut reference, rp) = build(with_neg, with_group);
    let rids = atoms(&mut reference);
    load_facts(&mut reference, rp.e, &rids, edges);
    reference.run().unwrap();
    let (pred, args, _) = pick_query(&rp, &rids, which, mask, consts);
    let mut want: Vec<Vec<TermId>> = reference
        .rows(pred)
        .filter(|row| {
            row.iter()
                .zip(&args)
                .all(|(t, a)| a.is_none_or(|g| g == *t))
        })
        .map(<[_]>::to_vec)
        .collect();
    want.sort();

    // Demand: same store-interning order, fresh (never-run) session.
    let (mut demand, dp) = build(with_neg, with_group);
    let dids = atoms(&mut demand);
    load_facts(&mut demand, dp.e, &dids, edges);
    let (dpred, dargs, _) = pick_query(&dp, &dids, which, mask, consts);
    let res = demand.query(dpred, &dargs).unwrap();
    let mut got = res.rows.clone();
    got.sort();
    // Same atoms were interned in the same order in both engines, so
    // the rows must agree bit for bit.
    assert_eq!(got, want, "query {which} mask {mask:#b}");

    // Path discipline: a goal that reaches negation or grouping must
    // fall back; a purely monotone goal must take the demand path and
    // never count a fallback. (`iso`/`grp` without their rule flags
    // are empty EDB predicates: demand answers them trivially.)
    let obstructed = (which % 6 == 4 && with_neg) || (which % 6 == 5 && with_group);
    if obstructed {
        assert_eq!(res.path, QueryPath::Fallback);
        assert_eq!(res.stats.demand_fallbacks, 1);
    } else {
        assert_eq!(res.path, QueryPath::Demand, "monotone goal stays demand");
        assert_eq!(res.stats.demand_fallbacks, 0);
    }

    // A second query on the (possibly now materialized) session must
    // agree with itself.
    let res2 = demand.query(dpred, &dargs).unwrap();
    let mut got2 = res2.rows;
    got2.sort();
    assert_eq!(got2, got, "repeat query is stable");
}

/// Conjunctive goal `q(X, Z) :- t(c, X), e(X, Z)` (optionally with the
/// first argument free) vs a hand-rolled join over the materialized
/// model.
fn check_conjunctive(edges: &[(u8, u8)], bind_first: bool, c: u8) {
    let (mut reference, rp) = build(false, false);
    let rids = atoms(&mut reference);
    load_facts(&mut reference, rp.e, &rids, edges);
    reference.run().unwrap();
    let t_rows: Vec<Vec<TermId>> = reference.rows(rp.t).map(<[_]>::to_vec).collect();
    let e_rows: Vec<Vec<TermId>> = reference.rows(rp.e).map(<[_]>::to_vec).collect();
    let mut want: Vec<Vec<TermId>> = Vec::new();
    for tr in &t_rows {
        if bind_first && tr[0] != rids[c as usize] {
            continue;
        }
        for er in &e_rows {
            if tr[1] == er[0] {
                let row = if bind_first {
                    vec![tr[1], er[1]]
                } else {
                    vec![tr[0], tr[1], er[1]]
                };
                if !want.contains(&row) {
                    want.push(row);
                }
            }
        }
    }
    want.sort();

    let (mut demand, dp) = build(false, false);
    let dids = atoms(&mut demand);
    load_facts(&mut demand, dp.e, &dids, edges);
    let res = if bind_first {
        let q = demand.pred("query#goal", 2);
        demand
            .query_rule(rule(
                q,
                vec![v(1), v(2)],
                vec![
                    BodyLit::Pos(dp.t, vec![Pattern::Ground(dids[c as usize]), v(1)]),
                    BodyLit::Pos(dp.e, vec![v(1), v(2)]),
                ],
                3,
            ))
            .unwrap()
    } else {
        let q = demand.pred("query#goal", 3);
        demand
            .query_rule(rule(
                q,
                vec![v(0), v(1), v(2)],
                vec![
                    BodyLit::Pos(dp.t, vec![v(0), v(1)]),
                    BodyLit::Pos(dp.e, vec![v(1), v(2)]),
                ],
                3,
            ))
            .unwrap()
    };
    assert_eq!(res.path, QueryPath::Demand);
    let mut got = res.rows;
    got.sort();
    assert_eq!(got, want, "conjunctive goal bind_first={bind_first}");
}

proptest! {
    /// Monotone programs: every bound/free pattern over every
    /// predicate takes the demand path and agrees with the filtered
    /// full model.
    #[test]
    fn demand_equals_materialization_on_monotone_programs(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        which in 0u8..4,
        mask in 0u8..4,
        consts in (0u8..6, 0u8..6),
    ) {
        check_query(&edges, which, mask, consts, false, false);
    }

    /// Programs with negation and grouping: goals that reach the
    /// non-monotone constructs fall back to full materialization, and
    /// the answers stay identical either way.
    #[test]
    fn demand_equals_materialization_under_negation_and_grouping(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        which in 0u8..6,
        mask in 0u8..4,
        consts in (0u8..6, 0u8..6),
        with_group in 0u8..2,
    ) {
        check_query(&edges, which, mask, consts, true, with_group == 1);
    }

    /// Conjunctive goals through `Engine::query_rule` match a
    /// hand-rolled join of the materialized model.
    #[test]
    fn conjunctive_goals_match_reference_join(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        bind_first in 0u8..2,
        c in 0u8..6,
    ) {
        check_conjunctive(&edges, bind_first == 1, c);
    }
}
