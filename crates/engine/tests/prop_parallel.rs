//! Property test: the parallel join phase is invisible. Random
//! programs driven through random interleavings of `fact()` /
//! `update()` / `run()` / `query()` at 2, 4, and 8 worker threads must
//! end on a model identical to the sequential (`threads = 1`) run —
//! same `Value` extensions always, and for programs that intern no
//! terms during evaluation (set-free), the same interned `TermId`
//! tuples bit for bit. A deterministic stress test drives a skewed
//! workload (one hot probe key owning > 90 % of a round's delta) and
//! checks that `EvalStats::worker_imbalance` reports the skew.

use proptest::prelude::*;

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::rule::{BodyLit, GroupSpec, Rule};
use lps_engine::{Engine, EvalConfig, PredId};
use lps_term::{TermId, Value};

fn v(i: u32) -> Pattern {
    Pattern::Var(VarId(i))
}

fn rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
    Rule {
        head,
        head_args,
        group: None,
        outer,
        quant: None,
        num_vars: nv,
        var_names: (0..nv).map(|i| format!("V{i}")).collect(),
        var_sorts: vec![],
    }
}

/// The predicates of the generated programs.
struct Preds {
    e: PredId,
    t: PredId,
    s: PredId,
    node: PredId,
    iso: PredId,
    grp: PredId,
}

/// Build an engine with `threads` workers and the rule family selected
/// by the flags — the same family as `prop_incremental.rs`: transitive
/// closure `t` over `e`, optionally a join `s`, optionally a negation
/// stratum, optionally an LDL grouping head. The `t`/`s` rules are
/// parallel-safe (flat positive joins); negation and grouping rules
/// stay on the sequential passes inside the same rounds, so the mixed
/// programs exercise the fan-out and the merge interleaving both.
fn build(threads: usize, with_join: bool, with_neg: bool, with_group: bool) -> (Engine, Preds) {
    let cfg = EvalConfig {
        threads,
        ..EvalConfig::default()
    };
    let mut e = Engine::new(cfg);
    let preds = Preds {
        e: e.pred("e", 2),
        t: e.pred("t", 2),
        s: e.pred("s", 2),
        node: e.pred("node", 1),
        iso: e.pred("iso", 1),
        grp: e.pred("grp", 2),
    };
    e.rule(rule(
        preds.t,
        vec![v(0), v(1)],
        vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
        2,
    ))
    .unwrap();
    e.rule(rule(
        preds.t,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.e, vec![v(0), v(1)]),
            BodyLit::Pos(preds.t, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    if with_join {
        e.rule(rule(
            preds.s,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(preds.t, vec![v(0), v(1)]),
                BodyLit::Pos(preds.e, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
    }
    if with_neg {
        e.rule(rule(
            preds.node,
            vec![v(0)],
            vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(rule(
            preds.iso,
            vec![v(0)],
            vec![
                BodyLit::Pos(preds.node, vec![v(0)]),
                BodyLit::Neg(preds.t, vec![v(0), v(0)]),
            ],
            1,
        ))
        .unwrap();
    }
    if with_group {
        let mut g = rule(
            preds.grp,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(preds.t, vec![v(0), v(1)])],
            2,
        );
        g.group = Some(GroupSpec {
            arg_pos: 1,
            var: VarId(1),
        });
        e.rule(g).unwrap();
    }
    (e, preds)
}

/// Intern node atoms in a fixed order so all engines agree on ids.
/// Uses 12 nodes (vs. 6 in the incremental suite) so random edge sets
/// routinely push a round's delta past the parallel cutoff.
fn atoms(e: &mut Engine) -> Vec<TermId> {
    (0..12)
        .map(|i| e.store_mut().atom(&format!("n{i}")))
        .collect()
}

fn sorted_value_rows(e: &Engine, p: PredId) -> Vec<Vec<Value>> {
    e.extension(p)
}

fn sorted_id_rows(e: &Engine, p: PredId) -> Vec<Vec<TermId>> {
    let mut rows: Vec<Vec<TermId>> = e.rows(p).map(<[_]>::to_vec).collect();
    rows.sort();
    rows
}

/// Drive one engine per thread count through the *same* interleaving
/// and compare every predicate against the sequential run.
fn check_parallel_invisible(
    threads: &[usize],
    initial: &[(u8, u8)],
    updates: &[((u8, u8), u8)],
    with_join: bool,
    with_neg: bool,
    with_group: bool,
) {
    let drive = |threads: usize| {
        let (mut eng, p) = build(threads, with_join, with_neg, with_group);
        let ids = atoms(&mut eng);
        for &(a, b) in initial {
            eng.fact(p.e, vec![ids[a as usize % 12], ids[b as usize % 12]])
                .unwrap();
        }
        eng.run().unwrap();
        for &((a, b), action) in updates {
            eng.fact(p.e, vec![ids[a as usize % 12], ids[b as usize % 12]])
                .unwrap();
            match action % 3 {
                1 => {
                    eng.update().unwrap();
                }
                2 => {
                    eng.run().unwrap();
                }
                _ => {}
            }
        }
        eng.update().unwrap();
        (eng, p)
    };
    let (seq, sp) = drive(1);
    for &w in threads {
        let (par, pp) = drive(w);
        for (a, b) in [
            (sp.e, pp.e),
            (sp.t, pp.t),
            (sp.s, pp.s),
            (sp.node, pp.node),
            (sp.iso, pp.iso),
            (sp.grp, pp.grp),
        ] {
            assert_eq!(
                sorted_value_rows(&seq, a),
                sorted_value_rows(&par, b),
                "{w} workers diverge from sequential"
            );
            if !with_group {
                // Set-free program: evaluation interns nothing, so the
                // stores agree and the models must be bit-identical.
                assert_eq!(
                    sorted_id_rows(&seq, a),
                    sorted_id_rows(&par, b),
                    "{w} workers: TermIds diverge from sequential"
                );
            }
        }
    }
}

/// Retained demand spaces on the parallel path: a never-materialized
/// parallel session answering point queries (magic-set rewrite, seeded
/// continuations) must return bit-identical rows to the sequential
/// demand session across a fact/update/query interleaving.
fn check_parallel_demand(
    threads: &[usize],
    initial: &[(u8, u8)],
    updates: &[(u8, u8)],
    queries: &[(u8, (u8, u8))],
) {
    let drive = |threads: usize| -> Vec<Vec<Vec<TermId>>> {
        let (mut eng, p) = build(threads, true, false, false);
        let ids = atoms(&mut eng);
        for &(a, b) in initial {
            eng.fact(p.e, vec![ids[a as usize % 12], ids[b as usize % 12]])
                .unwrap();
        }
        let mut answers = Vec::new();
        // Interleave: one update batch, then the query list, repeated.
        let mut run_queries = |eng: &mut Engine| {
            for &(mask, consts) in queries {
                let consts = [consts.0, consts.1];
                let args: Vec<Option<TermId>> = (0..2)
                    .map(|i| (mask & (1 << i) != 0).then(|| ids[consts[i] as usize % 12]))
                    .collect();
                answers.push(eng.query(p.t, &args).unwrap().rows.sorted());
            }
        };
        run_queries(&mut eng);
        for &(a, b) in updates {
            eng.fact(p.e, vec![ids[a as usize % 12], ids[b as usize % 12]])
                .unwrap();
            eng.update().unwrap();
            run_queries(&mut eng);
        }
        answers
    };
    let seq = drive(1);
    for &w in threads {
        let par = drive(w);
        assert_eq!(seq, par, "{w}-worker demand answers diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Positive programs: parallel runs at 2/4/8 workers are
    /// bit-identical to the sequential run across random
    /// fact/update/run interleavings.
    #[test]
    fn parallel_equals_sequential_on_positive_programs(
        initial in proptest::collection::vec((0u8..12, 0u8..12), 0..40),
        updates in proptest::collection::vec(((0u8..12, 0u8..12), 0u8..3), 0..12),
        with_join in 0u8..2,
    ) {
        check_parallel_invisible(&[2, 4, 8], &initial, &updates, with_join == 1, false, false);
    }

    /// Mixed programs (negation strata, grouping heads): the
    /// parallel-safe rules fan out while the rest run sequentially in
    /// the same rounds; the merged model must still match.
    #[test]
    fn parallel_equals_sequential_under_negation_and_grouping(
        initial in proptest::collection::vec((0u8..12, 0u8..12), 0..32),
        updates in proptest::collection::vec(((0u8..12, 0u8..12), 0u8..3), 0..10),
        with_neg in 0u8..2,
        with_group in 0u8..2,
    ) {
        check_parallel_invisible(&[2, 4], &initial, &updates, true, with_neg == 1, with_group == 1);
    }

    /// Demand queries (magic rewrite, retained spaces, incremental
    /// re-seeding) answered on the parallel path match the sequential
    /// answers bit for bit.
    #[test]
    fn parallel_demand_queries_match_sequential(
        initial in proptest::collection::vec((0u8..12, 0u8..12), 0..28),
        updates in proptest::collection::vec((0u8..12, 0u8..12), 0..6),
        queries in proptest::collection::vec((0u8..4, (0u8..12, 0u8..12)), 1..5),
    ) {
        check_parallel_demand(&[2, 4], &initial, &updates, &queries);
    }
}

/// A deterministic dense workload that is guaranteed past the parallel
/// cutoff: the 2/4/8-worker models are bit-identical to sequential and
/// the parallel rounds actually ran.
#[test]
fn dense_chain_tc_is_bit_identical_and_parallel() {
    let n = 48usize;
    let drive = |threads: usize| {
        let (mut eng, p) = build(threads, true, false, false);
        let ids: Vec<TermId> = (0..n)
            .map(|i| eng.store_mut().atom(&format!("c{i}")))
            .collect();
        for w in ids.windows(2) {
            eng.fact(p.e, vec![w[0], w[1]]).unwrap();
        }
        eng.run().unwrap();
        (eng, p)
    };
    let (seq, sp) = drive(1);
    assert_eq!(seq.stats().parallel_rounds, 0, "threads=1 stays sequential");
    assert_eq!(seq.rows(sp.t).count(), n * (n - 1) / 2);
    for w in [2, 4, 8] {
        let (par, pp) = drive(w);
        assert!(
            par.stats().parallel_rounds > 0,
            "{w} workers: the fan-out must engage on a {n}-node chain"
        );
        assert!(par.stats().merge_rows > 0);
        assert_eq!(
            sorted_id_rows(&seq, sp.t),
            sorted_id_rows(&par, pp.t),
            "{w} workers: TermIds diverge"
        );
        assert_eq!(
            sorted_id_rows(&seq, sp.s),
            sorted_id_rows(&par, pp.s),
            "{w} workers: join TermIds diverge"
        );
    }
}

/// Skewed-partition stress: a hub node owns > 90 % of the delta rows
/// of the recursive round (every `t(hub, spoke)` tuple shares the hub
/// as probe key, so the hash split would assign them all to one
/// worker). The quota-capped rebalance must kick in: the model stays
/// exact, at least one task reports as rebalanced, and the observed
/// imbalance stays at or below the 150 trigger instead of the ~
/// `workers × 100` a pure hash split would show.
#[test]
fn skewed_partition_is_correct_and_reported() {
    let spokes = 24usize;
    let drive = |threads: usize| {
        let (mut eng, p) = build(threads, false, false, false);
        let hub = eng.store_mut().atom("hub");
        let pre = eng.store_mut().atom("pre");
        let spoke_ids: Vec<TermId> = (0..spokes)
            .map(|i| eng.store_mut().atom(&format!("s{i}")))
            .collect();
        // pre → hub → every spoke: round 1 seeds t with all edges,
        // round 2 scans that delta — 24 of its 25 rows keyed on `hub`.
        eng.fact(p.e, vec![pre, hub]).unwrap();
        for &s in &spoke_ids {
            eng.fact(p.e, vec![hub, s]).unwrap();
        }
        eng.run().unwrap();
        (eng, p)
    };
    let (seq, sp) = drive(1);
    // pre→hub, hub→s_i, pre→s_i.
    assert_eq!(seq.rows(sp.t).count(), 1 + 2 * spokes);
    for w in [2, 4] {
        let (par, pp) = drive(w);
        assert_eq!(
            sorted_id_rows(&seq, sp.t),
            sorted_id_rows(&par, pp.t),
            "{w} workers: skewed model diverges"
        );
        let stats = par.stats();
        assert!(stats.parallel_rounds > 0, "{w} workers: fan-out engaged");
        assert!(
            stats.partitions_rebalanced >= 1,
            "{w} workers: the hot hub key must trigger a rebalance"
        );
        assert!(
            stats.worker_imbalance <= 150,
            "{w} workers: quota capping must hold imbalance at/under the \
             150 trigger, got {}",
            stats.worker_imbalance
        );
    }
}
