//! Property test: incremental maintenance is invisible. Random
//! programs driven through random interleavings of `fact()` /
//! `update()` / `run()` must end on a model identical to a fresh batch
//! evaluation of the same facts — same `Value` extensions (the §6
//! equivalence criterion, restricted to the common predicates) and,
//! for programs that intern no new terms during evaluation, the same
//! interned `TermId` tuples bit for bit.

use proptest::prelude::*;

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::rule::{BodyLit, GroupSpec, Rule};
use lps_engine::{Engine, EvalConfig, PredId};
use lps_term::{TermId, Value};

fn v(i: u32) -> Pattern {
    Pattern::Var(VarId(i))
}

fn rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
    Rule {
        head,
        head_args,
        group: None,
        outer,
        quant: None,
        num_vars: nv,
        var_names: (0..nv).map(|i| format!("V{i}")).collect(),
        var_sorts: vec![],
    }
}

/// The predicates of the generated programs.
struct Preds {
    e: PredId,
    t: PredId,
    s: PredId,
    node: PredId,
    iso: PredId,
    grp: PredId,
}

/// Build an engine with the rule family selected by the flags:
/// transitive closure `t` over `e`, optionally a join `s`, optionally
/// a negation stratum (`iso(X) :- node(X), not t(X, X)` over derived
/// `node`), optionally an LDL grouping head.
fn build(with_join: bool, with_neg: bool, with_group: bool) -> (Engine, Preds) {
    let mut e = Engine::new(EvalConfig::default());
    let preds = Preds {
        e: e.pred("e", 2),
        t: e.pred("t", 2),
        s: e.pred("s", 2),
        node: e.pred("node", 1),
        iso: e.pred("iso", 1),
        grp: e.pred("grp", 2),
    };
    e.rule(rule(
        preds.t,
        vec![v(0), v(1)],
        vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
        2,
    ))
    .unwrap();
    e.rule(rule(
        preds.t,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.e, vec![v(0), v(1)]),
            BodyLit::Pos(preds.t, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    if with_join {
        // s(X, Z) :- t(X, Y), e(Y, Z).
        e.rule(rule(
            preds.s,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(preds.t, vec![v(0), v(1)]),
                BodyLit::Pos(preds.e, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
    }
    if with_neg {
        // node(X) :- e(X, Y).  iso(X) :- node(X), not t(X, X).
        e.rule(rule(
            preds.node,
            vec![v(0)],
            vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(rule(
            preds.iso,
            vec![v(0)],
            vec![
                BodyLit::Pos(preds.node, vec![v(0)]),
                BodyLit::Neg(preds.t, vec![v(0), v(0)]),
            ],
            1,
        ))
        .unwrap();
    }
    if with_group {
        // grp(X, <Y>) :- t(X, Y).
        let mut g = rule(
            preds.grp,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(preds.t, vec![v(0), v(1)])],
            2,
        );
        g.group = Some(GroupSpec {
            arg_pos: 1,
            var: VarId(1),
        });
        e.rule(g).unwrap();
    }
    (e, preds)
}

/// Intern node atoms in a fixed order so both engines agree on ids.
fn atoms(e: &mut Engine) -> Vec<TermId> {
    (0..6)
        .map(|i| e.store_mut().atom(&format!("n{i}")))
        .collect()
}

fn sorted_value_rows(e: &Engine, p: PredId) -> Vec<Vec<Value>> {
    e.extension(p)
}

fn sorted_id_rows(e: &Engine, p: PredId) -> Vec<Vec<TermId>> {
    let mut rows: Vec<Vec<TermId>> = e.rows(p).map(<[_]>::to_vec).collect();
    rows.sort();
    rows
}

/// Drive one engine through the interleaving and one through a single
/// batch load, then compare them on every predicate.
fn check_interleaving(
    initial: &[(u8, u8)],
    updates: &[((u8, u8), u8)],
    with_join: bool,
    with_neg: bool,
    with_group: bool,
) {
    let (mut inc, ip) = build(with_join, with_neg, with_group);
    let ids = atoms(&mut inc);
    for &(a, b) in initial {
        inc.fact(ip.e, vec![ids[a as usize], ids[b as usize]])
            .unwrap();
    }
    inc.run().unwrap();
    for &((a, b), action) in updates {
        inc.fact(ip.e, vec![ids[a as usize], ids[b as usize]])
            .unwrap();
        // action 0: let facts accumulate; 1: update; 2: run (which
        // must behave identically — dirty runs delegate to update).
        match action % 3 {
            1 => {
                inc.update().unwrap();
            }
            2 => {
                inc.run().unwrap();
            }
            _ => {}
        }
    }
    inc.update().unwrap();

    let (mut batch, bp) = build(with_join, with_neg, with_group);
    let bids = atoms(&mut batch);
    for &(a, b) in initial {
        batch
            .fact(bp.e, vec![bids[a as usize], bids[b as usize]])
            .unwrap();
    }
    for &((a, b), _) in updates {
        batch
            .fact(bp.e, vec![bids[a as usize], bids[b as usize]])
            .unwrap();
    }
    batch.run().unwrap();

    for (a, b) in [
        (ip.e, bp.e),
        (ip.t, bp.t),
        (ip.s, bp.s),
        (ip.node, bp.node),
        (ip.iso, bp.iso),
        (ip.grp, bp.grp),
    ] {
        assert_eq!(sorted_value_rows(&inc, a), sorted_value_rows(&batch, b));
        if !with_group {
            // No sets are interned during evaluation, so the two
            // stores intern identically: the models must agree on the
            // raw TermId tuples, bit for bit.
            assert_eq!(sorted_id_rows(&inc, a), sorted_id_rows(&batch, b));
        }
    }
}

/// The E12 machinery meets the demand pipeline: a session maintained
/// through incremental updates and a never-materialized session
/// answering point queries over *retained demand spaces* (the same
/// seeded-continuation machinery applied to the magic-rewritten
/// program, E14) must agree on every queried extension, bit for bit.
fn check_demand_agrees_with_maintained_model(
    initial: &[(u8, u8)],
    updates: &[(u8, u8)],
    queries: &[(u8, (u8, u8))],
) {
    let (mut inc, ip) = build(true, false, false);
    let ids = atoms(&mut inc);
    for &(a, b) in initial {
        inc.fact(ip.e, vec![ids[a as usize], ids[b as usize]])
            .unwrap();
    }
    inc.run().unwrap();
    for &(a, b) in updates {
        inc.fact(ip.e, vec![ids[a as usize], ids[b as usize]])
            .unwrap();
        inc.update().unwrap();
    }

    let (mut demand, dp) = build(true, false, false);
    let dids = atoms(&mut demand);
    for &(a, b) in initial.iter().chain(updates) {
        demand
            .fact(dp.e, vec![dids[a as usize], dids[b as usize]])
            .unwrap();
    }
    for &(mask, consts) in queries {
        let consts = [consts.0, consts.1];
        let args: Vec<Option<TermId>> = (0..2)
            .map(|i| (mask & (1 << i) != 0).then(|| dids[consts[i] as usize]))
            .collect();
        let res = demand.query(dp.t, &args).unwrap();
        let got = res.rows.sorted();
        let mut want: Vec<Vec<TermId>> = inc
            .rows(ip.t)
            .filter(|row| {
                row.iter()
                    .zip(&args)
                    .all(|(t, a)| a.is_none_or(|g| g == *t))
            })
            .map(<[_]>::to_vec)
            .collect();
        want.sort();
        assert_eq!(got, want, "mask {mask:#b}");
    }
}

proptest! {
    /// Positive programs (monotone): every update takes the seeded
    /// incremental path, and the final model is bit-identical to the
    /// batch model.
    #[test]
    fn incremental_equals_batch_on_positive_programs(
        initial in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        updates in proptest::collection::vec(((0u8..6, 0u8..6), 0u8..3), 0..12),
        with_join in 0u8..2,
    ) {
        check_interleaving(&initial, &updates, with_join == 1, false, false);
    }

    /// Programs with negation and grouping: updates fall back to the
    /// sound batch recompute, which must be just as invisible.
    #[test]
    fn incremental_equals_batch_under_negation_and_grouping(
        initial in proptest::collection::vec((0u8..6, 0u8..6), 0..10),
        updates in proptest::collection::vec(((0u8..6, 0u8..6), 0u8..3), 0..10),
        with_neg in 0u8..2,
        with_group in 0u8..2,
    ) {
        check_interleaving(&initial, &updates, true, with_neg == 1, with_group == 1);
    }

    /// Incrementally maintained models and retained-demand-space
    /// queries are two faces of the same seeded continuation: they
    /// must agree on every queried extension.
    #[test]
    fn demand_queries_agree_with_maintained_model(
        initial in proptest::collection::vec((0u8..6, 0u8..6), 0..10),
        updates in proptest::collection::vec((0u8..6, 0u8..6), 0..8),
        queries in proptest::collection::vec((0u8..4, (0u8..6, 0u8..6)), 1..6),
    ) {
        check_demand_agrees_with_maintained_model(&initial, &updates, &queries);
    }
}
