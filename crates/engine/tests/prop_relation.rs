//! Property tests for the arena-backed [`Relation`] against a naive
//! `Vec`-of-tuples + linear-scan reference model: random streams of
//! insert/clear operations, then membership and indexed-lookup
//! agreement across every column mask — with indexes created both
//! before and after the stream, so incremental maintenance and bulk
//! build are exercised on the same data.

use proptest::prelude::*;

use lps_engine::relation::{ColMask, Relation};
use lps_term::{TermId, TermStore};

/// Linear-scan reference model: insertion-ordered, deduplicated.
struct RefModel {
    rows: Vec<Vec<TermId>>,
}

impl RefModel {
    fn insert(&mut self, tuple: &[TermId]) -> bool {
        if self.rows.iter().any(|r| r == tuple) {
            return false;
        }
        self.rows.push(tuple.to_vec());
        true
    }

    fn contains(&self, tuple: &[TermId]) -> bool {
        self.rows.iter().any(|r| r == tuple)
    }

    /// Row ids whose `mask` columns equal `key`, in insertion order.
    fn lookup(&self, mask: ColMask, key: &[TermId]) -> Vec<u32> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| key_of(row, mask) == key)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// The `mask`-selected columns of a tuple, ascending column order.
fn key_of(tuple: &[TermId], mask: ColMask) -> Vec<TermId> {
    tuple
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &t)| t)
        .collect()
}

proptest! {
    /// insert/contains/lookup/clear agree with the reference model on
    /// random tuple streams over a small value universe (dense enough
    /// to force duplicates, shared index keys, and table growth).
    #[test]
    fn arena_matches_reference_model(
        arity in 1usize..4,
        ops in proptest::collection::vec((0u8..16, (0u8..6, 0u8..6, 0u8..6)), 1..120),
        probes in proptest::collection::vec((0u8..6, 0u8..6, 0u8..6), 0..24),
    ) {
        let mut store = TermStore::new();
        let atoms: Vec<TermId> = (0..6).map(|i| store.atom(&format!("a{i}"))).collect();
        let mut rel = Relation::new(arity);
        let mut model = RefModel { rows: Vec::new() };
        let all_masks: Vec<ColMask> = (1..(1u32 << arity)).collect();
        // Half the indexes exist from the start (incremental
        // maintenance); the rest are built after the stream (bulk).
        for &m in all_masks.iter().step_by(2) {
            rel.ensure_index(m);
        }
        for (op, (v0, v1, v2)) in &ops {
            let vals = [
                atoms[*v0 as usize],
                atoms[*v1 as usize],
                atoms[*v2 as usize],
            ];
            let tuple = &vals[..arity];
            if *op == 0 {
                // Occasional clear: both sides drop all tuples.
                rel.clear();
                model.rows.clear();
            } else {
                prop_assert_eq!(rel.insert(tuple), model.insert(tuple));
            }
            prop_assert_eq!(rel.len(), model.rows.len());
            prop_assert_eq!(rel.is_empty(), model.rows.is_empty());
        }
        for &m in &all_masks {
            rel.ensure_index(m);
        }
        // Arena rows agree with the model, in insertion order.
        for (i, row) in model.rows.iter().enumerate() {
            prop_assert_eq!(rel.row(i as u32), &row[..]);
        }
        let collected: Vec<Vec<TermId>> = rel.iter().map(<[_]>::to_vec).collect();
        prop_assert_eq!(&collected, &model.rows);
        // Membership and every-mask lookups, probing both present and
        // absent keys.
        for (v0, v1, v2) in &probes {
            let vals = [
                atoms[*v0 as usize],
                atoms[*v1 as usize],
                atoms[*v2 as usize],
            ];
            let tuple = &vals[..arity];
            prop_assert_eq!(rel.contains(tuple), model.contains(tuple));
            for &m in &all_masks {
                let key = key_of(tuple, m);
                prop_assert_eq!(rel.lookup(m, &key).to_vec(), model.lookup(m, &key));
            }
        }
    }

    /// A relation cleared and refilled behaves like a fresh one: clear
    /// keeps index definitions live and tables consistent.
    #[test]
    fn clear_then_refill_matches_fresh(
        tuples in proptest::collection::vec((0u8..5, 0u8..5), 1..60),
    ) {
        let mut store = TermStore::new();
        let atoms: Vec<TermId> = (0..5).map(|i| store.atom(&format!("a{i}"))).collect();
        let mut reused = Relation::new(2);
        reused.ensure_index(0b01);
        reused.ensure_index(0b10);
        // Fill with garbage, then clear.
        for (x, y) in &tuples {
            reused.insert(&[atoms[*y as usize], atoms[*x as usize]]);
        }
        reused.clear();
        let mut fresh = Relation::new(2);
        fresh.ensure_index(0b01);
        fresh.ensure_index(0b10);
        for (x, y) in &tuples {
            let t = [atoms[*x as usize], atoms[*y as usize]];
            prop_assert_eq!(reused.insert(&t), fresh.insert(&t));
        }
        prop_assert_eq!(reused.len(), fresh.len());
        for a in &atoms {
            prop_assert_eq!(reused.lookup(0b01, &[*a]), fresh.lookup(0b01, &[*a]));
            prop_assert_eq!(reused.lookup(0b10, &[*a]), fresh.lookup(0b10, &[*a]));
        }
    }
}
