//! Property test: observability is invisible. Structured tracing
//! (`EvalConfig::trace` + the global `lps_trace` collector) and
//! per-literal profiling (`EvalConfig::profile`) may only *record*
//! work, never change it — so for random programs (transitive closure,
//! a join, a builtin guard, optionally a negation stratum and a
//! grouping head) and random fact sets, evaluation with tracing or
//! profiling on must produce exactly what evaluation with them off
//! produces: bit-identical `TermId` rows on set-free programs,
//! `Value`-identical rows under grouping (whose set interning order
//! may legitimately differ), and the same demand/fallback decision for
//! every query shape.

use proptest::prelude::*;

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::rule::{BodyLit, Builtin, GroupSpec, Rule};
use lps_engine::{Engine, EvalConfig, PredId};
use lps_term::{TermId, Value};

fn v(i: u32) -> Pattern {
    Pattern::Var(VarId(i))
}

fn rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
    Rule {
        head,
        head_args,
        group: None,
        outer,
        quant: None,
        num_vars: nv,
        var_names: (0..nv).map(|i| format!("V{i}")).collect(),
        var_sorts: vec![],
    }
}

struct Preds {
    e: PredId,
    t: PredId,
    s: PredId,
    ne: PredId,
    node: PredId,
    iso: PredId,
    grp: PredId,
}

/// Build the generated program family under a given observability
/// configuration. When `trace` is on, the global collector is switched
/// on too, so span sites actually record (the two-gate design: the
/// config flag chooses the sites, the collector gate the sink).
fn build(trace: bool, profile: bool, with_neg: bool, with_group: bool) -> (Engine, Preds) {
    if trace {
        lps_trace::set_enabled(true);
    }
    let mut e = Engine::new(EvalConfig {
        trace,
        profile,
        ..EvalConfig::default()
    });
    let preds = Preds {
        e: e.pred("e", 2),
        t: e.pred("t", 2),
        s: e.pred("s", 2),
        ne: e.pred("ne", 2),
        node: e.pred("node", 1),
        iso: e.pred("iso", 1),
        grp: e.pred("grp", 2),
    };
    e.rule(rule(
        preds.t,
        vec![v(0), v(1)],
        vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
        2,
    ))
    .unwrap();
    // Right-linear: t(X, Z) :- e(X, Y), t(Y, Z).
    e.rule(rule(
        preds.t,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.e, vec![v(0), v(1)]),
            BodyLit::Pos(preds.t, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    // s(X, Z) :- t(X, Y), e(Y, Z).
    e.rule(rule(
        preds.s,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.t, vec![v(0), v(1)]),
            BodyLit::Pos(preds.e, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    // ne(X, Y) :- e(X, Y), t(Y, X), X != Y.
    e.rule(rule(
        preds.ne,
        vec![v(0), v(1)],
        vec![
            BodyLit::Pos(preds.e, vec![v(0), v(1)]),
            BodyLit::Pos(preds.t, vec![v(1), v(0)]),
            BodyLit::Builtin(Builtin::Ne, vec![v(0), v(1)]),
        ],
        2,
    ))
    .unwrap();
    if with_neg {
        e.rule(rule(
            preds.node,
            vec![v(0)],
            vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(rule(
            preds.iso,
            vec![v(0)],
            vec![
                BodyLit::Pos(preds.node, vec![v(0)]),
                BodyLit::Neg(preds.t, vec![v(0), v(0)]),
            ],
            1,
        ))
        .unwrap();
    }
    if with_group {
        let mut g = rule(
            preds.grp,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(preds.t, vec![v(0), v(1)])],
            2,
        );
        g.group = Some(GroupSpec {
            arg_pos: 1,
            var: VarId(1),
        });
        e.rule(g).unwrap();
    }
    (e, preds)
}

fn atoms(e: &mut Engine) -> Vec<TermId> {
    (0..6)
        .map(|i| e.store_mut().atom(&format!("n{i}")))
        .collect()
}

fn load_facts(e: &mut Engine, pred: PredId, ids: &[TermId], edges: &[(u8, u8)]) {
    for &(a, b) in edges {
        e.fact(pred, vec![ids[a as usize], ids[b as usize]])
            .unwrap();
    }
}

fn value_rows(e: &Engine, pred: PredId) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = e
        .rows(pred)
        .map(|row| {
            row.iter()
                .map(|&id| Value::from_store(e.store(), id))
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn all_preds(p: &Preds) -> [PredId; 7] {
    [p.e, p.t, p.s, p.ne, p.node, p.iso, p.grp]
}

/// Batch evaluation with observability on vs off: identical models and
/// identical work counters (spans record rounds, they must not add or
/// remove any).
fn check_batch(edges: &[(u8, u8)], with_neg: bool, with_group: bool) {
    let (mut on, p_on) = build(true, false, with_neg, with_group);
    let ids_on = atoms(&mut on);
    load_facts(&mut on, p_on.e, &ids_on, edges);
    let stats_on = on.run().unwrap();

    let (mut off, p_off) = build(false, false, with_neg, with_group);
    let ids_off = atoms(&mut off);
    load_facts(&mut off, p_off.e, &ids_off, edges);
    let stats_off = off.run().unwrap();

    for (pa, pb) in all_preds(&p_on).into_iter().zip(all_preds(&p_off)) {
        if with_group {
            assert_eq!(
                value_rows(&on, pa),
                value_rows(&off, pb),
                "tracing changed the model of {} (neg={with_neg} group={with_group})",
                on.pred_name(pa),
            );
        } else {
            let mut rows_on: Vec<Vec<TermId>> = on.rows(pa).map(<[_]>::to_vec).collect();
            let mut rows_off: Vec<Vec<TermId>> = off.rows(pb).map(<[_]>::to_vec).collect();
            rows_on.sort();
            rows_off.sort();
            assert_eq!(
                rows_on,
                rows_off,
                "tracing changed the model of {} (neg={with_neg})",
                on.pred_name(pa),
            );
        }
    }
    assert_eq!(stats_on.facts_derived, stats_off.facts_derived);
    assert_eq!(stats_on.iterations, stats_off.iterations);
    assert_eq!(stats_on.rule_evaluations, stats_off.rule_evaluations);
}

/// Pick the query predicate and argument list (as in `prop_planner`).
fn pick_query(
    p: &Preds,
    ids: &[TermId],
    which: u8,
    mask: u8,
    consts: (u8, u8),
) -> (PredId, Vec<Option<TermId>>) {
    let (pred, arity) = match which % 7 {
        0 => (p.e, 2),
        1 => (p.t, 2),
        2 => (p.s, 2),
        3 => (p.ne, 2),
        4 => (p.node, 1),
        5 => (p.iso, 1),
        _ => (p.grp, 2),
    };
    let consts = [consts.0, consts.1];
    let args: Vec<Option<TermId>> = (0..arity)
        .map(|i| (mask & (1 << i) != 0).then(|| ids[consts[i] as usize]))
        .collect();
    (pred, args)
}

/// Demand queries on fresh sessions with tracing *and* profiling on vs
/// both off: identical answers and an identical demand/fallback path
/// decision. Profiling additionally forces the sequential join path,
/// which must be answer-invisible too.
fn check_query(edges: &[(u8, u8)], which: u8, mask: u8, consts: (u8, u8), with_neg: bool) {
    let run = |observed: bool| {
        let (mut e, p) = build(observed, observed, with_neg, false);
        let ids = atoms(&mut e);
        load_facts(&mut e, p.e, &ids, edges);
        let (pred, args) = pick_query(&p, &ids, which, mask, consts);
        let res = e.query(pred, &args).unwrap();
        let profiled = e.last_profile().is_some();
        (res.rows.sorted(), res.path, profiled)
    };
    let (rows_on, path_on, _) = run(true);
    let (rows_off, path_off, profiled_off) = run(false);
    assert_eq!(
        rows_on, rows_off,
        "observability changed query answers (which={which} mask={mask:#b} neg={with_neg})"
    );
    assert_eq!(path_on, path_off, "observability changed the path decision");
    assert!(!profiled_off, "profiles must not appear with profile off");
}

proptest! {
    /// Batch fixpoints are trace-invariant, bit for bit — including
    /// around negation strata and under grouping heads.
    #[test]
    fn tracing_is_invisible_in_batch(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        with_neg in any::<bool>(),
        with_group in any::<bool>(),
    ) {
        check_batch(&edges, with_neg, with_group);
    }

    /// Demand queries are trace- and profile-invariant for every
    /// bound/free pattern over every predicate.
    #[test]
    fn tracing_and_profiling_are_invisible_to_queries(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        which in 0u8..7,
        mask in 0u8..4,
        consts in (0u8..6, 0u8..6),
        with_neg in any::<bool>(),
    ) {
        check_query(&edges, which, mask, consts, with_neg);
    }
}
