//! Property test: the cost-based planner is invisible. Join ordering
//! and SIPS selection may only change *work*, never answers — so for
//! random programs (transitive closure, joins, a builtin guard,
//! optionally a negation stratum and an LDL grouping head) and random
//! fact sets, evaluation with `cost_planner` on must produce exactly
//! what evaluation with it off produces: bit-identical `TermId` rows
//! on set-free programs, `Value`-identical rows under grouping (whose
//! set interning order may legitimately differ between runs). The
//! live-session stream drives the stale-statistics path: statistics
//! snapshots go stale after `fact()`/`run()` and are refreshed lazily,
//! and a plan compiled from any snapshot — fresh or stale — must still
//! answer exactly.

use proptest::prelude::*;

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::rule::{BodyLit, Builtin, GroupSpec, Rule};
use lps_engine::{Engine, EvalConfig, PredId, QueryPath};
use lps_term::{TermId, Value};

fn v(i: u32) -> Pattern {
    Pattern::Var(VarId(i))
}

fn rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
    Rule {
        head,
        head_args,
        group: None,
        outer,
        quant: None,
        num_vars: nv,
        var_names: (0..nv).map(|i| format!("V{i}")).collect(),
        var_sorts: vec![],
    }
}

struct Preds {
    e: PredId,
    t: PredId,
    s: PredId,
    ne: PredId,
    node: PredId,
    iso: PredId,
    grp: PredId,
}

/// The generated program family: *right-linear* transitive closure
/// (the orientation whose magic rewrite the cost SIPS actually
/// changes), a two-way join, a builtin guard (`!=` must stay after its
/// arguments bind, whatever the estimates say), and optionally a
/// negation stratum (negation may never be reordered ahead of its
/// bindings) and a grouping head.
fn build(planner: bool, with_neg: bool, with_group: bool) -> (Engine, Preds) {
    let mut e = Engine::new(EvalConfig {
        cost_planner: planner,
        ..EvalConfig::default()
    });
    let preds = Preds {
        e: e.pred("e", 2),
        t: e.pred("t", 2),
        s: e.pred("s", 2),
        ne: e.pred("ne", 2),
        node: e.pred("node", 1),
        iso: e.pred("iso", 1),
        grp: e.pred("grp", 2),
    };
    e.rule(rule(
        preds.t,
        vec![v(0), v(1)],
        vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
        2,
    ))
    .unwrap();
    // Right-linear: t(X, Z) :- e(X, Y), t(Y, Z).
    e.rule(rule(
        preds.t,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.e, vec![v(0), v(1)]),
            BodyLit::Pos(preds.t, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    // s(X, Z) :- t(X, Y), e(Y, Z).
    e.rule(rule(
        preds.s,
        vec![v(0), v(2)],
        vec![
            BodyLit::Pos(preds.t, vec![v(0), v(1)]),
            BodyLit::Pos(preds.e, vec![v(1), v(2)]),
        ],
        3,
    ))
    .unwrap();
    // ne(X, Y) :- e(X, Y), t(Y, X), X != Y.
    e.rule(rule(
        preds.ne,
        vec![v(0), v(1)],
        vec![
            BodyLit::Pos(preds.e, vec![v(0), v(1)]),
            BodyLit::Pos(preds.t, vec![v(1), v(0)]),
            BodyLit::Builtin(Builtin::Ne, vec![v(0), v(1)]),
        ],
        2,
    ))
    .unwrap();
    if with_neg {
        e.rule(rule(
            preds.node,
            vec![v(0)],
            vec![BodyLit::Pos(preds.e, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(rule(
            preds.iso,
            vec![v(0)],
            vec![
                BodyLit::Pos(preds.node, vec![v(0)]),
                BodyLit::Neg(preds.t, vec![v(0), v(0)]),
            ],
            1,
        ))
        .unwrap();
    }
    if with_group {
        let mut g = rule(
            preds.grp,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(preds.t, vec![v(0), v(1)])],
            2,
        );
        g.group = Some(GroupSpec {
            arg_pos: 1,
            var: VarId(1),
        });
        e.rule(g).unwrap();
    }
    (e, preds)
}

fn atoms(e: &mut Engine) -> Vec<TermId> {
    (0..6)
        .map(|i| e.store_mut().atom(&format!("n{i}")))
        .collect()
}

fn load_facts(e: &mut Engine, pred: PredId, ids: &[TermId], edges: &[(u8, u8)]) {
    for &(a, b) in edges {
        e.fact(pred, vec![ids[a as usize], ids[b as usize]])
            .unwrap();
    }
}

fn value_rows(e: &Engine, pred: PredId) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = e
        .rows(pred)
        .map(|row| {
            row.iter()
                .map(|&id| Value::from_store(e.store(), id))
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn all_preds(p: &Preds) -> [PredId; 7] {
    [p.e, p.t, p.s, p.ne, p.node, p.iso, p.grp]
}

/// Batch evaluation with the planner on vs off: identical models.
fn check_batch(edges: &[(u8, u8)], with_neg: bool, with_group: bool) {
    let (mut on, p_on) = build(true, with_neg, with_group);
    let ids_on = atoms(&mut on);
    load_facts(&mut on, p_on.e, &ids_on, edges);
    let stats_on = on.run().unwrap();

    let (mut off, p_off) = build(false, with_neg, with_group);
    let ids_off = atoms(&mut off);
    load_facts(&mut off, p_off.e, &ids_off, edges);
    let stats_off = off.run().unwrap();

    for (pa, pb) in all_preds(&p_on).into_iter().zip(all_preds(&p_off)) {
        if with_group {
            // Grouping interns result sets mid-run, and the planner may
            // change derivation order — so set TermIds can differ while
            // the denoted rows agree.
            assert_eq!(
                value_rows(&on, pa),
                value_rows(&off, pb),
                "planner changed the model of {} (neg={with_neg} group={with_group})",
                on.pred_name(pa),
            );
        } else {
            // Set-free: both engines interned the same atoms in the
            // same order, so rows must agree bit for bit.
            let mut rows_on: Vec<Vec<TermId>> = on.rows(pa).map(<[_]>::to_vec).collect();
            let mut rows_off: Vec<Vec<TermId>> = off.rows(pb).map(<[_]>::to_vec).collect();
            rows_on.sort();
            rows_off.sort();
            assert_eq!(
                rows_on,
                rows_off,
                "planner changed the model of {} (neg={with_neg})",
                on.pred_name(pa),
            );
        }
    }
    assert_eq!(
        stats_off.reorders_applied, 0,
        "planner off must never reorder"
    );
    // Same fixpoint, same tuples — only the visit order may differ.
    assert_eq!(stats_on.facts_derived, stats_off.facts_derived);
}

/// Pick the query predicate and argument list (as in `prop_magic`).
fn pick_query(
    p: &Preds,
    ids: &[TermId],
    which: u8,
    mask: u8,
    consts: (u8, u8),
) -> (PredId, Vec<Option<TermId>>) {
    let (pred, arity) = match which % 7 {
        0 => (p.e, 2),
        1 => (p.t, 2),
        2 => (p.s, 2),
        3 => (p.ne, 2),
        4 => (p.node, 1),
        5 => (p.iso, 1),
        _ => (p.grp, 2),
    };
    let consts = [consts.0, consts.1];
    let args: Vec<Option<TermId>> = (0..arity)
        .map(|i| (mask & (1 << i) != 0).then(|| ids[consts[i] as usize]))
        .collect();
    (pred, args)
}

/// Demand queries on fresh sessions, planner on vs off: identical
/// answers and an identical demand/fallback path decision (the cost
/// SIPS changes the rewrite, never its reach analysis).
fn check_query(edges: &[(u8, u8)], which: u8, mask: u8, consts: (u8, u8), with_neg: bool) {
    let run = |planner: bool| {
        let (mut e, p) = build(planner, with_neg, false);
        let ids = atoms(&mut e);
        load_facts(&mut e, p.e, &ids, edges);
        let (pred, args) = pick_query(&p, &ids, which, mask, consts);
        let res = e.query(pred, &args).unwrap();
        (res.rows.sorted(), res.path)
    };
    let (rows_on, path_on) = run(true);
    let (rows_off, path_off) = run(false);
    assert_eq!(
        rows_on, rows_off,
        "planner changed query answers (which={which} mask={mask:#b} neg={with_neg})"
    );
    assert_eq!(path_on, path_off, "planner changed the path decision");
    if which % 7 == 5 && with_neg {
        assert_eq!(path_on, QueryPath::Fallback, "negation goals fall back");
    }
}

/// One step of a random live-session interleaving (the
/// stale-statistics path: every `fact()`/`run()` invalidates the
/// statistics snapshot, every compile refreshes it lazily — and
/// between the two, plans keep running on stale estimates).
#[derive(Clone, Debug)]
enum Op {
    Fact(u8, u8),
    Update,
    Query {
        which: u8,
        mask: u8,
        consts: (u8, u8),
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..6), (0u8..6)).prop_map(|(a, b)| Op::Fact(a, b)),
        Just(Op::Update),
        ((0u8..7), (0u8..4), ((0u8..6), (0u8..6))).prop_map(|(which, mask, consts)| Op::Query {
            which,
            mask,
            consts
        }),
    ]
}

/// Drive one planner-on live session through a random interleaving of
/// `fact()` / `run()` / `query()`, checking every query against a
/// fresh *planner-off* engine that materializes the same fact set and
/// filters. Statistics refreshed at any earlier step describe a
/// smaller database than the one being queried — the plans they
/// produced must still answer exactly.
fn check_stale_stats_stream(ops: &[Op], with_neg: bool) {
    let (mut live, lp) = build(true, with_neg, false);
    let lids = atoms(&mut live);
    let mut facts: Vec<(u8, u8)> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Fact(a, b) => {
                live.fact(lp.e, vec![lids[a as usize], lids[b as usize]])
                    .unwrap();
                facts.push((a, b));
            }
            Op::Update => {
                live.run().unwrap();
            }
            Op::Query {
                which,
                mask,
                consts,
            } => {
                let (pred, args) = pick_query(&lp, &lids, which, mask, consts);
                let got = live.query(pred, &args).unwrap().rows.sorted();

                let (mut reference, rp) = build(false, with_neg, false);
                let rids = atoms(&mut reference);
                load_facts(&mut reference, rp.e, &rids, &facts);
                reference.run().unwrap();
                let (rpred, rargs) = pick_query(&rp, &rids, which, mask, consts);
                let mut want: Vec<Vec<TermId>> = reference
                    .rows(rpred)
                    .filter(|row| {
                        row.iter()
                            .zip(&rargs)
                            .all(|(t, a)| a.is_none_or(|g| g == *t))
                    })
                    .map(<[_]>::to_vec)
                    .collect();
                want.sort();
                assert_eq!(
                    got, want,
                    "step {step}: query {which} mask {mask:#b} (neg={with_neg})"
                );
            }
        }
    }
}

proptest! {
    /// Batch fixpoints are planner-invariant, bit for bit — including
    /// around negation strata and under grouping heads.
    #[test]
    fn planner_is_invisible_in_batch(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        with_neg in any::<bool>(),
        with_group in any::<bool>(),
    ) {
        check_batch(&edges, with_neg, with_group);
    }

    /// Demand queries are planner-invariant for every bound/free
    /// pattern over every predicate, and the planner never flips the
    /// demand/fallback decision.
    #[test]
    fn planner_is_invisible_to_queries(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        which in 0u8..7,
        mask in 0u8..4,
        consts in (0u8..6, 0u8..6),
        with_neg in any::<bool>(),
    ) {
        check_query(&edges, which, mask, consts, with_neg);
    }

    /// Live sessions keep answering exactly while their statistics
    /// snapshots go stale and refresh across fact arrivals and
    /// materializations.
    #[test]
    fn planner_survives_stale_statistics(
        ops in proptest::collection::vec(op_strategy(), 1..14),
        with_neg in any::<bool>(),
    ) {
        check_stale_stats_stream(&ops, with_neg);
    }
}
