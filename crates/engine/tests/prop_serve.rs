//! Concurrency properties of the epoch-published snapshot layer
//! (`lps_engine::snapshot`): readers racing a publishing writer never
//! observe a torn epoch, and every answer they extract equals the
//! answer of *some* published engine state — a sequential prefix of
//! the writer's update stream.
//!
//! The workload is a growing chain `0 → 1 → … → m` under transitive
//! closure: after the writer's `k`-th reconciled update, the answer to
//! `path(0, X)` is exactly `{(0, 1), …, (0, m_k)}`. That shape is what
//! makes torn reads *detectable*: a reader that mixed relations, store,
//! or plans from two epochs would see a row set that is not a chain
//! prefix (a hole, a dangling `TermId`, a count between prefixes), and
//! the per-row integer lift would catch a store/relation mismatch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::{BodyLit, Engine, EvalConfig, PredId, Rule, SnapshotPublisher};

/// `edge`/`path` transitive closure over `0 → 1 → … → n`.
fn chain_engine(n: i64) -> (Engine, PredId, PredId) {
    let mut e = Engine::new(EvalConfig::default());
    let edge = e.pred("edge", 2);
    let path = e.pred("path", 2);
    let v = |i| Pattern::Var(VarId(i));
    e.rule(Rule {
        head: path,
        head_args: vec![v(0), v(1)],
        group: None,
        outer: vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
        quant: None,
        num_vars: 2,
        var_names: vec!["X".into(), "Y".into()],
        var_sorts: vec![],
    })
    .unwrap();
    e.rule(Rule {
        head: path,
        head_args: vec![v(0), v(2)],
        group: None,
        outer: vec![
            BodyLit::Pos(path, vec![v(0), v(1)]),
            BodyLit::Pos(edge, vec![v(1), v(2)]),
        ],
        quant: None,
        num_vars: 3,
        var_names: vec!["X".into(), "Y".into(), "Z".into()],
        var_sorts: vec![],
    })
    .unwrap();
    for i in 0..n {
        let a = e.store_mut().int(i);
        let b = e.store_mut().int(i + 1);
        e.fact(edge, vec![a, b]).unwrap();
    }
    (e, edge, path)
}

/// Assert that a snapshot's answer to `path(0, X)` is a chain prefix
/// `{(0, 1), …, (0, m)}` with `base ≤ m ≤ limit`, lifting every
/// `TermId` through the snapshot's own store. Returns `m`.
fn assert_chain_prefix(
    snap: &lps_engine::EngineSnapshot,
    path: PredId,
    base: i64,
    limit: i64,
) -> Option<i64> {
    let zero = snap.store().find_int(0)?;
    let rows = snap.try_query(path, &[Some(zero), None])?;
    let mut targets: Vec<i64> = rows
        .iter()
        .map(|row| {
            assert_eq!(row.len(), 2, "epoch {}: row arity", snap.epoch());
            assert_eq!(
                snap.store().as_int(row[0]),
                Some(0),
                "epoch {}: bound column must lift to 0 in this epoch's store",
                snap.epoch()
            );
            snap.store()
                .as_int(row[1])
                .expect("free column lifts to an int in this epoch's store")
        })
        .collect();
    targets.sort_unstable();
    let m = targets.len() as i64;
    assert!(
        (base..=limit).contains(&m),
        "epoch {}: answer count {m} is no published prefix (expected {base}..={limit})",
        snap.epoch()
    );
    let want: Vec<i64> = (1..=m).collect();
    assert_eq!(
        targets,
        want,
        "epoch {}: torn answer set — not the chain prefix of length {m}",
        snap.epoch()
    );
    Some(m)
}

/// Materialized-model serving: M readers hammer `path(0, X)` while the
/// writer appends an edge, reconciles, and republishes, K times. Every
/// read must be a chain prefix between the initial and final lengths,
/// and each reader's observed epoch and prefix must be monotone (the
/// epoch pointer never goes backwards).
#[test]
fn concurrent_readers_see_only_published_prefixes_materialized() {
    const BASE: i64 = 8;
    const UPDATES: i64 = 120;
    const READERS: usize = 4;
    let (mut e, edge, path) = chain_engine(BASE);
    e.run().unwrap();
    let mut publisher = SnapshotPublisher::new(&mut e);
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let reader = publisher.reader();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut last_epoch = 0u64;
                let mut last_m = 0i64;
                while !done.load(Ordering::SeqCst) {
                    let snap = reader.current();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch pointer went backwards: {} after {last_epoch}",
                        snap.epoch()
                    );
                    let m = assert_chain_prefix(&snap, path, BASE, BASE + UPDATES)
                        .expect("materialized epochs always serve");
                    if snap.epoch() == last_epoch {
                        assert!(m >= last_m, "same epoch shrank its answer");
                    }
                    last_epoch = snap.epoch();
                    last_m = m;
                    reads += 1;
                }
                reads
            })
        })
        .collect();
    for k in 0..UPDATES {
        let a = e.store_mut().int(BASE + k);
        let b = e.store_mut().int(BASE + k + 1);
        e.fact(edge, vec![a, b]).unwrap();
        e.update().unwrap();
        publisher.publish(&mut e);
    }
    done.store(true, Ordering::SeqCst);
    let mut total_reads = 0;
    for h in handles {
        total_reads += h.join().expect("reader panicked (torn read)");
    }
    assert!(total_reads > 0, "readers must have observed something");
    // The final epoch shows the fully grown chain.
    let snap = publisher.reader().current();
    assert_eq!(
        assert_chain_prefix(&snap, path, BASE + UPDATES, BASE + UPDATES),
        Some(BASE + UPDATES)
    );
}

/// Demand-plan serving: the writer never materializes — it answers
/// `path(0, X)` through the retained demand plan after each appended
/// edge, then republishes. Readers may find an epoch unservable (a
/// pending fact unpublishes the plans — that is the funnel contract,
/// not an error), but every *served* answer must be a chain prefix,
/// and old epochs pinned by a reader must stay fully readable while
/// the writer races ahead.
#[test]
fn concurrent_readers_on_demand_plans_funnel_or_agree() {
    const BASE: i64 = 8;
    const UPDATES: i64 = 60;
    const READERS: usize = 3;
    let (mut e, edge, path) = chain_engine(BASE);
    let zero = e.store_mut().int(0);
    // Seed the demand space; the plan is retained across updates.
    e.query(path, &[Some(zero), None]).unwrap();
    let mut publisher = SnapshotPublisher::new(&mut e);
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let reader = publisher.reader();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut pinned: Option<std::sync::Arc<lps_engine::EngineSnapshot>> = None;
                while !done.load(Ordering::SeqCst) {
                    let snap = reader.current();
                    if assert_chain_prefix(&snap, path, BASE, BASE + UPDATES).is_some() {
                        served += 1;
                        // Pin this epoch and re-read it later: it must
                        // answer identically no matter how far the
                        // writer has advanced since.
                        pinned = Some(snap);
                    }
                    if let Some(old) = &pinned {
                        assert_chain_prefix(old, path, BASE, BASE + UPDATES)
                            .expect("a pinned epoch stays servable forever");
                    }
                }
                served
            })
        })
        .collect();
    for k in 0..UPDATES {
        let a = e.store_mut().int(BASE + k);
        let b = e.store_mut().int(BASE + k + 1);
        e.fact(edge, vec![a, b]).unwrap();
        // The demand continuation folds the new edge into the retained
        // plan — the writer-side answer is the source of truth.
        let rows = e.query(path, &[Some(zero), None]).unwrap().rows;
        assert_eq!(rows.len() as i64, BASE + k + 1);
        publisher.publish(&mut e);
    }
    done.store(true, Ordering::SeqCst);
    let mut served = 0;
    for h in handles {
        served += h.join().expect("reader panicked (torn read)");
    }
    assert!(served > 0, "published plan epochs must serve lock-free");
    let snap = publisher.reader().current();
    assert_eq!(
        assert_chain_prefix(&snap, path, BASE + UPDATES, BASE + UPDATES),
        Some(BASE + UPDATES)
    );
}
