//! Engine-level rule intermediate representation.
//!
//! A [`Rule`] is the compiled form of an LPS clause (Definition 5 of
//! the paper, plus the stratified-negation and LDL-grouping
//! extensions). `lps-core` lowers surface clauses to this IR; the
//! engine plans and evaluates it.
//!
//! Shape:
//!
//! ```text
//! head(args…) :- outer₁, …, outerₘ,
//!                (∀q₁∈D₁)…(∀qₙ∈Dₙ)(inner₁, …, innerₖ).
//! ```
//!
//! * `outer` literals are evaluated as a join.
//! * The optional quantifier group is evaluated *as a unit* — the
//!   paper's §4.1 warns that `(∀x∈X)(A ∧ B)` is **not** `A ∧ (∀x∈X)B`
//!   when `X` may be empty, so inner literals are never hoisted.
//! * A grouping head slot (`<X>`) makes the rule an LDL grouping rule
//!   (Definition 14), evaluated at a stratum boundary.

use lps_term::Sort;

use crate::pattern::{Pattern, VarId};
use crate::pred::PredId;

/// A body literal.
#[derive(Clone, Debug, PartialEq)]
pub enum BodyLit {
    /// Positive occurrence of a user predicate.
    Pos(PredId, Vec<Pattern>),
    /// Negated occurrence (stratified; all variables must be bound
    /// before evaluation).
    Neg(PredId, Vec<Pattern>),
    /// A builtin relation.
    Builtin(Builtin, Vec<Pattern>),
}

impl BodyLit {
    /// Variables appearing in the literal.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        match self {
            BodyLit::Pos(_, args) | BodyLit::Neg(_, args) | BodyLit::Builtin(_, args) => {
                for a in args {
                    a.collect_vars(&mut out);
                }
            }
        }
        out
    }

    /// The predicate if this is a positive atom.
    pub fn pos_pred(&self) -> Option<PredId> {
        match self {
            BodyLit::Pos(p, _) => Some(*p),
            _ => None,
        }
    }
}

/// Builtin relations with their paper provenance.
///
/// Each builtin supports a set of *modes* (bound/free argument
/// combinations); see `crate::builtin` for the mode tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Builtin {
    /// `x = y` — `=ᵃ` / `=ˢ` of Definition 1 (sort-agnostic here;
    /// sort checking happens in `lps-core`).
    Eq,
    /// `x != y` — used by Example 1's `disj`.
    Ne,
    /// `x in S` — membership `∈`.
    In,
    /// `x notin S` — negated membership (requires both bound).
    NotIn,
    /// `subseteq(X, Y)` — the ⊆ relation of Example 2, provided as a
    /// builtin so translated programs need not redefine it.
    SubsetEq,
    /// `union(X, Y, Z)` — `Z = X ∪ Y` (Definition 15.1).
    Union,
    /// `disj_union(X, Y, Z)` — `Z = X ⊎ Y` (Example 5). The inverse
    /// mode enumerates all `2^|Z|` ordered partitions — the paper's
    /// recursive `sum` semantics.
    DisjUnion,
    /// `scons(x, Y, Z)` — `Z = {x} ∪ Y` (Definition 15.2).
    Scons,
    /// `scons_min(x, Y, Z)` — canonical decomposition: additionally
    /// requires `x = min Z`, `x ∉ Y`. Engineering extension (E6).
    SconsMin,
    /// `card(S, n)` — cardinality.
    Card,
    /// `add(m, n, k)` — `m + n = k`.
    Add,
    /// `sub(m, n, k)` — `m - n = k`.
    Sub,
    /// `mul(m, n, k)` — `m * n = k`.
    Mul,
    /// `m < n` on integers.
    Lt,
    /// `m <= n` on integers.
    Le,
}

impl Builtin {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Eq
            | Builtin::Ne
            | Builtin::In
            | Builtin::NotIn
            | Builtin::SubsetEq
            | Builtin::Card
            | Builtin::Lt
            | Builtin::Le => 2,
            Builtin::Union
            | Builtin::DisjUnion
            | Builtin::Scons
            | Builtin::SconsMin
            | Builtin::Add
            | Builtin::Sub
            | Builtin::Mul => 3,
        }
    }

    /// Surface name (for diagnostics and the builtin-name registry).
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Eq => "=",
            Builtin::Ne => "!=",
            Builtin::In => "in",
            Builtin::NotIn => "notin",
            Builtin::SubsetEq => "subseteq",
            Builtin::Union => "union",
            Builtin::DisjUnion => "disj_union",
            Builtin::Scons => "scons",
            Builtin::SconsMin => "scons_min",
            Builtin::Card => "card",
            Builtin::Add => "add",
            Builtin::Sub => "sub",
            Builtin::Mul => "mul",
            Builtin::Lt => "<",
            Builtin::Le => "<=",
        }
    }

    /// Resolve a surface predicate name used in call position
    /// (`union(X, Y, Z)` etc.) to a builtin.
    pub fn from_pred_name(name: &str, arity: usize) -> Option<Builtin> {
        let b = match (name, arity) {
            ("subseteq", 2) => Builtin::SubsetEq,
            ("union", 3) => Builtin::Union,
            ("disj_union", 3) => Builtin::DisjUnion,
            ("scons", 3) => Builtin::Scons,
            ("scons_min", 3) => Builtin::SconsMin,
            ("card", 2) => Builtin::Card,
            ("add", 3) => Builtin::Add,
            ("sub", 3) => Builtin::Sub,
            ("mul", 3) => Builtin::Mul,
            _ => return None,
        };
        Some(b)
    }
}

/// The quantifier group of a rule: the prefix
/// `(∀q₁∈D₁)…(∀qₙ∈Dₙ)` plus the literals in its scope.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantGroup {
    /// Binders in prefix order: `(element variable, domain pattern)`.
    /// Domains are terms of sort *s* (usually variables).
    pub binders: Vec<(VarId, Pattern)>,
    /// Literals under the quantifiers.
    pub inner: Vec<BodyLit>,
}

impl QuantGroup {
    /// Variables free in the group: domain variables plus inner-literal
    /// variables that are not bound by a binder.
    pub fn free_vars(&self) -> Vec<VarId> {
        let bound: Vec<VarId> = self.binders.iter().map(|(v, _)| *v).collect();
        let mut out = Vec::new();
        for (_, d) in &self.binders {
            d.collect_vars(&mut out);
        }
        for lit in &self.inner {
            for v in lit.vars() {
                if !bound.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out.retain(|v| !bound.contains(v));
        out
    }
}

/// A compiled rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Head predicate.
    pub head: PredId,
    /// Head argument patterns. For a grouping rule the grouping slot
    /// is the `group.arg_pos`-th entry and holds the group variable.
    pub head_args: Vec<Pattern>,
    /// LDL grouping spec, if the head had a `<X>` slot.
    pub group: Option<GroupSpec>,
    /// Literals outside any quantifier.
    pub outer: Vec<BodyLit>,
    /// The optional restricted-universal-quantifier prefix group.
    pub quant: Option<QuantGroup>,
    /// Total number of distinct variables in the rule.
    pub num_vars: usize,
    /// Variable names, indexed by [`VarId`] — for diagnostics.
    pub var_names: Vec<String>,
    /// Optional per-variable sort annotations (from `lps-core`'s
    /// two-sorted inference, §2.1). `None`/missing = untyped (ELPS).
    /// Universe-enumeration steps respect these, so an LPS-sorted
    /// set variable never ranges over atoms.
    pub var_sorts: Vec<Option<Sort>>,
}

/// Grouping head information (Definition 14).
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSpec {
    /// Which head argument position is the grouping slot.
    pub arg_pos: usize,
    /// The variable whose values are collected into a set.
    pub var: VarId,
}

impl Rule {
    /// All body literals (outer then inner), for dependency analysis.
    pub fn all_body_lits(&self) -> impl Iterator<Item = &BodyLit> {
        self.outer
            .iter()
            .chain(self.quant.iter().flat_map(|q| q.inner.iter()))
    }

    /// Whether the rule is a plain fact (ground head, empty body).
    pub fn is_fact(&self) -> bool {
        self.outer.is_empty()
            && self.quant.is_none()
            && self.group.is_none()
            && self
                .head_args
                .iter()
                .all(|p| matches!(p, Pattern::Ground(_)))
    }

    /// The sort annotation of a variable, if any.
    pub fn var_sort(&self, v: VarId) -> Option<Sort> {
        self.var_sorts.get(v.index()).copied().flatten()
    }

    /// Human-readable name of a variable (for error messages).
    pub fn var_name(&self, v: VarId) -> &str {
        self.var_names
            .get(v.index())
            .map(String::as_str)
            .unwrap_or("?")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_arities_and_names_are_consistent() {
        for b in [
            Builtin::Eq,
            Builtin::Ne,
            Builtin::In,
            Builtin::NotIn,
            Builtin::SubsetEq,
            Builtin::Union,
            Builtin::DisjUnion,
            Builtin::Scons,
            Builtin::SconsMin,
            Builtin::Card,
            Builtin::Add,
            Builtin::Sub,
            Builtin::Mul,
            Builtin::Lt,
            Builtin::Le,
        ] {
            assert!(b.arity() == 2 || b.arity() == 3);
            // Round-trip through the name registry for the callable ones.
            if let Some(b2) = Builtin::from_pred_name(b.name(), b.arity()) {
                assert_eq!(b, b2);
            }
        }
    }

    #[test]
    fn from_pred_name_checks_arity() {
        assert_eq!(Builtin::from_pred_name("union", 3), Some(Builtin::Union));
        assert_eq!(Builtin::from_pred_name("union", 2), None);
        assert_eq!(Builtin::from_pred_name("nonsense", 3), None);
    }

    #[test]
    fn quant_group_free_vars_exclude_binders() {
        use crate::pattern::Pattern as P;
        let q = QuantGroup {
            binders: vec![(VarId(0), P::Var(VarId(1)))],
            inner: vec![BodyLit::Builtin(
                Builtin::In,
                vec![P::Var(VarId(0)), P::Var(VarId(2))],
            )],
        };
        assert_eq!(q.free_vars(), vec![VarId(1), VarId(2)]);
    }

    #[test]
    fn fact_detection() {
        let rule = Rule {
            head: crate::pred::PredRegistry::new().ids().next().unwrap_or({
                // Construct a PredId the honest way.
                let mut syms = lps_term::SymbolTable::new();
                let p = syms.intern("p");
                let mut reg = crate::pred::PredRegistry::new();
                reg.register(p, 0)
            }),
            head_args: vec![],
            group: None,
            outer: vec![],
            quant: None,
            num_vars: 0,
            var_names: vec![],
            var_sorts: vec![],
        };
        assert!(rule.is_fact());
    }
}
