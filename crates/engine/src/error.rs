//! Engine error types.

use std::fmt;

/// Errors raised while planning or evaluating a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A rule cannot be evaluated safely: some variable can never be
    /// bound by any literal ordering.
    Unsafe {
        /// Head predicate name.
        rule_head: String,
        /// Offending variable name.
        var: String,
        /// Explanation of what binding was missing.
        detail: String,
    },
    /// Negation (or grouping) occurs inside a recursive cycle, so the
    /// program has no stratification (§4.2 / \[ABW86\]).
    NotStratified {
        /// Predicate on the offending cycle.
        pred: String,
        /// Predicate it depends on through negation/grouping.
        through: String,
    },
    /// A builtin was invoked with a binding pattern it does not
    /// support (e.g. `add` with two free arguments).
    UnsupportedMode {
        /// Builtin name.
        builtin: &'static str,
        /// Human-readable mode description, e.g. `(free, free, bound)`.
        mode: String,
    },
    /// A builtin received an argument of the wrong shape at runtime
    /// (e.g. `card` of a non-set, `add` of a non-integer).
    TypeError {
        /// Builtin name.
        builtin: &'static str,
        /// What went wrong.
        detail: String,
    },
    /// Evaluation exceeded the configured iteration budget — the
    /// program likely generates unboundedly many terms (possible in
    /// ELPS: set constructors act like function symbols).
    IterationLimit {
        /// The configured bound.
        limit: usize,
    },
    /// Arity mismatch when loading facts or constructing rules.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Declared/registered arity.
        expected: usize,
        /// Provided arity.
        got: usize,
    },
    /// The `ActiveSubsets` universe policy would materialize too many
    /// sets (the powerset is exponential in the atom count).
    UniverseTooLarge {
        /// Atoms in the active domain.
        atoms: usize,
        /// The hard cap.
        max: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Unsafe {
                rule_head,
                var,
                detail,
            } => write!(
                f,
                "unsafe rule for `{rule_head}`: variable `{var}` cannot be bound ({detail})"
            ),
            EngineError::NotStratified { pred, through } => write!(
                f,
                "program is not stratified: `{pred}` depends negatively (or via grouping) on \
                 `{through}` inside a recursive cycle"
            ),
            EngineError::UnsupportedMode { builtin, mode } => {
                write!(f, "builtin `{builtin}` does not support mode {mode}")
            }
            EngineError::TypeError { builtin, detail } => {
                write!(f, "type error in builtin `{builtin}`: {detail}")
            }
            EngineError::IterationLimit { limit } => write!(
                f,
                "fixpoint did not converge within {limit} iterations \
                 (set constructors may be generating unboundedly many terms)"
            ),
            EngineError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for `{pred}`: expected {expected} arguments, got {got}"
            ),
            EngineError::UniverseTooLarge { atoms, max } => write!(
                f,
                "ActiveSubsets universe over {atoms} atoms exceeds the cap of {max} \
                 (the powerset would be 2^{atoms} sets)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = EngineError::Unsafe {
            rule_head: "p".into(),
            var: "X".into(),
            detail: "only occurs under a universal quantifier".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("`p`"));
        assert!(msg.contains("`X`"));

        let e = EngineError::NotStratified {
            pred: "win".into(),
            through: "win".into(),
        };
        assert!(e.to_string().contains("stratified"));

        let e = EngineError::IterationLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
