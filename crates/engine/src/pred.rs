//! Predicate identifiers and the predicate registry.

use lps_term::{FxHashMap, Symbol};

/// Identifier of a registered predicate (name + arity pair).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredId(u32);

impl PredId {
    /// Raw index into the registry.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a predicate id from a raw index previously obtained from
    /// [`PredId::index`]. The caller must ensure it came from the same
    /// registry.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        PredId(u32::try_from(index).expect("predicate registry overflow"))
    }
}

/// Metadata for one predicate.
#[derive(Clone, Debug)]
pub struct PredInfo {
    /// Interned name.
    pub name: Symbol,
    /// Number of arguments.
    pub arity: usize,
}

/// Append-only registry mapping `(name, arity)` to [`PredId`].
///
/// Predicates are identified by name *and* arity, so `p/1` and `p/2`
/// are distinct — matching standard logic-programming convention.
#[derive(Default, Debug, Clone)]
pub struct PredRegistry {
    preds: Vec<PredInfo>,
    by_key: FxHashMap<(Symbol, usize), PredId>,
}

impl PredRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a predicate.
    pub fn register(&mut self, name: Symbol, arity: usize) -> PredId {
        if let Some(&id) = self.by_key.get(&(name, arity)) {
            return id;
        }
        let id = PredId::from_index(self.preds.len());
        self.preds.push(PredInfo { name, arity });
        self.by_key.insert((name, arity), id);
        id
    }

    /// Look up a predicate without registering it.
    pub fn get(&self, name: Symbol, arity: usize) -> Option<PredId> {
        self.by_key.get(&(name, arity)).copied()
    }

    /// Metadata for `id`.
    pub fn info(&self, id: PredId) -> &PredInfo {
        &self.preds[id.index()]
    }

    /// Number of registered predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterate over all predicate ids.
    pub fn ids(&self) -> impl Iterator<Item = PredId> {
        (0..self.preds.len()).map(PredId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_term::SymbolTable;

    #[test]
    fn register_is_idempotent() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let mut reg = PredRegistry::new();
        let id1 = reg.register(p, 2);
        let id2 = reg.register(p, 2);
        assert_eq!(id1, id2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn arity_disambiguates() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let mut reg = PredRegistry::new();
        let p1 = reg.register(p, 1);
        let p2 = reg.register(p, 2);
        assert_ne!(p1, p2);
        assert_eq!(reg.info(p1).arity, 1);
        assert_eq!(reg.info(p2).arity, 2);
    }

    #[test]
    fn get_does_not_register() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let reg = PredRegistry::new();
        assert_eq!(reg.get(p, 1), None);
    }
}
