//! Predicate identifiers and the predicate registry.

use lps_term::{FxHashMap, Symbol};

/// Identifier of a registered predicate (name + arity pair).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredId(u32);

impl PredId {
    /// Raw index into the registry.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a predicate id from a raw index previously obtained from
    /// [`PredId::index`]. The caller must ensure it came from the same
    /// registry.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        PredId(u32::try_from(index).expect("predicate registry overflow"))
    }
}

/// Metadata for one predicate.
#[derive(Clone, Debug)]
pub struct PredInfo {
    /// Interned name.
    pub name: Symbol,
    /// Number of arguments.
    pub arity: usize,
}

/// Registry mapping `(name, arity)` to [`PredId`].
///
/// Predicates are identified by name *and* arity, so `p/1` and `p/2`
/// are distinct — matching standard logic-programming convention.
///
/// Slots are recyclable: [`PredRegistry::release`] returns an id's
/// slot to a free list, and the next [`PredRegistry::register`] of a
/// *new* key reuses it instead of growing the table. The engine
/// releases the demand-internal (adorned/magic/shape) predicates of
/// evicted query plans this way, so a long-lived session's registry —
/// and the positional relation vectors sized from it — stay bounded
/// by the live plans rather than by every adornment ever queried.
#[derive(Default, Debug, Clone)]
pub struct PredRegistry {
    preds: Vec<PredInfo>,
    by_key: FxHashMap<(Symbol, usize), PredId>,
    /// Released slot indices, reused LIFO by [`PredRegistry::register`].
    free: Vec<u32>,
}

impl PredRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a predicate. New keys fill a released
    /// slot when one is available.
    pub fn register(&mut self, name: Symbol, arity: usize) -> PredId {
        if let Some(&id) = self.by_key.get(&(name, arity)) {
            return id;
        }
        let id = match self.free.pop() {
            Some(slot) => {
                self.preds[slot as usize] = PredInfo { name, arity };
                PredId(slot)
            }
            None => {
                let id = PredId::from_index(self.preds.len());
                self.preds.push(PredInfo { name, arity });
                id
            }
        };
        self.by_key.insert((name, arity), id);
        id
    }

    /// Return `id`'s slot to the free list and forget its `(name,
    /// arity)` mapping, so a later [`PredRegistry::register`] of a new
    /// key may reuse the slot (and with it the positional relation
    /// storage the caller keyed by [`PredId::index`]). The caller must
    /// ensure nothing still refers to `id`; releasing twice is a bug.
    pub fn release(&mut self, id: PredId) {
        debug_assert!(!self.free.contains(&id.0), "predicate slot released twice");
        let info = &self.preds[id.index()];
        if self.by_key.get(&(info.name, info.arity)) == Some(&id) {
            self.by_key.remove(&(info.name, info.arity));
        }
        self.free.push(id.0);
    }

    /// Number of currently released (reusable) slots.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Look up a predicate without registering it.
    pub fn get(&self, name: Symbol, arity: usize) -> Option<PredId> {
        self.by_key.get(&(name, arity)).copied()
    }

    /// Metadata for `id`.
    pub fn info(&self, id: PredId) -> &PredInfo {
        &self.preds[id.index()]
    }

    /// Number of predicate slots (including released ones — this is
    /// the bound for positional storage indexed by [`PredId::index`]).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterate over all predicate ids.
    pub fn ids(&self) -> impl Iterator<Item = PredId> {
        (0..self.preds.len()).map(PredId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_term::SymbolTable;

    #[test]
    fn register_is_idempotent() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let mut reg = PredRegistry::new();
        let id1 = reg.register(p, 2);
        let id2 = reg.register(p, 2);
        assert_eq!(id1, id2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn arity_disambiguates() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let mut reg = PredRegistry::new();
        let p1 = reg.register(p, 1);
        let p2 = reg.register(p, 2);
        assert_ne!(p1, p2);
        assert_eq!(reg.info(p1).arity, 1);
        assert_eq!(reg.info(p2).arity, 2);
    }

    #[test]
    fn get_does_not_register() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let reg = PredRegistry::new();
        assert_eq!(reg.get(p, 1), None);
    }

    #[test]
    fn release_recycles_the_slot() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let q = syms.intern("q");
        let r = syms.intern("r");
        let mut reg = PredRegistry::new();
        let pid = reg.register(p, 1);
        let qid = reg.register(q, 2);
        assert_eq!(reg.len(), 2);

        reg.release(qid);
        assert_eq!(reg.get(q, 2), None, "released key is forgotten");
        assert_eq!(reg.free_slots(), 1);
        assert_eq!(reg.len(), 2, "positional storage bound is unchanged");

        // A new key reuses the released slot instead of growing.
        let rid = reg.register(r, 3);
        assert_eq!(rid.index(), qid.index(), "slot is recycled");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.free_slots(), 0);
        assert_eq!(reg.info(rid).arity, 3);

        // Existing keys are untouched, and re-registering the released
        // key allocates afresh (append, nothing free).
        assert_eq!(reg.get(p, 1), Some(pid));
        let qid2 = reg.register(q, 2);
        assert_ne!(qid2.index(), qid.index());
        assert_eq!(reg.len(), 3);
    }
}
