//! Arena-backed tuple storage with on-demand, allocation-free indexes.
//!
//! A [`Relation`] holds the extension of one predicate: a deduplicated,
//! insertion-ordered list of tuples of interned terms, stored in one
//! contiguous [`TermId`] arena with stride = arity. Deduplication and
//! the per-[`ColMask`] secondary indexes never materialize keys: they
//! hash and compare the relevant columns *in place* in the arena, open
//! addressing over `u32` row ids with the workspace Fx hasher
//! ([`lps_term::fx_fold`]).
//!
//! Compared to the previous `Vec<Box<[TermId]>>` + boxed-key-hash-map
//! layout this removes all three per-tuple heap allocations on insert
//! (boxed tuple, cloned dedup key, per-mask boxed index keys) and both
//! per-probe allocations on lookup (key vector, defensive row-id
//! copy). [`Relation::lookup`] returns a borrowed row-id slice; probes
//! are allocation-free (DESIGN.md §3/§7, experiment E11).
//!
//! Secondary indexes are built per *column mask* (the set of columns
//! bound at a join step) the first time a plan needs them, and
//! maintained incrementally on insert thereafter.

use lps_term::{fx_fold, TermId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide relation identity counter (see [`Relation::fingerprint`]).
static NEXT_REL_ID: AtomicU64 = AtomicU64::new(1);

/// Bitmask of bound columns (bit *i* set ⇔ column *i* bound).
/// Relations are capped at 32 columns, far above any realistic arity.
pub type ColMask = u32;

/// Sentinel for an empty open-addressing slot.
const EMPTY_SLOT: u32 = u32::MAX;

/// Initial open-addressing capacity (power of two).
const INITIAL_CAP: usize = 8;

/// Hash a key slice (the bound values of a probe, in ascending column
/// order). Must agree with [`hash_masked_row`] for the same values.
#[inline]
fn hash_ids(ids: &[TermId]) -> u64 {
    ids.iter().fold(0u64, |h, id| fx_fold(h, id.index() as u64))
}

/// Hash the `mask`-selected columns of the row starting at `base`,
/// in place in the arena, in ascending column order.
#[inline]
fn hash_masked_row(arena: &[TermId], base: usize, mask: ColMask) -> u64 {
    let mut h = 0u64;
    let mut m = mask;
    while m != 0 {
        let col = m.trailing_zeros() as usize;
        h = fx_fold(h, arena[base + col].index() as u64);
        m &= m - 1;
    }
    h
}

/// Hash the `mask`-selected columns of a standalone tuple (the
/// parallel evaluator's partition hash: rows sharing their probe-key
/// columns map to the same worker).
#[inline]
pub(crate) fn hash_masked_tuple(tuple: &[TermId], mask: ColMask) -> u64 {
    hash_masked_row(tuple, 0, mask)
}

/// Do the `mask`-selected columns of the row starting at `base` equal
/// `key` (ascending column order)?
#[inline]
fn masked_row_matches(arena: &[TermId], base: usize, mask: ColMask, key: &[TermId]) -> bool {
    let mut m = mask;
    let mut k = 0;
    while m != 0 {
        let col = m.trailing_zeros() as usize;
        if arena[base + col] != key[k] {
            return false;
        }
        k += 1;
        m &= m - 1;
    }
    true
}

/// Linear-probe `slots` for `hash`, returning the first slot index that
/// is either empty or whose occupant satisfies `matches`. `slots.len()`
/// must be a nonzero power of two with at least one empty slot.
#[inline]
fn find_slot(slots: &[u32], hash: u64, mut matches: impl FnMut(u32) -> bool) -> usize {
    let cap_mask = slots.len() - 1;
    let mut i = (hash as usize) & cap_mask;
    loop {
        let s = slots[i];
        if s == EMPTY_SLOT || matches(s) {
            return i;
        }
        i = (i + 1) & cap_mask;
    }
}

/// Open-addressing dedup table over row ids: rows are hashed and
/// compared in place in the arena, so no key is ever materialized.
#[derive(Debug, Default, Clone)]
struct RowTable {
    /// Row ids (or [`EMPTY_SLOT`]); length is a power of two.
    slots: Box<[u32]>,
    /// Occupied slot count.
    len: usize,
}

impl RowTable {
    /// Grow and rehash (from the arena) when the next insert would push
    /// the load factor past 7/8.
    fn reserve_one(&mut self, arena: &[TermId], arity: usize) {
        if (self.len + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        let new_cap = (self.slots.len() * 2).max(INITIAL_CAP);
        let mut slots = vec![EMPTY_SLOT; new_cap].into_boxed_slice();
        for row in 0..self.len as u32 {
            let base = row as usize * arity;
            let h = hash_ids(&arena[base..base + arity]);
            // All stored rows are distinct: only an empty slot matches.
            let i = find_slot(&slots, h, |_| false);
            slots[i] = row;
        }
        self.slots = slots;
    }

    fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.len = 0;
    }
}

/// A secondary index for one column mask: an open-addressing table of
/// bucket ids, where each bucket lists the row ids sharing the same
/// values on the `mask` columns, in insertion order. Probes hash the
/// caller's bound values directly; stored keys are compared against a
/// bucket's first row in place in the arena.
#[derive(Debug, Clone)]
struct ColIndex {
    mask: ColMask,
    /// Bucket ids (or [`EMPTY_SLOT`]); length is a power of two.
    slots: Box<[u32]>,
    /// Row ids per distinct key, insertion-ordered. Only the first
    /// `live` buckets are in use; the tail is emptied buckets kept for
    /// reuse, so `clear` + refill (delta relations, every semi-naive
    /// round) reallocates nothing at steady state.
    buckets: Vec<Vec<u32>>,
    /// Buckets currently reachable from `slots`.
    live: usize,
}

impl ColIndex {
    fn new(mask: ColMask) -> Self {
        ColIndex {
            mask,
            slots: Box::default(),
            buckets: Vec::new(),
            live: 0,
        }
    }

    /// Add `row` (already appended to the arena) to the index.
    fn insert_row(&mut self, arena: &[TermId], arity: usize, row: u32) {
        // Grow on distinct-key count (`live`).
        if (self.live + 1) * 8 > self.slots.len() * 7 {
            let new_cap = (self.slots.len() * 2).max(INITIAL_CAP);
            let mut slots = vec![EMPTY_SLOT; new_cap].into_boxed_slice();
            for (b, bucket) in self.buckets[..self.live].iter().enumerate() {
                let base = bucket[0] as usize * arity;
                let h = hash_masked_row(arena, base, self.mask);
                let i = find_slot(&slots, h, |_| false);
                slots[i] = b as u32;
            }
            self.slots = slots;
        }
        let base = row as usize * arity;
        let h = hash_masked_row(arena, base, self.mask);
        let (mask, buckets) = (self.mask, &self.buckets);
        let i = find_slot(&self.slots, h, |b| {
            let rep = buckets[b as usize][0] as usize * arity;
            masked_rows_equal(arena, rep, base, mask)
        });
        match self.slots[i] {
            EMPTY_SLOT => {
                self.slots[i] = self.live as u32;
                if self.live == self.buckets.len() {
                    self.buckets.push(Vec::new());
                }
                self.buckets[self.live].push(row);
                self.live += 1;
            }
            b => self.buckets[b as usize].push(row),
        }
    }

    /// Row ids matching `key` (ascending-column order), or `&[]`.
    fn lookup<'a>(&'a self, arena: &[TermId], arity: usize, key: &[TermId]) -> &'a [u32] {
        if self.slots.is_empty() {
            return &[];
        }
        let h = hash_ids(key);
        let (mask, buckets) = (self.mask, &self.buckets);
        let i = find_slot(&self.slots, h, |b| {
            let rep = buckets[b as usize][0] as usize * arity;
            masked_row_matches(arena, rep, mask, key)
        });
        match self.slots[i] {
            EMPTY_SLOT => &[],
            b => &self.buckets[b as usize],
        }
    }

    fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        for bucket in &mut self.buckets[..self.live] {
            bucket.clear();
        }
        self.live = 0;
    }
}

/// Do two rows (at arena offsets `b1`, `b2`) agree on `mask` columns?
#[inline]
fn masked_rows_equal(arena: &[TermId], b1: usize, b2: usize, mask: ColMask) -> bool {
    let mut m = mask;
    while m != 0 {
        let col = m.trailing_zeros() as usize;
        if arena[b1 + col] != arena[b2 + col] {
            return false;
        }
        m &= m - 1;
    }
    true
}

/// The extension of one predicate: a flat `TermId` arena with stride =
/// arity, an in-place dedup table, and per-mask secondary indexes.
#[derive(Debug)]
pub struct Relation {
    arity: usize,
    /// Tuple storage: row *r* occupies `arena[r*arity .. (r+1)*arity]`.
    arena: Vec<TermId>,
    /// Row count (tracked separately so zero-arity relations work).
    rows: u32,
    dedup: RowTable,
    /// Secondary indexes; relations have very few masks, so a linear
    /// scan beats hashing the mask on every probe.
    indexes: Vec<ColIndex>,
    /// Process-unique identity, minted fresh for every `new`, `default`
    /// *and clone* — two relations never share an `id`, so
    /// `(id, version)` keys content caches soundly (see
    /// [`Relation::fingerprint`]).
    id: u64,
    /// Bumped on every content change (`insert` of a new tuple,
    /// `clear`). Index creation does not bump: it changes access
    /// paths, not the tuple set.
    version: u64,
}

impl Default for Relation {
    fn default() -> Self {
        Relation {
            arity: 0,
            arena: Vec::new(),
            rows: 0,
            dedup: RowTable::default(),
            indexes: Vec::new(),
            id: NEXT_REL_ID.fetch_add(1, Ordering::Relaxed),
            version: 0,
        }
    }
}

impl Clone for Relation {
    /// Clones the contents but mints a fresh identity: the clone and
    /// the original diverge independently afterwards, so sharing an
    /// `id` would let their `(id, version)` fingerprints collide.
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            arena: self.arena.clone(),
            rows: self.rows,
            dedup: self.dedup.clone(),
            indexes: self.indexes.clone(),
            id: NEXT_REL_ID.fetch_add(1, Ordering::Relaxed),
            version: 0,
        }
    }
}

impl Relation {
    /// Empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity <= 32, "relation arity capped at 32");
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows as usize
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Insert a tuple; returns `true` if it was new. The tuple is
    /// copied into the arena — no per-tuple box is allocated.
    ///
    /// # Panics
    /// Panics if `tuple.len() != arity`: a wrong-length row would
    /// shift the stride of every later row in the flat arena, so this
    /// is a hard check even in release builds (one compare per insert,
    /// off the per-column hot loop).
    pub fn insert(&mut self, tuple: &[TermId]) -> bool {
        self.insert_hashed(hash_ids(tuple), tuple)
    }

    /// The dedup hash of a tuple, exposed so parallel workers can
    /// compute it off-thread and the merge pass can reuse it for
    /// [`Relation::insert_hashed`] / [`Relation::contains_hashed`] on
    /// every relation (all relations share one hash function).
    #[inline]
    pub fn hash_tuple(tuple: &[TermId]) -> u64 {
        hash_ids(tuple)
    }

    /// [`Relation::insert`] with a precomputed [`Relation::hash_tuple`]
    /// hash — the parallel merge path, where workers hash their derived
    /// tuples while the join is still running elsewhere.
    pub fn insert_hashed(&mut self, hash: u64, tuple: &[TermId]) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        debug_assert_eq!(hash, hash_ids(tuple), "stale precomputed hash");
        self.dedup.reserve_one(&self.arena, self.arity);
        let (arena, arity) = (&self.arena, self.arity);
        let slot = find_slot(&self.dedup.slots, hash, |r| {
            let base = r as usize * arity;
            &arena[base..base + arity] == tuple
        });
        if self.dedup.slots[slot] != EMPTY_SLOT {
            return false;
        }
        let row = self.rows;
        assert!(row != u32::MAX, "relation overflow");
        self.arena.extend_from_slice(tuple);
        self.rows += 1;
        self.version += 1;
        self.dedup.slots[slot] = row;
        self.dedup.len += 1;
        let arena = &self.arena;
        for index in &mut self.indexes {
            index.insert_row(arena, arity, row);
        }
        true
    }

    /// Membership test (in-place hash and compare; no allocation).
    pub fn contains(&self, tuple: &[TermId]) -> bool {
        self.contains_hashed(hash_ids(tuple), tuple)
    }

    /// [`Relation::contains`] with a precomputed hash (see
    /// [`Relation::hash_tuple`]): parallel workers pre-filter their
    /// derived tuples against the frozen full relation so the
    /// sequential merge pass mostly sees genuinely new rows.
    pub fn contains_hashed(&self, hash: u64, tuple: &[TermId]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        debug_assert_eq!(hash, hash_ids(tuple), "stale precomputed hash");
        if self.dedup.slots.is_empty() {
            return false;
        }
        let (arena, arity) = (&self.arena, self.arity);
        let slot = find_slot(&self.dedup.slots, hash, |r| {
            let base = r as usize * arity;
            &arena[base..base + arity] == tuple
        });
        self.dedup.slots[slot] != EMPTY_SLOT
    }

    /// Pre-grow the arena and dedup table for `additional` upcoming
    /// inserts (a reserve/commit pattern): the merge pass reserves once
    /// per fold instead of paying repeated doublings mid-loop. Inserts
    /// beyond the reservation stay correct — growth simply resumes.
    pub fn reserve(&mut self, additional: usize) {
        self.arena.reserve(additional * self.arity);
        let needed = self.rows as usize + additional;
        if (needed + 1) * 8 > self.dedup.slots.len() * 7 {
            let mut cap = self.dedup.slots.len().max(INITIAL_CAP);
            while (needed + 1) * 8 > cap * 7 {
                cap *= 2;
            }
            let mut slots = vec![EMPTY_SLOT; cap].into_boxed_slice();
            for row in 0..self.rows {
                let base = row as usize * self.arity;
                let h = hash_ids(&self.arena[base..base + self.arity]);
                // All stored rows are distinct: only an empty slot
                // matches.
                let i = find_slot(&slots, h, |_| false);
                slots[i] = row;
            }
            self.dedup.slots = slots;
        }
    }

    /// All tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[TermId]> {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Tuple at a row index.
    #[inline]
    pub fn row(&self, row: u32) -> &[TermId] {
        debug_assert!(row < self.rows, "row {row} out of bounds");
        let base = row as usize * self.arity;
        &self.arena[base..base + self.arity]
    }

    /// Ensure an index exists for `mask` (no-op for the empty mask,
    /// which would just be a scan).
    pub fn ensure_index(&mut self, mask: ColMask) {
        if mask == 0 || self.indexes.iter().any(|i| i.mask == mask) {
            return;
        }
        let mut index = ColIndex::new(mask);
        for row in 0..self.rows {
            index.insert_row(&self.arena, self.arity, row);
        }
        self.indexes.push(index);
    }

    /// Row indices matching `key` on the columns of `mask`, in
    /// insertion order. `key` holds the bound values in ascending
    /// column order. The probe hashes `key` directly against rows in
    /// the arena — nothing is allocated. The index must have been
    /// created with [`Relation::ensure_index`].
    ///
    /// # Panics
    /// Panics if the index for `mask` does not exist.
    pub fn lookup(&self, mask: ColMask, key: &[TermId]) -> &[u32] {
        debug_assert_ne!(mask, 0, "use iter() for full scans");
        debug_assert_eq!(key.len(), mask.count_ones() as usize);
        self.indexes
            .iter()
            .find(|i| i.mask == mask)
            .expect("index not built — plan must call ensure_index")
            .lookup(&self.arena, self.arity, key)
    }

    /// Whether an index for `mask` exists.
    pub fn has_index(&self, mask: ColMask) -> bool {
        self.indexes.iter().any(|i| i.mask == mask)
    }

    /// Estimate the number of distinct values the `mask` columns take
    /// over this relation — the planner-statistics primitive behind
    /// cost-based join ordering ([`crate::stats`]).
    ///
    /// Exact and O(1) when a secondary index for `mask` already exists
    /// (its bucket count *is* the distinct-key count); otherwise a
    /// deterministic strided sample of up to 1024 rows is hashed in
    /// place in the arena (the same [`fx_fold`] column hashing the
    /// dedup table and indexes use — no keys are materialized) and
    /// scaled to the full row count. `mask == 0` estimates whole-tuple
    /// distinctness, which is exactly the row count.
    pub fn distinct_estimate(&self, mask: ColMask) -> usize {
        let n = self.len();
        if n == 0 {
            return 0;
        }
        if mask == 0 {
            return n;
        }
        if let Some(ix) = self.indexes.iter().find(|i| i.mask == mask) {
            return ix.live;
        }
        const SAMPLE: usize = 1024;
        let step = n.div_ceil(SAMPLE).max(1);
        let mut seen: lps_term::FxHashSet<u64> = lps_term::FxHashSet::default();
        let mut sampled = 0usize;
        let mut r = 0usize;
        while r < n {
            seen.insert(hash_masked_row(&self.arena, r * self.arity, mask));
            sampled += 1;
            r += step;
        }
        let d = seen.len();
        if sampled == n {
            d
        } else {
            // Linear scale-up, clamped to the observed floor and the
            // row-count ceiling. Coarse, but the planner only needs
            // relative magnitudes.
            (d.saturating_mul(n) / sampled).clamp(d, n)
        }
    }

    /// Remove all tuples (keeping index *definitions* but emptying
    /// them). Used for delta relations between semi-naive iterations.
    /// Arena and table capacities are retained for reuse.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.rows = 0;
        self.version += 1;
        self.dedup.clear();
        for index in &mut self.indexes {
            index.clear();
        }
    }

    /// `(identity, version)` fingerprint for content caching: equal
    /// fingerprints imply equal tuple sets. `identity` is process-
    /// unique per relation *object* (fresh on construction and on
    /// clone); `version` counts content mutations. The snapshot
    /// publisher uses this to reuse the previously published
    /// `Arc<Relation>` for relations an update did not touch.
    pub fn fingerprint(&self) -> (u64, u64) {
        (self.id, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_term::TermStore;

    #[test]
    fn insert_deduplicates() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut r = Relation::new(2);
        assert!(r.insert(&[a, b]));
        assert!(!r.insert(&[a, b]));
        assert!(r.insert(&[b, a]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[a, b]));
        assert!(!r.contains(&[a, a]));
    }

    #[test]
    fn index_built_before_inserts_stays_fresh() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let c = st.atom("c");
        let mut r = Relation::new(2);
        r.ensure_index(0b01);
        r.insert(&[a, b]);
        r.insert(&[a, c]);
        r.insert(&[b, c]);
        let rows = r.lookup(0b01, &[a]);
        assert_eq!(rows.len(), 2);
        assert_eq!(r.row(rows[0]), &[a, b]);
        assert_eq!(r.row(rows[1]), &[a, c]);
        assert!(r.lookup(0b01, &[c]).is_empty());
    }

    #[test]
    fn index_built_after_inserts_sees_existing_tuples() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.insert(&[b, b]);
        r.ensure_index(0b10);
        assert_eq!(r.lookup(0b10, &[b]).len(), 2);
    }

    #[test]
    fn multi_column_mask() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut r = Relation::new(3);
        r.insert(&[a, b, a]);
        r.insert(&[a, a, b]);
        r.ensure_index(0b101);
        assert_eq!(r.lookup(0b101, &[a, a]).len(), 1);
        assert_eq!(r.row(r.lookup(0b101, &[a, a])[0]), &[a, b, a]);
    }

    #[test]
    fn clear_empties_but_preserves_index_definitions() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let mut r = Relation::new(1);
        r.ensure_index(0b1);
        r.insert(&[a]);
        r.clear();
        assert!(r.is_empty());
        assert!(r.has_index(0b1));
        assert!(r.lookup(0b1, &[a]).is_empty());
        // Reinsert after clear works and is indexed.
        r.insert(&[a]);
        assert_eq!(r.lookup(0b1, &[a]).len(), 1);
    }

    #[test]
    fn zero_arity_relation_holds_one_tuple() {
        let mut r = Relation::new(0);
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.iter().count(), 1);
        assert_eq!(r.row(0), &[] as &[TermId]);
    }

    #[test]
    fn growth_rehashes_dedup_and_indexes() {
        // Push well past several resize thresholds and verify every
        // tuple stays findable through both the dedup table and an
        // index that existed from the start.
        let mut st = TermStore::new();
        let ids: Vec<_> = (0..512).map(|i| st.int(i)).collect();
        let mut r = Relation::new(2);
        r.ensure_index(0b01);
        for (i, &x) in ids.iter().enumerate() {
            // Key column cycles over 16 values → 32-row buckets.
            r.insert(&[ids[i % 16], x]);
        }
        assert_eq!(r.len(), 512);
        for (i, &x) in ids.iter().enumerate() {
            assert!(r.contains(&[ids[i % 16], x]));
        }
        for key in ids.iter().take(16) {
            assert_eq!(r.lookup(0b01, &[*key]).len(), 32);
        }
        // Late index sees the same rows.
        r.ensure_index(0b10);
        for &x in &ids {
            assert_eq!(r.lookup(0b10, &[x]).len(), 1);
        }
    }

    #[test]
    fn hashed_api_agrees_with_plain_inserts() {
        let mut st = TermStore::new();
        let ids: Vec<_> = (0..64).map(|i| st.int(i)).collect();
        let mut r = Relation::new(2);
        r.ensure_index(0b01);
        for (i, &x) in ids.iter().enumerate() {
            let tuple = [ids[i % 8], x];
            let h = Relation::hash_tuple(&tuple);
            assert!(!r.contains_hashed(h, &tuple));
            assert!(r.insert_hashed(h, &tuple));
            assert!(!r.insert_hashed(h, &tuple), "duplicate must be seen");
            assert!(r.contains_hashed(h, &tuple));
            assert!(r.contains(&tuple), "plain and hashed views agree");
        }
        assert_eq!(r.len(), 64);
        for key in ids.iter().take(8) {
            assert_eq!(r.lookup(0b01, &[*key]).len(), 8);
        }
    }

    #[test]
    fn reserve_then_insert_preserves_lookup() {
        let mut st = TermStore::new();
        let ids: Vec<_> = (0..200).map(|i| st.int(i)).collect();
        let mut r = Relation::new(1);
        for &x in ids.iter().take(10) {
            r.insert(&[x]);
        }
        // Reserve well past several doubling thresholds, then fill.
        r.reserve(190);
        for &x in &ids {
            r.insert(&[x]);
        }
        assert_eq!(r.len(), 200);
        for &x in &ids {
            assert!(r.contains(&[x]));
        }
        // Reserving on an empty relation also works.
        let mut fresh = Relation::new(2);
        fresh.reserve(100);
        assert!(fresh.insert(&[ids[0], ids[1]]));
        assert!(fresh.contains(&[ids[0], ids[1]]));
    }

    #[test]
    fn fingerprint_tracks_content_not_indexes() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut r = Relation::new(2);
        let f0 = r.fingerprint();
        r.insert(&[a, b]);
        let f1 = r.fingerprint();
        assert_ne!(f0, f1, "insert must bump the version");
        // Duplicate insert: no content change, no bump.
        r.insert(&[a, b]);
        assert_eq!(r.fingerprint(), f1);
        // Index creation: access path only, no bump.
        r.ensure_index(0b01);
        assert_eq!(r.fingerprint(), f1);
        r.clear();
        assert_ne!(r.fingerprint(), f1, "clear must bump the version");
        // Clones mint a fresh identity so fingerprints never collide
        // even while both copies mutate independently.
        let c = r.clone();
        assert_ne!(c.fingerprint().0, r.fingerprint().0);
        // Distinct relations have distinct identities.
        assert_ne!(
            Relation::new(1).fingerprint().0,
            Relation::new(1).fingerprint().0
        );
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut st = TermStore::new();
        let ids: Vec<_> = (0..64).map(|i| st.int(i)).collect();
        let mut r = Relation::new(1);
        for &x in &ids {
            r.insert(&[x]);
        }
        let seen: Vec<TermId> = r.iter().map(|t| t[0]).collect();
        assert_eq!(seen, ids);
    }
}
