//! Tuple storage with on-demand hash indexes.
//!
//! A [`Relation`] holds the extension of one predicate: a deduplicated,
//! insertion-ordered list of tuples of interned terms. Secondary
//! indexes are built per *column mask* (the set of columns bound at a
//! join step) the first time a plan needs them, and maintained
//! incrementally on insert thereafter.

use lps_term::{FxHashMap, FxHashSet, TermId};

/// Bitmask of bound columns (bit *i* set ⇔ column *i* bound).
/// Relations are capped at 32 columns, far above any realistic arity.
pub type ColMask = u32;

/// Build the key for `mask` from a full tuple.
fn key_for(tuple: &[TermId], mask: ColMask) -> Box<[TermId]> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    for (i, &t) in tuple.iter().enumerate() {
        if mask & (1 << i) != 0 {
            key.push(t);
        }
    }
    key.into_boxed_slice()
}

/// The extension of one predicate.
#[derive(Debug, Default, Clone)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Box<[TermId]>>,
    dedup: FxHashSet<Box<[TermId]>>,
    indexes: FxHashMap<ColMask, FxHashMap<Box<[TermId]>, Vec<u32>>>,
}

impl Relation {
    /// Empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity <= 32, "relation arity capped at 32");
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, tuple: Box<[TermId]>) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        if !self.dedup.insert(tuple.clone()) {
            return false;
        }
        let row = u32::try_from(self.tuples.len()).expect("relation overflow");
        for (&mask, index) in &mut self.indexes {
            index.entry(key_for(&tuple, mask)).or_default().push(row);
        }
        self.tuples.push(tuple);
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[TermId]) -> bool {
        self.dedup.contains(tuple)
    }

    /// All tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[TermId]> {
        self.tuples.iter().map(AsRef::as_ref)
    }

    /// Tuple at a row index.
    pub fn row(&self, row: u32) -> &[TermId] {
        &self.tuples[row as usize]
    }

    /// Ensure an index exists for `mask` (no-op for the empty mask,
    /// which would just be a scan).
    pub fn ensure_index(&mut self, mask: ColMask) {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return;
        }
        let mut index: FxHashMap<Box<[TermId]>, Vec<u32>> = FxHashMap::default();
        for (row, tuple) in self.tuples.iter().enumerate() {
            index
                .entry(key_for(tuple, mask))
                .or_default()
                .push(row as u32);
        }
        self.indexes.insert(mask, index);
    }

    /// Row indices matching `key` on the columns of `mask`. The index
    /// must have been created with [`Relation::ensure_index`].
    ///
    /// # Panics
    /// Panics if the index for `mask` does not exist.
    pub fn lookup(&self, mask: ColMask, key: &[TermId]) -> &[u32] {
        debug_assert_ne!(mask, 0, "use iter() for full scans");
        self.indexes
            .get(&mask)
            .expect("index not built — plan must call ensure_index")
            .get(key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether an index for `mask` exists.
    pub fn has_index(&self, mask: ColMask) -> bool {
        self.indexes.contains_key(&mask)
    }

    /// Remove all tuples (keeping index *definitions* but emptying
    /// them). Used for delta relations between semi-naive iterations.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.dedup.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_term::TermStore;

    fn tup(ids: &[TermId]) -> Box<[TermId]> {
        ids.to_vec().into_boxed_slice()
    }

    #[test]
    fn insert_deduplicates() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut r = Relation::new(2);
        assert!(r.insert(tup(&[a, b])));
        assert!(!r.insert(tup(&[a, b])));
        assert!(r.insert(tup(&[b, a])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[a, b]));
        assert!(!r.contains(&[a, a]));
    }

    #[test]
    fn index_built_before_inserts_stays_fresh() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let c = st.atom("c");
        let mut r = Relation::new(2);
        r.ensure_index(0b01);
        r.insert(tup(&[a, b]));
        r.insert(tup(&[a, c]));
        r.insert(tup(&[b, c]));
        let rows = r.lookup(0b01, &[a]);
        assert_eq!(rows.len(), 2);
        assert_eq!(r.row(rows[0]), &[a, b]);
        assert_eq!(r.row(rows[1]), &[a, c]);
        assert!(r.lookup(0b01, &[c]).is_empty());
    }

    #[test]
    fn index_built_after_inserts_sees_existing_tuples() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut r = Relation::new(2);
        r.insert(tup(&[a, b]));
        r.insert(tup(&[b, b]));
        r.ensure_index(0b10);
        assert_eq!(r.lookup(0b10, &[b]).len(), 2);
    }

    #[test]
    fn multi_column_mask() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut r = Relation::new(3);
        r.insert(tup(&[a, b, a]));
        r.insert(tup(&[a, a, b]));
        r.ensure_index(0b101);
        assert_eq!(r.lookup(0b101, &[a, a]).len(), 1);
        assert_eq!(r.row(r.lookup(0b101, &[a, a])[0]), &[a, b, a]);
    }

    #[test]
    fn clear_empties_but_preserves_index_definitions() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let mut r = Relation::new(1);
        r.ensure_index(0b1);
        r.insert(tup(&[a]));
        r.clear();
        assert!(r.is_empty());
        assert!(r.has_index(0b1));
        assert!(r.lookup(0b1, &[a]).is_empty());
        // Reinsert after clear works and is indexed.
        r.insert(tup(&[a]));
        assert_eq!(r.lookup(0b1, &[a]).len(), 1);
    }

    #[test]
    fn zero_arity_relation_holds_one_tuple() {
        let mut r = Relation::new(0);
        assert!(r.insert(tup(&[])));
        assert!(!r.insert(tup(&[])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
    }
}
