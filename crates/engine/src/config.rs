//! Evaluation configuration and statistics.

/// Which fixpoint algorithm to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FixpointStrategy {
    /// Semi-naive evaluation with delta relations (default).
    #[default]
    SemiNaive,
    /// Naive evaluation: every rule over full relations each round —
    /// the literal `T_P ↑ ω` of Theorem 5, kept as the ablation
    /// baseline for experiment E2.
    Naive,
}

/// Policy for variables that range over the sort-*s* universe without
/// being bound by any body literal (e.g. the translated Theorem-10
/// programs, or the Theorem-8 demonstration `b(X) :- forall U in X:
/// a(U)`).
///
/// The paper's Herbrand universe `Uˢ` is the *full* finite powerset of
/// `Uᵃ` (Definition 7) — infinite for evaluation purposes. These
/// policies carve out the finite fragments that make the theorems'
/// constructive content executable (see DESIGN.md §3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SetUniverse {
    /// Reject such rules as unsafe (strict range-restriction).
    #[default]
    Reject,
    /// Enumerate the *active* sets: every set interned so far (EDB
    /// sets, set literals, and sets built by builtins during
    /// evaluation). Grows monotonically during the fixpoint.
    ActiveSets,
    /// Enumerate all subsets of the active *atom* domain up to the
    /// given cardinality, materializing them up front. Exponential —
    /// exactly what Theorem 8's powerset demonstration needs.
    ActiveSubsets {
        /// Maximum cardinality of enumerated subsets.
        max_card: usize,
    },
}

/// Evaluation settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    /// Fixpoint algorithm.
    pub strategy: FixpointStrategy,
    /// Handling of set-sorted variables with no binding literal.
    pub set_universe: SetUniverse,
    /// Upper bound on fixpoint rounds (guards non-terminating
    /// constructor recursion).
    pub max_iterations: usize,
    /// Use the element→set inverted index to restrict re-evaluation of
    /// `(∀x∈X)` rules to candidate sets containing newly derived
    /// elements (experiment E9). Only affects semi-naive evaluation.
    pub forall_trigger_index: bool,
    /// Retain demand spaces across queries: each cached demand plan
    /// keeps its adorned/magic relations alive after the fixpoint, and
    /// a later query with the same plan — a new constant for the same
    /// adornment, or newly arrived EDB facts — is driven through the
    /// seeded semi-naive continuation instead of a cold batch re-run,
    /// making repeated point queries O(new demand) instead of O(reach)
    /// (experiment E14). `false` restores the per-query cold run
    /// (clear the demand space, re-derive from scratch) — the E14
    /// ablation baseline.
    pub demand_retention: bool,
    /// Upper bound on the per-session demand plan cache: at most this
    /// many compiled `(predicate, adornment)` / conjunctive-shape
    /// plans are kept, least-recently-used plans evicted beyond it
    /// (their adorned/magic relation slots are reclaimed, and any
    /// retained fixpoint sharing those slots goes cold). Values below
    /// 1 are treated as 1.
    pub demand_plan_cache: usize,
    /// Worker threads for the parallel semi-naive join phase (E15).
    /// `1` is the exact legacy sequential path; `0` means auto (all
    /// available cores). Values above 1 fan each round's delta-variant
    /// join probes across a scoped worker pool, with a deterministic
    /// merge so the model is identical to a sequential run (DESIGN.md
    /// §"Parallel evaluation"). The default honours the `LPS_THREADS`
    /// environment variable (unset or unparsable = 1), so a whole test
    /// suite can be swept across thread counts without code changes.
    pub threads: usize,
    /// Use per-predicate cardinality statistics ([`crate::stats`]) to
    /// reorder positive body literals at compile time and to score the
    /// sideways-information-passing order of the magic-set rewrite
    /// (E16). `false` restores the textual planner — body literals are
    /// joined in written order (modulo safety) and demand propagates
    /// left-to-right — which is the ablation baseline and never changes
    /// answers, only work. The default honours the `LPS_PLANNER`
    /// environment variable (`off`/`0`/`false` = textual; unset or
    /// anything else = cost-based), mirroring `LPS_THREADS`.
    pub cost_planner: bool,
    /// Emit structured trace spans (per-stratum and per-round fixpoint
    /// spans, parallel fan-out/merge spans, demand-plan lifecycle
    /// spans) into the process-wide `lps_trace` collector. Spans are
    /// only recorded when the collector itself is enabled too, so the
    /// disabled cost is a branch here plus one relaxed atomic load
    /// there. The default honours the `LPS_TRACE` environment variable
    /// (`1`/`on`/`true` = tracing; unset or anything else = off),
    /// mirroring `LPS_PLANNER`.
    pub trace: bool,
    /// Attribute planner estimates and join probes to individual body
    /// literals during evaluation, feeding `Engine::last_profile`.
    /// Internal profiling switch (`:profile` in lpsi); never read from
    /// the environment, default off.
    pub profile: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            strategy: FixpointStrategy::SemiNaive,
            set_universe: SetUniverse::Reject,
            max_iterations: 100_000,
            forall_trigger_index: true,
            demand_retention: true,
            demand_plan_cache: 64,
            threads: threads_from_env(),
            cost_planner: planner_from_env(),
            trace: trace_from_env(),
            profile: false,
        }
    }
}

/// The `LPS_THREADS` default: parse the variable if set (`0` = auto),
/// else 1 (sequential). Read once per `EvalConfig::default()` call —
/// cheap, and it keeps a long-lived process honest if the harness
/// mutates the environment between engine constructions.
fn threads_from_env() -> usize {
    std::env::var("LPS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
}

/// The `LPS_PLANNER` default: `off`, `0`, or `false` (case-insensitive)
/// disables the cost-based planner; unset or any other value keeps it
/// on. Read per `EvalConfig::default()` call, like `LPS_THREADS`.
fn planner_from_env() -> bool {
    !std::env::var("LPS_PLANNER")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "off" || v == "0" || v == "false"
        })
        .unwrap_or(false)
}

/// The `LPS_TRACE` default: `1`, `on`, or `true` (case-insensitive)
/// enables trace spans; unset or any other value leaves them off. Read
/// per `EvalConfig::default()` call, like `LPS_THREADS`.
fn trace_from_env() -> bool {
    std::env::var("LPS_TRACE")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "on" || v == "true"
        })
        .unwrap_or(false)
}

/// Counters describing one evaluation run. `T_P` round counts are the
/// quantity Theorem 5 bounds by ω; benches report them alongside wall
/// time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds executed across all strata.
    pub iterations: usize,
    /// Facts derived (inserted and new) including loaded facts.
    pub facts_derived: usize,
    /// Rule-evaluation passes (rule × variant × round).
    pub rule_evaluations: usize,
    /// Tuples produced before deduplication.
    pub tuples_considered: usize,
    /// Number of strata.
    pub strata: usize,
    /// Indexed join probes (`Relation::lookup` calls).
    pub index_probes: usize,
    /// Row ids yielded by those probes (join fan-out).
    pub probe_rows: usize,
    /// Heap allocations on the probe path. Only compound key patterns
    /// (set/function literals interned per probe) allocate; ordinary
    /// joins build keys into a stack buffer, so this is 0 for them —
    /// the observable guarantee of the arena storage layer (E11).
    pub probe_allocs: usize,
    /// Update passes that took the incremental path: the semi-naive
    /// drivers were re-seeded from pending deltas and continued from
    /// the retained model instead of recomputing it (E12). A full
    /// recompute — batch run or non-monotone fallback — contributes 0.
    pub incremental_runs: usize,
    /// Pending facts spliced into the semi-naive deltas by incremental
    /// updates (new tuples only; duplicates of the model don't count).
    pub delta_seed_facts: usize,
    /// Adorned `(predicate, binding-pattern)` pairs compiled by the
    /// demand subsystem during this pass — the size of the magic-set
    /// rewrite a query triggered. 0 once a query hits the
    /// per-adornment plan cache (E13).
    pub adornments_compiled: usize,
    /// Magic seed facts planted by demand-driven queries: the ground
    /// bound-argument tuples that root the goal-directed derivation.
    pub magic_facts_seeded: usize,
    /// Queries that could not take the demand path — negation or
    /// grouping reachable from the query predicate, or an unplannable
    /// rewrite — and fell back to full materialization.
    pub demand_fallbacks: usize,
    /// Demand queries answered from a *retained* demand space: the
    /// plan's relations already held a completed fixpoint, and the new
    /// seed (or newly arrived EDB facts) was driven through the seeded
    /// semi-naive continuation instead of a cold batch re-run (E14).
    /// Includes no-op continuations (a repeated identical query).
    pub demand_continuations: usize,
    /// Demand plans evicted from the bounded plan cache during this
    /// pass (their adorned/magic relation slots were reclaimed).
    pub plans_evicted: usize,
    /// Semi-naive rounds in which at least one delta-variant join ran
    /// on the worker pool (E15). 0 on sequential runs (`threads = 1`)
    /// and on rounds whose deltas were below the dispatch cutoff.
    pub parallel_rounds: usize,
    /// Candidate tuples folded from worker arenas into the shared
    /// relations by parallel merge passes (after the workers' own
    /// duplicate pre-filter against the full relation).
    pub merge_rows: usize,
    /// Peak partition skew over all parallel join passes, as a
    /// percentage of a perfectly balanced split: `max partition size ×
    /// workers × 100 / total rows`. 100 ≈ balanced; `workers × 100`
    /// means one worker owned every row. [`EvalStats::absorb`] keeps
    /// the maximum (a peak, unlike the additive counters).
    pub worker_imbalance: usize,
    /// Rule variants whose join order the cost planner changed away
    /// from the textual order (plus SIPS choices in the magic rewrite
    /// that differ from textual sideways passing). 0 with
    /// `cost_planner = false`, and 0 when the statistics agreed with
    /// the written order everywhere (E16).
    pub reorders_applied: usize,
    /// Sum of the planner's estimated intermediate-result rows over the
    /// join orders it chose — the quantity the greedy ordering
    /// minimizes. A relative signal only: compare between planner
    /// configurations on the same program, not across programs.
    pub estimated_rows: usize,
    /// Lazy statistics-snapshot passes ([`crate::stats::StatsCache`])
    /// taken during this pass: how often fact movement actually forced
    /// a re-read of the relation cardinalities before a compile.
    pub stats_refreshes: usize,
    /// Peak mismatch between the planner's estimate and reality: the
    /// larger of `estimated_rows / probe_rows` and its reciprocal,
    /// sealed once per pass ([`EvalStats::seal_misestimate`]) and
    /// max-merged by [`EvalStats::absorb`] like
    /// [`EvalStats::worker_imbalance`]. ≈1 means the independence-
    /// assumption cost model tracked the workload; large values are
    /// the ROADMAP's signal that histogram statistics have become
    /// worth building. 0 when either side of the ratio was 0 (no
    /// planner estimate, or no probes).
    pub misestimate_ratio: usize,
    /// Parallel join tasks whose skewed partitions were split across
    /// workers by the quota rebalance (one hot probe key no longer
    /// pins its whole share to one worker). Additive.
    pub partitions_rebalanced: usize,
}

impl EvalStats {
    /// Merge counters from a stratum run.
    pub fn absorb(&mut self, other: EvalStats) {
        self.iterations += other.iterations;
        self.facts_derived += other.facts_derived;
        self.rule_evaluations += other.rule_evaluations;
        self.tuples_considered += other.tuples_considered;
        self.strata += other.strata;
        self.index_probes += other.index_probes;
        self.probe_rows += other.probe_rows;
        self.probe_allocs += other.probe_allocs;
        self.incremental_runs += other.incremental_runs;
        self.delta_seed_facts += other.delta_seed_facts;
        self.adornments_compiled += other.adornments_compiled;
        self.magic_facts_seeded += other.magic_facts_seeded;
        self.demand_fallbacks += other.demand_fallbacks;
        self.demand_continuations += other.demand_continuations;
        self.plans_evicted += other.plans_evicted;
        self.parallel_rounds += other.parallel_rounds;
        self.merge_rows += other.merge_rows;
        self.worker_imbalance = self.worker_imbalance.max(other.worker_imbalance);
        self.reorders_applied += other.reorders_applied;
        self.estimated_rows = self.estimated_rows.saturating_add(other.estimated_rows);
        self.stats_refreshes += other.stats_refreshes;
        self.misestimate_ratio = self.misestimate_ratio.max(other.misestimate_ratio);
        self.partitions_rebalanced += other.partitions_rebalanced;
    }

    /// Record this pass's estimate-vs-reality ratio into
    /// [`EvalStats::misestimate_ratio`]. Called once per evaluation
    /// pass, after the planner counters are folded in and the probe
    /// counters are final; keeps the peak so repeated sealing (a pass
    /// absorbed into cumulative stats) never shrinks it.
    pub fn seal_misestimate(&mut self) {
        if self.estimated_rows > 0 && self.probe_rows > 0 {
            let hi = self.estimated_rows.max(self.probe_rows);
            let lo = self.estimated_rows.min(self.probe_rows);
            self.misestimate_ratio = self.misestimate_ratio.max(hi / lo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safe() {
        let c = EvalConfig::default();
        assert_eq!(c.strategy, FixpointStrategy::SemiNaive);
        assert_eq!(c.set_universe, SetUniverse::Reject);
        assert!(c.forall_trigger_index);
        assert!(c.max_iterations > 0);
        assert!(c.demand_retention, "retained demand spaces are the default");
        assert!(c.demand_plan_cache >= 1, "the plan cache is never empty");
        let expected_threads = std::env::var("LPS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        assert_eq!(
            c.threads, expected_threads,
            "thread default follows LPS_THREADS (unset = sequential)"
        );
        let expected_planner = !std::env::var("LPS_PLANNER")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "off" || v == "0" || v == "false"
            })
            .unwrap_or(false);
        assert_eq!(
            c.cost_planner, expected_planner,
            "planner default follows LPS_PLANNER (unset = cost-based)"
        );
        let expected_trace = std::env::var("LPS_TRACE")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "1" || v == "on" || v == "true"
            })
            .unwrap_or(false);
        assert_eq!(
            c.trace, expected_trace,
            "trace default follows LPS_TRACE (unset = off)"
        );
        assert!(!c.profile, "per-literal profiling is opt-in per query");
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = EvalStats {
            iterations: 2,
            facts_derived: 10,
            rule_evaluations: 5,
            tuples_considered: 20,
            strata: 1,
            index_probes: 7,
            probe_rows: 30,
            probe_allocs: 0,
            incremental_runs: 1,
            delta_seed_facts: 2,
            adornments_compiled: 3,
            magic_facts_seeded: 1,
            demand_fallbacks: 0,
            demand_continuations: 1,
            plans_evicted: 0,
            parallel_rounds: 2,
            merge_rows: 40,
            worker_imbalance: 150,
            reorders_applied: 1,
            estimated_rows: 100,
            stats_refreshes: 1,
            misestimate_ratio: 4,
            partitions_rebalanced: 1,
        };
        a.absorb(EvalStats {
            iterations: 3,
            facts_derived: 1,
            rule_evaluations: 2,
            tuples_considered: 4,
            strata: 1,
            index_probes: 5,
            probe_rows: 6,
            probe_allocs: 1,
            incremental_runs: 1,
            delta_seed_facts: 3,
            adornments_compiled: 2,
            magic_facts_seeded: 2,
            demand_fallbacks: 1,
            demand_continuations: 2,
            plans_evicted: 1,
            parallel_rounds: 3,
            merge_rows: 16,
            worker_imbalance: 120,
            reorders_applied: 2,
            estimated_rows: 50,
            stats_refreshes: 2,
            misestimate_ratio: 3,
            partitions_rebalanced: 2,
        });
        assert_eq!(a.iterations, 5);
        assert_eq!(a.facts_derived, 11);
        assert_eq!(a.strata, 2);
        assert_eq!(a.index_probes, 12);
        assert_eq!(a.probe_rows, 36);
        assert_eq!(a.probe_allocs, 1);
        assert_eq!(a.incremental_runs, 2);
        assert_eq!(a.delta_seed_facts, 5);
        assert_eq!(a.adornments_compiled, 5);
        assert_eq!(a.magic_facts_seeded, 3);
        assert_eq!(a.demand_fallbacks, 1);
        assert_eq!(a.demand_continuations, 3);
        assert_eq!(a.plans_evicted, 1);
        assert_eq!(a.parallel_rounds, 5);
        assert_eq!(a.merge_rows, 56);
        assert_eq!(a.worker_imbalance, 150, "imbalance is a peak, not a sum");
        assert_eq!(a.reorders_applied, 3);
        assert_eq!(a.estimated_rows, 150);
        assert_eq!(a.stats_refreshes, 3);
        assert_eq!(a.misestimate_ratio, 4, "misestimate is a peak, not a sum");
        assert_eq!(a.partitions_rebalanced, 3);
    }

    #[test]
    fn seal_misestimate_takes_the_larger_direction() {
        // Overestimate: 100 estimated vs 10 probed → ratio 10.
        let mut s = EvalStats {
            estimated_rows: 100,
            probe_rows: 10,
            ..EvalStats::default()
        };
        s.seal_misestimate();
        assert_eq!(s.misestimate_ratio, 10);
        // Underestimate on a later pass: 10 estimated, 300 probed →
        // 30, which beats the recorded peak.
        s.estimated_rows = 10;
        s.probe_rows = 300;
        s.seal_misestimate();
        assert_eq!(s.misestimate_ratio, 30);
        // A better pass never shrinks the peak.
        s.estimated_rows = 50;
        s.probe_rows = 50;
        s.seal_misestimate();
        assert_eq!(s.misestimate_ratio, 30);
        // Either side zero: no signal, no change.
        let mut z = EvalStats {
            probe_rows: 40,
            ..EvalStats::default()
        };
        z.seal_misestimate();
        assert_eq!(z.misestimate_ratio, 0);
    }
}
