//! The public evaluation session: register predicates, load facts and
//! rules, run to fixpoint, query results.

use lps_term::{setops, FxHashSet, TermId, TermStore, Value};

use crate::config::{EvalConfig, EvalStats, SetUniverse};
use crate::error::EngineError;
use crate::fixpoint::run_stratum;
use crate::plan::{compile_rule, CompiledRule};
use crate::pred::{PredId, PredRegistry};
use crate::relation::Relation;
use crate::rule::Rule;
use crate::strata::stratify;

/// An evaluation session over a program's rules and facts.
///
/// ```
/// use lps_engine::{Engine, EvalConfig};
/// use lps_engine::pattern::{Pattern, VarId};
/// use lps_engine::rule::{BodyLit, Rule};
///
/// let mut engine = Engine::new(EvalConfig::default());
/// let edge = engine.pred("edge", 2);
/// let path = engine.pred("path", 2);
/// let (a, b, c) = {
///     let st = engine.store_mut();
///     (st.atom("a"), st.atom("b"), st.atom("c"))
/// };
/// engine.fact(edge, vec![a, b]).unwrap();
/// engine.fact(edge, vec![b, c]).unwrap();
/// let v = |i| Pattern::Var(VarId(i));
/// // path(X, Y) :- edge(X, Y).
/// engine.rule(Rule {
///     head: path,
///     head_args: vec![v(0), v(1)],
///     group: None,
///     outer: vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
///     quant: None,
///     num_vars: 2,
///     var_names: vec!["X".into(), "Y".into()],
///     var_sorts: vec![],
/// }).unwrap();
/// // path(X, Z) :- edge(X, Y), path(Y, Z).
/// engine.rule(Rule {
///     head: path,
///     head_args: vec![v(0), v(2)],
///     group: None,
///     outer: vec![
///         BodyLit::Pos(edge, vec![v(0), v(1)]),
///         BodyLit::Pos(path, vec![v(1), v(2)]),
///     ],
///     quant: None,
///     num_vars: 3,
///     var_names: vec!["X".into(), "Y".into(), "Z".into()],
///     var_sorts: vec![],
/// }).unwrap();
/// engine.run().unwrap();
/// assert!(engine.holds(path, &[a, c]));
/// assert_eq!(engine.tuples(path).count(), 3);
/// ```
#[derive(Debug)]
pub struct Engine {
    store: TermStore,
    preds: PredRegistry,
    full: Vec<Relation>,
    delta: Vec<Relation>,
    rules: Vec<Rule>,
    config: EvalConfig,
    last_stats: EvalStats,
}

/// Hard cap on the atom-domain size for the `ActiveSubsets` powerset
/// materialization (2^20 sets is already a million).
const MAX_POWERSET_ATOMS: usize = 20;

impl Engine {
    /// New session with the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        Engine {
            store: TermStore::new(),
            preds: PredRegistry::new(),
            full: Vec::new(),
            delta: Vec::new(),
            rules: Vec::new(),
            config,
            last_stats: EvalStats::default(),
        }
    }

    /// The term store (for interning constants and reading results).
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Mutable access to the term store.
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Mutable access to the configuration (before calling
    /// [`Engine::run`]).
    pub fn config_mut(&mut self) -> &mut EvalConfig {
        &mut self.config
    }

    /// Statistics from the most recent [`Engine::run`].
    pub fn stats(&self) -> EvalStats {
        self.last_stats
    }

    /// Register (or look up) a predicate by name and arity.
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        let sym = self.store.symbols_mut().intern(name);
        let id = self.preds.register(sym, arity);
        while self.full.len() <= id.index() {
            self.full.push(Relation::new(0));
            self.delta.push(Relation::new(0));
        }
        // (Re)size the relation if this is the first registration.
        if self.full[id.index()].arity() != arity && self.full[id.index()].is_empty() {
            self.full[id.index()] = Relation::new(arity);
            self.delta[id.index()] = Relation::new(arity);
        }
        id
    }

    /// Predicate metadata.
    pub fn pred_name(&self, id: PredId) -> String {
        self.store
            .symbols()
            .name(self.preds.info(id).name)
            .to_owned()
    }

    /// Look up a registered predicate.
    pub fn lookup_pred(&self, name: &str, arity: usize) -> Option<PredId> {
        let sym = self.store.symbols().get(name)?;
        self.preds.get(sym, arity)
    }

    /// The predicate registry.
    pub fn preds(&self) -> &PredRegistry {
        &self.preds
    }

    /// Load a ground fact.
    pub fn fact(&mut self, pred: PredId, tuple: Vec<TermId>) -> Result<(), EngineError> {
        let arity = self.preds.info(pred).arity;
        if tuple.len() != arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(pred),
                expected: arity,
                got: tuple.len(),
            });
        }
        self.full[pred.index()].insert(&tuple);
        Ok(())
    }

    /// Convenience: load a fact with owned [`Value`] arguments.
    pub fn fact_values(&mut self, pred: PredId, values: &[Value]) -> Result<(), EngineError> {
        let tuple: Vec<TermId> = values.iter().map(|v| v.intern(&mut self.store)).collect();
        self.fact(pred, tuple)
    }

    /// Add a rule. Arity consistency is checked against the registry.
    pub fn rule(&mut self, rule: Rule) -> Result<(), EngineError> {
        let arity = self.preds.info(rule.head).arity;
        if rule.head_args.len() != arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(rule.head),
                expected: arity,
                got: rule.head_args.len(),
            });
        }
        for lit in rule.all_body_lits() {
            let (pred, n) = match lit {
                crate::rule::BodyLit::Pos(p, args) | crate::rule::BodyLit::Neg(p, args) => {
                    (*p, args.len())
                }
                crate::rule::BodyLit::Builtin(b, args) => {
                    if args.len() != b.arity() {
                        return Err(EngineError::ArityMismatch {
                            pred: b.name().to_owned(),
                            expected: b.arity(),
                            got: args.len(),
                        });
                    }
                    continue;
                }
            };
            let expected = self.preds.info(pred).arity;
            if n != expected {
                return Err(EngineError::ArityMismatch {
                    pred: self.pred_name(pred),
                    expected,
                    got: n,
                });
            }
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Evaluate to fixpoint: stratify, compile, run each stratum.
    pub fn run(&mut self) -> Result<EvalStats, EngineError> {
        // Materialize the bounded powerset universe if configured.
        if let SetUniverse::ActiveSubsets { max_card } = self.config.set_universe {
            let atoms: Vec<TermId> = self
                .store
                .ids()
                .filter(|&id| self.store.is_atomic(id))
                .collect();
            if atoms.len() > MAX_POWERSET_ATOMS {
                return Err(EngineError::UniverseTooLarge {
                    atoms: atoms.len(),
                    max: MAX_POWERSET_ATOMS,
                });
            }
            setops::subsets_up_to(&mut self.store, &atoms, max_card);
        }

        let idb: FxHashSet<PredId> = self.rules.iter().map(|r| r.head).collect();
        let names = {
            let store = &self.store;
            let preds = &self.preds;
            move |p: PredId| store.symbols().name(preds.info(p).name).to_owned()
        };

        let strat = stratify(&self.rules, self.preds.len(), &names)?;

        let mut compiled: Vec<CompiledRule> = Vec::with_capacity(self.rules.len());
        for rule in &self.rules {
            compiled.push(compile_rule(
                rule,
                &self.preds,
                &names,
                &idb,
                self.config.set_universe,
            )?);
        }

        // Satisfy index requests.
        for cr in &compiled {
            for &(pred, mask, is_delta) in &cr.index_requests {
                self.full[pred.index()].ensure_index(mask);
                if is_delta {
                    self.delta[pred.index()].ensure_index(mask);
                }
            }
        }

        // Facts with ground heads load directly; everything else
        // evaluates per stratum.
        let mut stats = EvalStats::default();
        let mut regular_by_stratum: Vec<Vec<&CompiledRule>> = vec![Vec::new(); strat.num_strata];
        let mut grouping_by_stratum: Vec<Vec<&CompiledRule>> = vec![Vec::new(); strat.num_strata];
        for cr in &compiled {
            if cr.rule.is_fact() {
                continue;
            }
            let s = strat.stratum(cr.rule.head);
            if cr.rule.group.is_some() {
                grouping_by_stratum[s].push(cr);
            } else {
                regular_by_stratum[s].push(cr);
            }
        }
        for cr in &compiled {
            if cr.rule.is_fact() {
                let tuple: Vec<TermId> = cr
                    .rule
                    .head_args
                    .iter()
                    .map(|p| match p {
                        crate::pattern::Pattern::Ground(id) => *id,
                        _ => unreachable!("is_fact guarantees ground head"),
                    })
                    .collect();
                if self.full[cr.rule.head.index()].insert(&tuple) {
                    stats.facts_derived += 1;
                }
            }
        }

        for s in 0..strat.num_strata {
            let stratum_stats = run_stratum(
                &mut self.store,
                &mut self.full,
                &mut self.delta,
                &regular_by_stratum[s],
                &grouping_by_stratum[s],
                &self.config,
            )?;
            stats.absorb(stratum_stats);
        }

        self.last_stats = stats;
        Ok(stats)
    }

    /// The full relation of a predicate (after [`Engine::run`]).
    pub fn relation(&self, pred: PredId) -> &Relation {
        &self.full[pred.index()]
    }

    /// Whether a ground tuple holds.
    pub fn holds(&self, pred: PredId, tuple: &[TermId]) -> bool {
        self.full[pred.index()].contains(tuple)
    }

    /// Iterate over the tuples of a predicate.
    pub fn tuples(&self, pred: PredId) -> impl Iterator<Item = &[TermId]> {
        self.full[pred.index()].iter()
    }

    /// Extract a predicate's extension as owned [`Value`] rows, sorted
    /// — a stable form for tests and for the Theorem-10/11 equivalence
    /// harness.
    pub fn extension(&self, pred: PredId) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self
            .tuples(pred)
            .map(|t| {
                t.iter()
                    .map(|&id| Value::from_store(&self.store, id))
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, VarId};
    use crate::rule::{BodyLit, Builtin, GroupSpec, QuantGroup};

    fn v(i: u32) -> Pattern {
        Pattern::Var(VarId(i))
    }

    fn plain_rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
        Rule {
            head,
            head_args,
            group: None,
            outer,
            quant: None,
            num_vars: nv,
            var_names: (0..nv).map(|i| format!("V{i}")).collect(),
            var_sorts: vec![],
        }
    }

    #[test]
    fn transitive_closure() {
        let mut e = Engine::new(EvalConfig::default());
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let ids: Vec<TermId> = (0..5)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(edge, vec![v(0), v(1)]),
                BodyLit::Pos(path, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        let stats = e.run().unwrap();
        // 4+3+2+1 = 10 paths.
        assert_eq!(e.tuples(path).count(), 10);
        assert!(e.holds(path, &[ids[0], ids[4]]));
        assert!(!e.holds(path, &[ids[4], ids[0]]));
        assert!(stats.iterations >= 3, "chain of length 4 needs rounds");
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let build = |strategy| {
            let mut e = Engine::new(EvalConfig {
                strategy,
                ..EvalConfig::default()
            });
            let edge = e.pred("edge", 2);
            let path = e.pred("path", 2);
            let ids: Vec<TermId> = (0..6)
                .map(|i| e.store_mut().atom(&format!("n{i}")))
                .collect();
            for i in 0..5 {
                e.fact(edge, vec![ids[i], ids[i + 1]]).unwrap();
            }
            e.fact(edge, vec![ids[5], ids[0]]).unwrap(); // cycle
            e.rule(plain_rule(
                path,
                vec![v(0), v(1)],
                vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
                2,
            ))
            .unwrap();
            e.rule(plain_rule(
                path,
                vec![v(0), v(2)],
                vec![
                    BodyLit::Pos(edge, vec![v(0), v(1)]),
                    BodyLit::Pos(path, vec![v(1), v(2)]),
                ],
                3,
            ))
            .unwrap();
            e.run().unwrap();
            e.extension(path)
        };
        let naive = build(crate::config::FixpointStrategy::Naive);
        let semi = build(crate::config::FixpointStrategy::SemiNaive);
        assert_eq!(naive, semi);
        assert_eq!(naive.len(), 36, "complete digraph on the 6-cycle");
    }

    #[test]
    fn example_1_disj_via_quantifiers() {
        // disj(X, Y) :- pair(X, Y), (∀u∈X)(∀w∈Y) u != w.
        let mut e = Engine::new(EvalConfig::default());
        let pair = e.pred("pair", 2);
        let disj = e.pred("disj", 2);
        let st = e.store_mut();
        let a = st.atom("a");
        let b = st.atom("b");
        let c = st.atom("c");
        let s_ab = st.set(vec![a, b]);
        let s_c = st.set(vec![c]);
        let s_bc = st.set(vec![b, c]);
        let s_empty = st.empty_set();
        e.fact(pair, vec![s_ab, s_c]).unwrap();
        e.fact(pair, vec![s_ab, s_bc]).unwrap();
        e.fact(pair, vec![s_empty, s_bc]).unwrap();
        e.rule(Rule {
            head: disj,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(pair, vec![v(0), v(1)])],
            quant: Some(QuantGroup {
                binders: vec![(VarId(2), v(0)), (VarId(3), v(1))],
                inner: vec![BodyLit::Builtin(Builtin::Ne, vec![v(2), v(3)])],
            }),
            num_vars: 4,
            var_names: vec!["X".into(), "Y".into(), "U".into(), "W".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(disj, &[s_ab, s_c]));
        assert!(!e.holds(disj, &[s_ab, s_bc]), "{{a,b}} ∩ {{b,c}} ≠ ∅");
        assert!(e.holds(disj, &[s_empty, s_bc]), "∅ is disjoint from all");
    }

    #[test]
    fn example_4_unnest() {
        // s(X, Y) :- r(X, Ys), Y in Ys.
        let mut e = Engine::new(EvalConfig::default());
        let r = e.pred("r", 2);
        let s = e.pred("s", 2);
        let st = e.store_mut();
        let x1 = st.atom("x1");
        let p = st.atom("p");
        let q = st.atom("q");
        let set_pq = st.set(vec![p, q]);
        e.fact(r, vec![x1, set_pq]).unwrap();
        e.rule(Rule {
            head: s,
            head_args: vec![v(0), v(2)],
            group: None,
            outer: vec![
                BodyLit::Pos(r, vec![v(0), v(1)]),
                BodyLit::Builtin(Builtin::In, vec![v(2), v(1)]),
            ],
            quant: None,
            num_vars: 3,
            var_names: vec!["X".into(), "Ys".into(), "Y".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(s, &[x1, p]));
        assert!(e.holds(s, &[x1, q]));
        assert_eq!(e.tuples(s).count(), 2);
    }

    #[test]
    fn stratified_negation() {
        // unreachable(X) :- node(X), not reach(X).
        let mut e = Engine::new(EvalConfig::default());
        let node = e.pred("node", 1);
        let edge = e.pred("edge", 2);
        let reach = e.pred("reach", 1);
        let unreach = e.pred("unreachable", 1);
        let ids: Vec<TermId> = (0..4)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for &n in &ids {
            e.fact(node, vec![n]).unwrap();
        }
        e.fact(edge, vec![ids[0], ids[1]]).unwrap();
        e.fact(reach, vec![ids[0]]).unwrap();
        e.rule(plain_rule(
            reach,
            vec![v(1)],
            vec![
                BodyLit::Pos(reach, vec![v(0)]),
                BodyLit::Pos(edge, vec![v(0), v(1)]),
            ],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            unreach,
            vec![v(0)],
            vec![
                BodyLit::Pos(node, vec![v(0)]),
                BodyLit::Neg(reach, vec![v(0)]),
            ],
            1,
        ))
        .unwrap();
        e.run().unwrap();
        assert!(!e.holds(unreach, &[ids[0]]));
        assert!(!e.holds(unreach, &[ids[1]]));
        assert!(e.holds(unreach, &[ids[2]]));
        assert!(e.holds(unreach, &[ids[3]]));
    }

    #[test]
    fn ldl_grouping_head() {
        // owns(P, <C>) :- car(P, C).
        let mut e = Engine::new(EvalConfig::default());
        let car = e.pred("car", 2);
        let owns = e.pred("owns", 2);
        let st = e.store_mut();
        let alice = st.atom("alice");
        let bob = st.atom("bob");
        let c1 = st.atom("c1");
        let c2 = st.atom("c2");
        let c3 = st.atom("c3");
        e.fact(car, vec![alice, c1]).unwrap();
        e.fact(car, vec![alice, c2]).unwrap();
        e.fact(car, vec![bob, c3]).unwrap();
        e.rule(Rule {
            head: owns,
            head_args: vec![v(0), v(1)],
            group: Some(GroupSpec {
                arg_pos: 1,
                var: VarId(1),
            }),
            outer: vec![BodyLit::Pos(car, vec![v(0), v(1)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["P".into(), "C".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        let set_alice = e.store_mut().set(vec![c1, c2]);
        let set_bob = e.store_mut().set(vec![c3]);
        assert!(e.holds(owns, &[alice, set_alice]));
        assert!(e.holds(owns, &[bob, set_bob]));
        assert_eq!(e.tuples(owns).count(), 2);
    }

    #[test]
    fn example_5_sum_via_disjoint_union() {
        // sum({}, 0).
        // sum(X, N) :- num_set(X), X = {N}.
        // sum(Z, K) :- num_set(Z), disj_union(X, Y, Z), X != {},
        //              Y != {}, sum(X, M), sum(Y, N), add(M, N, K).
        // (num_set bounds the recursion to subsets that occur; here we
        //  drive it with every subset decomposition instead, exactly as
        //  the paper's recursion does, seeded by sum({n}, n).)
        let mut e = Engine::new(EvalConfig::default());
        let num_set = e.pred("num_set", 1);
        let sum = e.pred("sum", 2);
        let st = e.store_mut();
        let nums: Vec<TermId> = [3i64, 5, 9].iter().map(|&n| st.int(n)).collect();
        let zero = st.int(0);
        let whole = st.set(nums.clone());
        let empty = st.empty_set();
        e.fact(num_set, vec![whole]).unwrap();
        // Close num_set under disjoint decomposition so the recursion
        // has its subsets available.
        e.rule(Rule {
            head: num_set,
            head_args: vec![v(1)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::DisjUnion, vec![v(1), v(2), v(0)]),
            ],
            quant: None,
            num_vars: 3,
            var_names: vec!["Z".into(), "X".into(), "Y".into()],
            var_sorts: vec![],
        })
        .unwrap();
        // sum({}, 0).
        e.rule(Rule {
            head: sum,
            head_args: vec![Pattern::Ground(empty), Pattern::Ground(zero)],
            group: None,
            outer: vec![],
            quant: None,
            num_vars: 0,
            var_names: vec![],
            var_sorts: vec![],
        })
        .unwrap();
        // sum(X, N) :- num_set(X), X = {N}.
        e.rule(Rule {
            head: sum,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::Eq, vec![v(0), Pattern::Set(Box::new([v(1)]))]),
            ],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "N".into()],
            var_sorts: vec![],
        })
        .unwrap();
        // The recursive clause.
        e.rule(Rule {
            head: sum,
            head_args: vec![v(0), v(6)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::DisjUnion, vec![v(1), v(2), v(0)]),
                BodyLit::Pos(sum, vec![v(1), v(4)]),
                BodyLit::Pos(sum, vec![v(2), v(5)]),
                BodyLit::Builtin(Builtin::Add, vec![v(4), v(5), v(6)]),
            ],
            quant: None,
            num_vars: 7,
            var_names: (0..7).map(|i| format!("V{i}")).collect(),
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        let seventeen = e.store_mut().int(17);
        assert!(e.holds(sum, &[whole, seventeen]));
        // Sums are functional: one value per set.
        let whole_sums: Vec<_> = e
            .tuples(sum)
            .filter(|t| t[0] == whole)
            .map(|t| t[1])
            .collect();
        assert_eq!(whole_sums, vec![seventeen]);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut e = Engine::new(EvalConfig::default());
        let p = e.pred("p", 2);
        let a = e.store_mut().atom("a");
        let err = e.fact(p, vec![a]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
    }

    #[test]
    fn powerset_universe_materializes_on_run() {
        let mut e = Engine::new(EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
            ..EvalConfig::default()
        });
        let item = e.pred("item", 1);
        let a = e.store_mut().atom("a");
        let b = e.store_mut().atom("b");
        e.fact(item, vec![a]).unwrap();
        e.fact(item, vec![b]).unwrap();
        e.run().unwrap();
        // ∅, {a}, {b}, {a,b} all interned.
        assert_eq!(e.store().set_ids().len(), 4);
    }
}
