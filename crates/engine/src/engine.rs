//! The public evaluation session: register predicates, load facts and
//! rules, run to fixpoint, query results — and keep the result
//! *maintainable*: facts added after a completed fixpoint accumulate
//! as pending deltas, and [`Engine::update`] seeds the semi-naive
//! drivers with them, re-running only from the lowest affected stratum
//! onward over the retained relations instead of recomputing the model
//! from scratch.

use lps_term::{setops, FxHashSet, TermId, TermStore, Value};

use crate::config::{EvalConfig, EvalStats, SetUniverse};
use crate::error::EngineError;
use crate::fixpoint::{run_stratum, StratumStart};
use crate::plan::{compile_rule, CompiledRule};
use crate::pred::{PredId, PredRegistry};
use crate::relation::{ColMask, Relation};
use crate::rule::{BodyLit, Rule};
use crate::strata::{stratify, Stratification};

/// Lifecycle of an [`Engine`] session.
///
/// ```text
/// Unprepared ──prepare──▶ Prepared ──run──▶ Materialized ──fact──▶ Dirty
///      ▲                      ▲                  │  ▲                │
///      └───────── rule ───────┴── reset_facts ───┘  └──── update ────┘
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineState {
    /// Rules changed since the last prepare: the next run restratifies
    /// and recompiles.
    Unprepared,
    /// Stratification, compiled rules, and index requests are cached;
    /// no model is materialized yet (fresh prepare, or after
    /// [`Engine::reset_facts`]).
    Prepared,
    /// A least model is materialized and current.
    Materialized,
    /// A model is materialized, but facts added since then wait in the
    /// pending deltas; [`Engine::update`] reconciles incrementally.
    Dirty,
}

/// Cached prepare-phase artifacts: everything derived from the rule
/// set alone. Reused across batch runs and incremental updates;
/// invalidated only when a rule is added (or the universe policy
/// changes, which affects compilation).
#[derive(Debug)]
struct Prepared {
    strat: Stratification,
    compiled: Vec<CompiledRule>,
    /// Indices into `compiled` of ordinary rules, per stratum.
    regular_by_stratum: Vec<Vec<usize>>,
    /// Indices into `compiled` of LDL grouping rules, per stratum.
    grouping_by_stratum: Vec<Vec<usize>>,
    /// Indices into `compiled` of ground-head fact rules.
    fact_rules: Vec<usize>,
    /// Deduplicated `(pred, mask, delta)` index requests.
    index_requests: Vec<(PredId, ColMask, bool)>,
    /// Highest stratum holding a non-monotone rule (negation anywhere
    /// in the body, or a grouping head). Incremental updates whose
    /// restart stratum is at or below it fall back to a batch run:
    /// monotone delta continuation cannot retract.
    max_nonmono_stratum: Option<usize>,
    /// Lowest stratum holding a rule that enumerates the active set
    /// universe: growth of the universe restarts from here.
    min_universe_stratum: Option<usize>,
    /// The universe policy the rules were compiled under.
    policy: SetUniverse,
}

/// An evaluation session over a program's rules and facts.
///
/// ```
/// use lps_engine::{Engine, EvalConfig};
/// use lps_engine::pattern::{Pattern, VarId};
/// use lps_engine::rule::{BodyLit, Rule};
///
/// let mut engine = Engine::new(EvalConfig::default());
/// let edge = engine.pred("edge", 2);
/// let path = engine.pred("path", 2);
/// let (a, b, c) = {
///     let st = engine.store_mut();
///     (st.atom("a"), st.atom("b"), st.atom("c"))
/// };
/// engine.fact(edge, vec![a, b]).unwrap();
/// engine.fact(edge, vec![b, c]).unwrap();
/// let v = |i| Pattern::Var(VarId(i));
/// // path(X, Y) :- edge(X, Y).
/// engine.rule(Rule {
///     head: path,
///     head_args: vec![v(0), v(1)],
///     group: None,
///     outer: vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
///     quant: None,
///     num_vars: 2,
///     var_names: vec!["X".into(), "Y".into()],
///     var_sorts: vec![],
/// }).unwrap();
/// // path(X, Z) :- edge(X, Y), path(Y, Z).
/// engine.rule(Rule {
///     head: path,
///     head_args: vec![v(0), v(2)],
///     group: None,
///     outer: vec![
///         BodyLit::Pos(edge, vec![v(0), v(1)]),
///         BodyLit::Pos(path, vec![v(1), v(2)]),
///     ],
///     quant: None,
///     num_vars: 3,
///     var_names: vec!["X".into(), "Y".into(), "Z".into()],
///     var_sorts: vec![],
/// }).unwrap();
/// engine.run().unwrap();
/// assert!(engine.holds(path, &[a, c]));
/// assert_eq!(engine.tuples(path).count(), 3);
/// // The session stays maintainable: a fact added after the fixpoint
/// // queues as a pending delta, and `update` re-reaches the least
/// // model incrementally instead of recomputing it.
/// let d = engine.store_mut().atom("d");
/// engine.fact(edge, vec![c, d]).unwrap();
/// let stats = engine.update().unwrap();
/// assert_eq!(stats.incremental_runs, 1);
/// assert!(engine.holds(path, &[a, d]));
/// assert_eq!(engine.rows(path).len(), 6);
/// ```
#[derive(Debug)]
pub struct Engine {
    store: TermStore,
    preds: PredRegistry,
    /// Extensional facts loaded via [`Engine::fact`] — the session's
    /// EDB, kept apart from derived tuples so batch runs (and the
    /// non-monotone fallback) can rebuild the model from scratch.
    edb: Vec<Relation>,
    /// The materialized model: EDB plus derived tuples.
    full: Vec<Relation>,
    /// Semi-naive working deltas.
    delta: Vec<Relation>,
    /// Facts added after a completed fixpoint, awaiting
    /// [`Engine::update`].
    pending: Vec<Relation>,
    rules: Vec<Rule>,
    config: EvalConfig,
    state: EngineState,
    prepared: Option<Prepared>,
    /// Interned-set count at the last completed materialization (the
    /// baseline for universe-growth triggers in incremental updates).
    sets_at_materialize: usize,
    /// The configuration the model was materialized under: a
    /// [`Engine::config_mut`] change after that voids the
    /// `Materialized`/`Dirty` short-circuits and forces a rebuild.
    config_at_materialize: EvalConfig,
    last_stats: EvalStats,
    cumulative_stats: EvalStats,
}

/// Hard cap on the atom-domain size for the `ActiveSubsets` powerset
/// materialization (2^20 sets is already a million).
const MAX_POWERSET_ATOMS: usize = 20;

impl Engine {
    /// New session with the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        Engine {
            store: TermStore::new(),
            preds: PredRegistry::new(),
            edb: Vec::new(),
            full: Vec::new(),
            delta: Vec::new(),
            pending: Vec::new(),
            rules: Vec::new(),
            config,
            state: EngineState::Unprepared,
            prepared: None,
            sets_at_materialize: 0,
            config_at_materialize: config,
            last_stats: EvalStats::default(),
            cumulative_stats: EvalStats::default(),
        }
    }

    /// Where the session is in its lifecycle.
    pub fn state(&self) -> EngineState {
        self.state
    }

    /// The term store (for interning constants and reading results).
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Mutable access to the term store.
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Mutable access to the configuration (before calling
    /// [`Engine::run`]).
    pub fn config_mut(&mut self) -> &mut EvalConfig {
        &mut self.config
    }

    /// Statistics from the most recent evaluation pass (batch run or
    /// incremental update) that performed work.
    pub fn stats(&self) -> EvalStats {
        self.last_stats
    }

    /// Statistics accumulated over the whole session: the initial
    /// materialization plus every incremental update since.
    pub fn cumulative_stats(&self) -> EvalStats {
        self.cumulative_stats
    }

    /// Register (or look up) a predicate by name and arity.
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        let sym = self.store.symbols_mut().intern(name);
        let id = self.preds.register(sym, arity);
        while self.full.len() <= id.index() {
            self.edb.push(Relation::new(0));
            self.full.push(Relation::new(0));
            self.delta.push(Relation::new(0));
            self.pending.push(Relation::new(0));
        }
        // (Re)size the relation if this is the first registration.
        if self.full[id.index()].arity() != arity && self.full[id.index()].is_empty() {
            self.edb[id.index()] = Relation::new(arity);
            self.full[id.index()] = Relation::new(arity);
            self.delta[id.index()] = Relation::new(arity);
            self.pending[id.index()] = Relation::new(arity);
        }
        id
    }

    /// Predicate metadata.
    pub fn pred_name(&self, id: PredId) -> String {
        self.store
            .symbols()
            .name(self.preds.info(id).name)
            .to_owned()
    }

    /// Look up a registered predicate.
    pub fn lookup_pred(&self, name: &str, arity: usize) -> Option<PredId> {
        let sym = self.store.symbols().get(name)?;
        self.preds.get(sym, arity)
    }

    /// The predicate registry.
    pub fn preds(&self) -> &PredRegistry {
        &self.preds
    }

    /// Load a ground fact. Before the first run it joins the EDB to be
    /// picked up by the next batch evaluation; after a completed
    /// fixpoint it queues as a pending delta and marks the session
    /// [`EngineState::Dirty`], to be reconciled by [`Engine::update`].
    pub fn fact(&mut self, pred: PredId, tuple: Vec<TermId>) -> Result<(), EngineError> {
        let arity = self.preds.info(pred).arity;
        if tuple.len() != arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(pred),
                expected: arity,
                got: tuple.len(),
            });
        }
        self.edb[pred.index()].insert(&tuple);
        if matches!(self.state, EngineState::Materialized | EngineState::Dirty)
            && !self.full[pred.index()].contains(&tuple)
        {
            self.pending[pred.index()].insert(&tuple);
            self.state = EngineState::Dirty;
        }
        Ok(())
    }

    /// Convenience: load a fact with owned [`Value`] arguments.
    pub fn fact_values(&mut self, pred: PredId, values: &[Value]) -> Result<(), EngineError> {
        let tuple: Vec<TermId> = values.iter().map(|v| v.intern(&mut self.store)).collect();
        self.fact(pred, tuple)
    }

    /// Add a rule. Arity consistency is checked against the registry.
    pub fn rule(&mut self, rule: Rule) -> Result<(), EngineError> {
        let arity = self.preds.info(rule.head).arity;
        if rule.head_args.len() != arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(rule.head),
                expected: arity,
                got: rule.head_args.len(),
            });
        }
        for lit in rule.all_body_lits() {
            let (pred, n) = match lit {
                crate::rule::BodyLit::Pos(p, args) | crate::rule::BodyLit::Neg(p, args) => {
                    (*p, args.len())
                }
                crate::rule::BodyLit::Builtin(b, args) => {
                    if args.len() != b.arity() {
                        return Err(EngineError::ArityMismatch {
                            pred: b.name().to_owned(),
                            expected: b.arity(),
                            got: args.len(),
                        });
                    }
                    continue;
                }
            };
            let expected = self.preds.info(pred).arity;
            if n != expected {
                return Err(EngineError::ArityMismatch {
                    pred: self.pred_name(pred),
                    expected,
                    got: n,
                });
            }
        }
        self.rules.push(rule);
        // The rule set changed: cached plans and any materialized model
        // are stale. The next run restratifies, recompiles, and
        // rebuilds the model from the EDB.
        self.prepared = None;
        self.state = EngineState::Unprepared;
        Ok(())
    }

    /// Reach the least model.
    ///
    /// * [`EngineState::Unprepared`] / [`EngineState::Prepared`]: batch
    ///   evaluation — stratify and compile if not cached, rebuild the
    ///   model from the EDB, run every stratum to fixpoint.
    /// * [`EngineState::Dirty`]: delegates to [`Engine::update`] — the
    ///   pending facts are reconciled incrementally.
    /// * [`EngineState::Materialized`]: a cheap no-op — the fixpoint is
    ///   already reached; returns zeroed stats and leaves the model
    ///   (and [`Engine::stats`]) untouched.
    ///
    /// A configuration changed via [`Engine::config_mut`] after a
    /// materialization voids the short-circuits: the model is rebuilt
    /// under the new settings.
    pub fn run(&mut self) -> Result<EvalStats, EngineError> {
        if matches!(self.state, EngineState::Materialized | EngineState::Dirty)
            && self.config != self.config_at_materialize
        {
            // The materialized model was computed under a different
            // configuration; `prepare` re-checks the universe policy.
            return self.run_batch();
        }
        match self.state {
            EngineState::Materialized => Ok(EvalStats::default()),
            EngineState::Dirty => self.update_incremental(),
            EngineState::Unprepared | EngineState::Prepared => self.run_batch(),
        }
    }

    /// Reconcile facts added since the last completed fixpoint.
    ///
    /// Seeds the semi-naive drivers with the per-predicate pending
    /// deltas and re-runs only from the lowest affected stratum onward,
    /// over the retained full relations. Falls back to a batch
    /// recompute (from the EDB) when a non-monotone rule — negation or
    /// grouping — sits at or above the restart stratum, since a
    /// monotone continuation cannot retract tuples. With no model
    /// materialized yet this is a batch run; with nothing pending it is
    /// a no-op returning zeroed stats. Equivalent to [`Engine::run`] —
    /// both entry points resolve the session state the same way.
    pub fn update(&mut self) -> Result<EvalStats, EngineError> {
        self.run()
    }

    /// Drop all facts — EDB, pending deltas, and the materialized
    /// model — while keeping the rules and their compiled plans. The
    /// session returns to [`EngineState::Prepared`] (or
    /// [`EngineState::Unprepared`] if it was never prepared), so the
    /// next run skips restratification and recompilation.
    pub fn reset_facts(&mut self) {
        for i in 0..self.preds.len() {
            self.edb[i].clear();
            self.full[i].clear();
            self.delta[i].clear();
            self.pending[i].clear();
        }
        self.state = if self.prepared.is_some() {
            EngineState::Prepared
        } else {
            EngineState::Unprepared
        };
    }

    /// Materialize the bounded powerset universe if configured. Run
    /// before every evaluation pass: idempotent, and monotone in the
    /// atom domain, so incremental updates that intern new atoms extend
    /// the universe in place.
    fn materialize_universe(&mut self) -> Result<(), EngineError> {
        if let SetUniverse::ActiveSubsets { max_card } = self.config.set_universe {
            let atoms: Vec<TermId> = self
                .store
                .ids()
                .filter(|&id| self.store.is_atomic(id))
                .collect();
            if atoms.len() > MAX_POWERSET_ATOMS {
                return Err(EngineError::UniverseTooLarge {
                    atoms: atoms.len(),
                    max: MAX_POWERSET_ATOMS,
                });
            }
            setops::subsets_up_to(&mut self.store, &atoms, max_card);
        }
        Ok(())
    }

    /// Stratify and compile the rule set, caching the result. A no-op
    /// when a cache built under the current universe policy exists.
    fn prepare(&mut self) -> Result<(), EngineError> {
        if self
            .prepared
            .as_ref()
            .is_some_and(|p| p.policy == self.config.set_universe)
        {
            return Ok(());
        }
        // Every registered predicate can gain facts later in the
        // session, so every positive literal gets a delta variant and
        // every quantifier-inner predicate is a re-evaluation trigger
        // (in batch runs the extra variants skip on empty deltas).
        let growable: FxHashSet<PredId> = self.preds.ids().collect();
        let names = {
            let store = &self.store;
            let preds = &self.preds;
            move |p: PredId| store.symbols().name(preds.info(p).name).to_owned()
        };
        let strat = stratify(&self.rules, self.preds.len(), &names)?;

        let mut compiled: Vec<CompiledRule> = Vec::with_capacity(self.rules.len());
        for rule in &self.rules {
            compiled.push(compile_rule(
                rule,
                &self.preds,
                &names,
                &growable,
                self.config.set_universe,
            )?);
        }

        let mut regular_by_stratum: Vec<Vec<usize>> = vec![Vec::new(); strat.num_strata];
        let mut grouping_by_stratum: Vec<Vec<usize>> = vec![Vec::new(); strat.num_strata];
        let mut fact_rules = Vec::new();
        let mut index_requests = Vec::new();
        let mut max_nonmono_stratum = None;
        let mut min_universe_stratum = None;
        for (i, cr) in compiled.iter().enumerate() {
            index_requests.extend_from_slice(&cr.index_requests);
            if cr.rule.is_fact() {
                fact_rules.push(i);
                continue;
            }
            let s = strat.stratum(cr.rule.head);
            let nonmono = cr.rule.group.is_some()
                || cr
                    .rule
                    .all_body_lits()
                    .any(|l| matches!(l, BodyLit::Neg(..)));
            if nonmono {
                max_nonmono_stratum = Some(max_nonmono_stratum.map_or(s, |m: usize| m.max(s)));
            }
            if cr.uses_active_universe {
                min_universe_stratum = Some(min_universe_stratum.map_or(s, |m: usize| m.min(s)));
            }
            if cr.rule.group.is_some() {
                grouping_by_stratum[s].push(i);
            } else {
                regular_by_stratum[s].push(i);
            }
        }
        index_requests.sort_unstable();
        index_requests.dedup();

        self.prepared = Some(Prepared {
            strat,
            compiled,
            regular_by_stratum,
            grouping_by_stratum,
            fact_rules,
            index_requests,
            max_nonmono_stratum,
            min_universe_stratum,
            policy: self.config.set_universe,
        });
        if self.state == EngineState::Unprepared {
            self.state = EngineState::Prepared;
        }
        Ok(())
    }

    /// Batch evaluation: rebuild the model from the EDB and run every
    /// stratum to fixpoint with the cached plans.
    fn run_batch(&mut self) -> Result<EvalStats, EngineError> {
        self.materialize_universe()?;
        self.prepare()?;
        let mut stats = EvalStats::default();

        // Reset the model to the EDB; loaded facts count as derived
        // (they are part of `T_P ↑ ω`'s base).
        for i in 0..self.preds.len() {
            self.full[i] = self.edb[i].clone();
            stats.facts_derived += self.edb[i].len();
            self.delta[i].clear();
            self.pending[i].clear();
        }

        let prepared = self.prepared.as_ref().expect("prepare() just ran");
        for &(pred, mask, is_delta) in &prepared.index_requests {
            self.full[pred.index()].ensure_index(mask);
            if is_delta {
                self.delta[pred.index()].ensure_index(mask);
            }
        }

        // Ground-head fact rules load directly; everything else
        // evaluates per stratum.
        for &i in &prepared.fact_rules {
            let cr = &prepared.compiled[i];
            let tuple: Vec<TermId> = cr
                .rule
                .head_args
                .iter()
                .map(|p| match p {
                    crate::pattern::Pattern::Ground(id) => *id,
                    _ => unreachable!("is_fact guarantees ground head"),
                })
                .collect();
            if self.full[cr.rule.head.index()].insert(&tuple) {
                stats.facts_derived += 1;
            }
        }

        for s in 0..prepared.strat.num_strata {
            let regular: Vec<&CompiledRule> = prepared.regular_by_stratum[s]
                .iter()
                .map(|&i| &prepared.compiled[i])
                .collect();
            let grouping: Vec<&CompiledRule> = prepared.grouping_by_stratum[s]
                .iter()
                .map(|&i| &prepared.compiled[i])
                .collect();
            let stratum_stats = run_stratum(
                &mut self.store,
                &mut self.full,
                &mut self.delta,
                &regular,
                &grouping,
                &self.config,
                StratumStart::Batch,
            )?;
            stats.absorb(stratum_stats);
        }

        self.finish(stats)
    }

    /// Incremental update: splice the pending facts into the model,
    /// then continue the semi-naive fixpoint from the lowest affected
    /// stratum with the deltas seeded from exactly those new tuples.
    fn update_incremental(&mut self) -> Result<EvalStats, EngineError> {
        self.materialize_universe()?;
        let npreds = self.preds.len();
        let changed: Vec<PredId> = (0..npreds)
            .map(PredId::from_index)
            .filter(|p| !self.pending[p.index()].is_empty())
            .collect();
        let universe_grew = self.store.set_ids().len() > self.sets_at_materialize;

        let (start, fallback, num_strata) = {
            let prepared = self
                .prepared
                .as_ref()
                .expect("a materialized session is prepared");
            let mut start = prepared.strat.lowest_affected(changed.iter().copied());
            if universe_grew {
                // New interned sets can re-fire universe-enumerating
                // rules even below the lowest fact-affected stratum.
                start = match (start, prepared.min_universe_stratum) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let fallback =
                start.is_some_and(|s0| prepared.max_nonmono_stratum.is_some_and(|m| m >= s0));
            (start, fallback, prepared.strat.num_strata)
        };
        if fallback {
            // Negation or grouping at/above the restart stratum: a
            // monotone continuation cannot retract, so recompute from
            // the EDB (which already includes the pending facts).
            return self.run_batch();
        }

        let mut stats = EvalStats::default();
        // Splice pending facts into the model, remembering each
        // relation's previous length: rows past the snapshot are this
        // update's seed set.
        let snapshot: Vec<u32> = (0..npreds).map(|i| self.full[i].len() as u32).collect();
        for &p in &changed {
            let i = p.index();
            for r in 0..self.pending[i].len() as u32 {
                let tuple = self.pending[i].row(r);
                if self.full[i].insert(tuple) {
                    stats.delta_seed_facts += 1;
                    stats.facts_derived += 1;
                }
            }
            self.pending[i].clear();
        }

        if let Some(s0) = start {
            let sets_baseline = self.sets_at_materialize;
            for s in s0..num_strata {
                // Re-seed the deltas with everything this update has
                // added so far (pending facts plus lower-stratum
                // derivations) — but only for the predicates this
                // stratum's rules actually read; the delta variants and
                // quantifier triggers consult no others.
                for d in self.delta.iter_mut() {
                    d.clear();
                }
                let prepared = self.prepared.as_ref().expect("checked above");
                for &p in prepared.strat.reads(s) {
                    let i = p.index();
                    for r in snapshot[i]..self.full[i].len() as u32 {
                        let tuple = self.full[i].row(r);
                        self.delta[i].insert(tuple);
                    }
                }
                let regular: Vec<&CompiledRule> = prepared.regular_by_stratum[s]
                    .iter()
                    .map(|&i| &prepared.compiled[i])
                    .collect();
                let stratum_stats = run_stratum(
                    &mut self.store,
                    &mut self.full,
                    &mut self.delta,
                    &regular,
                    &[],
                    &self.config,
                    StratumStart::Seeded { sets_baseline },
                )?;
                stats.absorb(stratum_stats);
            }
            for d in self.delta.iter_mut() {
                d.clear();
            }
        }

        stats.incremental_runs = 1;
        self.finish(stats)
    }

    /// Common epilogue of every evaluation pass.
    fn finish(&mut self, stats: EvalStats) -> Result<EvalStats, EngineError> {
        self.state = EngineState::Materialized;
        self.sets_at_materialize = self.store.set_ids().len();
        self.config_at_materialize = self.config;
        self.last_stats = stats;
        self.cumulative_stats.absorb(stats);
        Ok(stats)
    }

    /// The full relation of a predicate (after [`Engine::run`]).
    pub fn relation(&self, pred: PredId) -> &Relation {
        &self.full[pred.index()]
    }

    /// Whether a ground tuple holds.
    pub fn holds(&self, pred: PredId, tuple: &[TermId]) -> bool {
        self.full[pred.index()].contains(tuple)
    }

    /// Iterate over the tuples of a predicate.
    pub fn tuples(&self, pred: PredId) -> impl Iterator<Item = &[TermId]> {
        self.rows(pred)
    }

    /// Borrowing, exact-size iterator over a predicate's tuples: rows
    /// are read straight out of the relation arena, nothing is
    /// allocated, and `len()` is O(1) — the cheap counterpart of
    /// [`Engine::extension`] for callers that only need to walk or
    /// count.
    pub fn rows(&self, pred: PredId) -> Rows<'_> {
        Rows {
            rel: &self.full[pred.index()],
            next: 0,
        }
    }

    /// Extract a predicate's extension as owned [`Value`] rows, sorted
    /// — a stable form for tests and for the Theorem-10/11 equivalence
    /// harness. Prefer [`Engine::rows`] when borrowing suffices.
    pub fn extension(&self, pred: PredId) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self
            .rows(pred)
            .map(|t| {
                t.iter()
                    .map(|&id| Value::from_store(&self.store, id))
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    }
}

/// Borrowing tuple iterator returned by [`Engine::rows`].
#[derive(Clone, Debug)]
pub struct Rows<'a> {
    rel: &'a Relation,
    next: u32,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [TermId];

    fn next(&mut self) -> Option<&'a [TermId]> {
        if (self.next as usize) < self.rel.len() {
            let row = self.rel.row(self.next);
            self.next += 1;
            Some(row)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.rel.len() - self.next as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Rows<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, VarId};
    use crate::rule::{BodyLit, Builtin, GroupSpec, QuantGroup};

    fn v(i: u32) -> Pattern {
        Pattern::Var(VarId(i))
    }

    fn plain_rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
        Rule {
            head,
            head_args,
            group: None,
            outer,
            quant: None,
            num_vars: nv,
            var_names: (0..nv).map(|i| format!("V{i}")).collect(),
            var_sorts: vec![],
        }
    }

    #[test]
    fn transitive_closure() {
        let mut e = Engine::new(EvalConfig::default());
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let ids: Vec<TermId> = (0..5)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(edge, vec![v(0), v(1)]),
                BodyLit::Pos(path, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        let stats = e.run().unwrap();
        // 4+3+2+1 = 10 paths.
        assert_eq!(e.tuples(path).count(), 10);
        assert!(e.holds(path, &[ids[0], ids[4]]));
        assert!(!e.holds(path, &[ids[4], ids[0]]));
        assert!(stats.iterations >= 3, "chain of length 4 needs rounds");
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let build = |strategy| {
            let mut e = Engine::new(EvalConfig {
                strategy,
                ..EvalConfig::default()
            });
            let edge = e.pred("edge", 2);
            let path = e.pred("path", 2);
            let ids: Vec<TermId> = (0..6)
                .map(|i| e.store_mut().atom(&format!("n{i}")))
                .collect();
            for i in 0..5 {
                e.fact(edge, vec![ids[i], ids[i + 1]]).unwrap();
            }
            e.fact(edge, vec![ids[5], ids[0]]).unwrap(); // cycle
            e.rule(plain_rule(
                path,
                vec![v(0), v(1)],
                vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
                2,
            ))
            .unwrap();
            e.rule(plain_rule(
                path,
                vec![v(0), v(2)],
                vec![
                    BodyLit::Pos(edge, vec![v(0), v(1)]),
                    BodyLit::Pos(path, vec![v(1), v(2)]),
                ],
                3,
            ))
            .unwrap();
            e.run().unwrap();
            e.extension(path)
        };
        let naive = build(crate::config::FixpointStrategy::Naive);
        let semi = build(crate::config::FixpointStrategy::SemiNaive);
        assert_eq!(naive, semi);
        assert_eq!(naive.len(), 36, "complete digraph on the 6-cycle");
    }

    #[test]
    fn example_1_disj_via_quantifiers() {
        // disj(X, Y) :- pair(X, Y), (∀u∈X)(∀w∈Y) u != w.
        let mut e = Engine::new(EvalConfig::default());
        let pair = e.pred("pair", 2);
        let disj = e.pred("disj", 2);
        let st = e.store_mut();
        let a = st.atom("a");
        let b = st.atom("b");
        let c = st.atom("c");
        let s_ab = st.set(vec![a, b]);
        let s_c = st.set(vec![c]);
        let s_bc = st.set(vec![b, c]);
        let s_empty = st.empty_set();
        e.fact(pair, vec![s_ab, s_c]).unwrap();
        e.fact(pair, vec![s_ab, s_bc]).unwrap();
        e.fact(pair, vec![s_empty, s_bc]).unwrap();
        e.rule(Rule {
            head: disj,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(pair, vec![v(0), v(1)])],
            quant: Some(QuantGroup {
                binders: vec![(VarId(2), v(0)), (VarId(3), v(1))],
                inner: vec![BodyLit::Builtin(Builtin::Ne, vec![v(2), v(3)])],
            }),
            num_vars: 4,
            var_names: vec!["X".into(), "Y".into(), "U".into(), "W".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(disj, &[s_ab, s_c]));
        assert!(!e.holds(disj, &[s_ab, s_bc]), "{{a,b}} ∩ {{b,c}} ≠ ∅");
        assert!(e.holds(disj, &[s_empty, s_bc]), "∅ is disjoint from all");
    }

    #[test]
    fn example_4_unnest() {
        // s(X, Y) :- r(X, Ys), Y in Ys.
        let mut e = Engine::new(EvalConfig::default());
        let r = e.pred("r", 2);
        let s = e.pred("s", 2);
        let st = e.store_mut();
        let x1 = st.atom("x1");
        let p = st.atom("p");
        let q = st.atom("q");
        let set_pq = st.set(vec![p, q]);
        e.fact(r, vec![x1, set_pq]).unwrap();
        e.rule(Rule {
            head: s,
            head_args: vec![v(0), v(2)],
            group: None,
            outer: vec![
                BodyLit::Pos(r, vec![v(0), v(1)]),
                BodyLit::Builtin(Builtin::In, vec![v(2), v(1)]),
            ],
            quant: None,
            num_vars: 3,
            var_names: vec!["X".into(), "Ys".into(), "Y".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(s, &[x1, p]));
        assert!(e.holds(s, &[x1, q]));
        assert_eq!(e.tuples(s).count(), 2);
    }

    #[test]
    fn stratified_negation() {
        // unreachable(X) :- node(X), not reach(X).
        let mut e = Engine::new(EvalConfig::default());
        let node = e.pred("node", 1);
        let edge = e.pred("edge", 2);
        let reach = e.pred("reach", 1);
        let unreach = e.pred("unreachable", 1);
        let ids: Vec<TermId> = (0..4)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for &n in &ids {
            e.fact(node, vec![n]).unwrap();
        }
        e.fact(edge, vec![ids[0], ids[1]]).unwrap();
        e.fact(reach, vec![ids[0]]).unwrap();
        e.rule(plain_rule(
            reach,
            vec![v(1)],
            vec![
                BodyLit::Pos(reach, vec![v(0)]),
                BodyLit::Pos(edge, vec![v(0), v(1)]),
            ],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            unreach,
            vec![v(0)],
            vec![
                BodyLit::Pos(node, vec![v(0)]),
                BodyLit::Neg(reach, vec![v(0)]),
            ],
            1,
        ))
        .unwrap();
        e.run().unwrap();
        assert!(!e.holds(unreach, &[ids[0]]));
        assert!(!e.holds(unreach, &[ids[1]]));
        assert!(e.holds(unreach, &[ids[2]]));
        assert!(e.holds(unreach, &[ids[3]]));
    }

    #[test]
    fn ldl_grouping_head() {
        // owns(P, <C>) :- car(P, C).
        let mut e = Engine::new(EvalConfig::default());
        let car = e.pred("car", 2);
        let owns = e.pred("owns", 2);
        let st = e.store_mut();
        let alice = st.atom("alice");
        let bob = st.atom("bob");
        let c1 = st.atom("c1");
        let c2 = st.atom("c2");
        let c3 = st.atom("c3");
        e.fact(car, vec![alice, c1]).unwrap();
        e.fact(car, vec![alice, c2]).unwrap();
        e.fact(car, vec![bob, c3]).unwrap();
        e.rule(Rule {
            head: owns,
            head_args: vec![v(0), v(1)],
            group: Some(GroupSpec {
                arg_pos: 1,
                var: VarId(1),
            }),
            outer: vec![BodyLit::Pos(car, vec![v(0), v(1)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["P".into(), "C".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        let set_alice = e.store_mut().set(vec![c1, c2]);
        let set_bob = e.store_mut().set(vec![c3]);
        assert!(e.holds(owns, &[alice, set_alice]));
        assert!(e.holds(owns, &[bob, set_bob]));
        assert_eq!(e.tuples(owns).count(), 2);
    }

    #[test]
    fn example_5_sum_via_disjoint_union() {
        // sum({}, 0).
        // sum(X, N) :- num_set(X), X = {N}.
        // sum(Z, K) :- num_set(Z), disj_union(X, Y, Z), X != {},
        //              Y != {}, sum(X, M), sum(Y, N), add(M, N, K).
        // (num_set bounds the recursion to subsets that occur; here we
        //  drive it with every subset decomposition instead, exactly as
        //  the paper's recursion does, seeded by sum({n}, n).)
        let mut e = Engine::new(EvalConfig::default());
        let num_set = e.pred("num_set", 1);
        let sum = e.pred("sum", 2);
        let st = e.store_mut();
        let nums: Vec<TermId> = [3i64, 5, 9].iter().map(|&n| st.int(n)).collect();
        let zero = st.int(0);
        let whole = st.set(nums.clone());
        let empty = st.empty_set();
        e.fact(num_set, vec![whole]).unwrap();
        // Close num_set under disjoint decomposition so the recursion
        // has its subsets available.
        e.rule(Rule {
            head: num_set,
            head_args: vec![v(1)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::DisjUnion, vec![v(1), v(2), v(0)]),
            ],
            quant: None,
            num_vars: 3,
            var_names: vec!["Z".into(), "X".into(), "Y".into()],
            var_sorts: vec![],
        })
        .unwrap();
        // sum({}, 0).
        e.rule(Rule {
            head: sum,
            head_args: vec![Pattern::Ground(empty), Pattern::Ground(zero)],
            group: None,
            outer: vec![],
            quant: None,
            num_vars: 0,
            var_names: vec![],
            var_sorts: vec![],
        })
        .unwrap();
        // sum(X, N) :- num_set(X), X = {N}.
        e.rule(Rule {
            head: sum,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::Eq, vec![v(0), Pattern::Set(Box::new([v(1)]))]),
            ],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "N".into()],
            var_sorts: vec![],
        })
        .unwrap();
        // The recursive clause.
        e.rule(Rule {
            head: sum,
            head_args: vec![v(0), v(6)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::DisjUnion, vec![v(1), v(2), v(0)]),
                BodyLit::Pos(sum, vec![v(1), v(4)]),
                BodyLit::Pos(sum, vec![v(2), v(5)]),
                BodyLit::Builtin(Builtin::Add, vec![v(4), v(5), v(6)]),
            ],
            quant: None,
            num_vars: 7,
            var_names: (0..7).map(|i| format!("V{i}")).collect(),
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        let seventeen = e.store_mut().int(17);
        assert!(e.holds(sum, &[whole, seventeen]));
        // Sums are functional: one value per set.
        let whole_sums: Vec<_> = e
            .tuples(sum)
            .filter(|t| t[0] == whole)
            .map(|t| t[1])
            .collect();
        assert_eq!(whole_sums, vec![seventeen]);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut e = Engine::new(EvalConfig::default());
        let p = e.pred("p", 2);
        let a = e.store_mut().atom("a");
        let err = e.fact(p, vec![a]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
    }

    fn tc_engine() -> (Engine, PredId, PredId, Vec<TermId>) {
        let mut e = Engine::new(EvalConfig::default());
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let ids: Vec<TermId> = (0..5)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(edge, vec![v(0), v(1)]),
                BodyLit::Pos(path, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        (e, edge, path, ids)
    }

    #[test]
    fn second_run_is_a_cheap_noop() {
        // Regression: `run()` used to recompute (and with stale state,
        // corrupt) the model when called twice. Now an unchanged,
        // materialized session reports zero work and an identical
        // model.
        let (mut e, _, path, _) = tc_engine();
        e.run().unwrap();
        assert_eq!(e.state(), crate::engine::EngineState::Materialized);
        let before = e.extension(path);
        let cumulative = e.cumulative_stats();
        let stats = e.run().unwrap();
        assert_eq!(stats, EvalStats::default(), "no work on a reached fixpoint");
        assert_eq!(e.extension(path), before);
        assert_eq!(
            e.cumulative_stats(),
            cumulative,
            "the no-op run must not even touch the counters"
        );
    }

    #[test]
    fn incremental_update_continues_from_the_retained_model() {
        let (mut e, edge, path, ids) = tc_engine();
        e.run().unwrap();
        // New edge n4 → n0 closes the ring: every ordered pair becomes
        // a path.
        e.fact(edge, vec![ids[4], ids[0]]).unwrap();
        assert_eq!(e.state(), crate::engine::EngineState::Dirty);
        let stats = e.update().unwrap();
        assert_eq!(stats.incremental_runs, 1);
        assert_eq!(stats.delta_seed_facts, 1);
        assert_eq!(e.rows(path).len(), 25, "closure of the 5-cycle");
        // Only the new tuples were derived: 1 seeded edge + 15 paths.
        assert_eq!(stats.facts_derived, 16);
        // And the model equals a from-scratch evaluation.
        let (mut fresh, fedge, fpath, fids) = tc_engine();
        fresh.fact(fedge, vec![fids[4], fids[0]]).unwrap();
        fresh.run().unwrap();
        assert_eq!(e.extension(path), fresh.extension(fpath));
        let inc: Vec<Vec<TermId>> = e.rows(path).map(<[_]>::to_vec).collect();
        let mut inc = inc;
        inc.sort();
        let mut batch: Vec<Vec<TermId>> = fresh.rows(fpath).map(<[_]>::to_vec).collect();
        batch.sort();
        assert_eq!(inc, batch, "bit-identical interned tuples");
    }

    #[test]
    fn config_change_after_run_voids_the_noop_shortcircuit() {
        let (mut e, _, path, _) = tc_engine();
        e.run().unwrap();
        e.config_mut().strategy = crate::config::FixpointStrategy::Naive;
        let stats = e.run().unwrap();
        assert!(
            stats.iterations > 0,
            "a changed config must rebuild, not return the stale model"
        );
        assert_eq!(e.rows(path).len(), 10);
        // Unchanged config short-circuits again.
        assert_eq!(e.run().unwrap(), EvalStats::default());
    }

    #[test]
    fn duplicate_fact_after_run_stays_clean() {
        let (mut e, edge, _, ids) = tc_engine();
        e.run().unwrap();
        // Re-adding a known fact queues nothing.
        e.fact(edge, vec![ids[0], ids[1]]).unwrap();
        assert_eq!(e.state(), crate::engine::EngineState::Materialized);
        assert_eq!(e.update().unwrap(), EvalStats::default());
    }

    #[test]
    fn update_with_negation_falls_back_to_a_sound_recompute() {
        // unreachable(X) :- node(X), not reach(X): a monotone
        // continuation cannot retract `unreachable(n2)` when a new edge
        // makes n2 reachable — the old engine silently kept it. The
        // session detects the non-monotone stratum and recomputes.
        let mut e = Engine::new(EvalConfig::default());
        let node = e.pred("node", 1);
        let edge = e.pred("edge", 2);
        let reach = e.pred("reach", 1);
        let unreach = e.pred("unreachable", 1);
        let ids: Vec<TermId> = (0..3)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for &n in &ids {
            e.fact(node, vec![n]).unwrap();
        }
        e.fact(edge, vec![ids[0], ids[1]]).unwrap();
        e.fact(reach, vec![ids[0]]).unwrap();
        e.rule(plain_rule(
            reach,
            vec![v(1)],
            vec![
                BodyLit::Pos(reach, vec![v(0)]),
                BodyLit::Pos(edge, vec![v(0), v(1)]),
            ],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            unreach,
            vec![v(0)],
            vec![
                BodyLit::Pos(node, vec![v(0)]),
                BodyLit::Neg(reach, vec![v(0)]),
            ],
            1,
        ))
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(unreach, &[ids[2]]));
        e.fact(edge, vec![ids[1], ids[2]]).unwrap();
        let stats = e.run().unwrap();
        assert_eq!(stats.incremental_runs, 0, "negation forces the fallback");
        assert!(e.holds(reach, &[ids[2]]));
        assert!(!e.holds(unreach, &[ids[2]]), "stale tuple retracted");
    }

    #[test]
    fn update_not_reading_changed_pred_is_trivial() {
        let (mut e, _, path, _) = tc_engine();
        e.run().unwrap();
        let before = e.rows(path).len();
        // `isolated` feeds no rule: the model is already the least
        // model of the enlarged database.
        let iso = e.pred("isolated", 1);
        let x = e.store_mut().atom("x");
        e.fact(iso, vec![x]).unwrap();
        let stats = e.update().unwrap();
        assert_eq!(stats.incremental_runs, 1);
        assert_eq!(stats.iterations, 0, "no stratum re-ran");
        assert!(e.holds(iso, &[x]));
        assert_eq!(e.rows(path).len(), before);
    }

    #[test]
    fn reset_facts_keeps_rules_and_compiled_plans() {
        let (mut e, edge, path, _) = tc_engine();
        e.run().unwrap();
        e.reset_facts();
        assert_eq!(e.state(), crate::engine::EngineState::Prepared);
        assert_eq!(e.rows(path).len(), 0);
        // Fresh facts evaluate under the cached plans.
        let (a, b) = {
            let st = e.store_mut();
            (st.atom("a"), st.atom("b"))
        };
        e.fact(edge, vec![a, b]).unwrap();
        e.run().unwrap();
        assert!(e.holds(path, &[a, b]));
        assert_eq!(e.rows(path).len(), 1);
    }

    #[test]
    fn rows_is_exact_size_and_matches_tuples() {
        let (mut e, _, path, _) = tc_engine();
        e.run().unwrap();
        let rows = e.rows(path);
        assert_eq!(rows.len(), 10);
        let collected: Vec<&[TermId]> = rows.collect();
        let via_tuples: Vec<&[TermId]> = e.tuples(path).collect();
        assert_eq!(collected, via_tuples);
    }

    #[test]
    fn grouping_update_falls_back_and_regroups() {
        // owns(P, <C>) :- car(P, C): grouping is non-monotone — adding
        // a car must *replace* alice's set, which only the fallback
        // recompute can do.
        let mut e = Engine::new(EvalConfig::default());
        let car = e.pred("car", 2);
        let owns = e.pred("owns", 2);
        let (alice, c1, c2) = {
            let st = e.store_mut();
            (st.atom("alice"), st.atom("c1"), st.atom("c2"))
        };
        e.fact(car, vec![alice, c1]).unwrap();
        e.rule(Rule {
            head: owns,
            head_args: vec![v(0), v(1)],
            group: Some(crate::rule::GroupSpec {
                arg_pos: 1,
                var: VarId(1),
            }),
            outer: vec![BodyLit::Pos(car, vec![v(0), v(1)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["P".into(), "C".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        e.fact(car, vec![alice, c2]).unwrap();
        let stats = e.update().unwrap();
        assert_eq!(stats.incremental_runs, 0, "grouping forces the fallback");
        let both = e.store_mut().set(vec![c1, c2]);
        let only_c1 = e.store_mut().set(vec![c1]);
        assert!(e.holds(owns, &[alice, both]));
        assert!(!e.holds(owns, &[alice, only_c1]), "old group retracted");
    }

    #[test]
    fn powerset_universe_materializes_on_run() {
        let mut e = Engine::new(EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
            ..EvalConfig::default()
        });
        let item = e.pred("item", 1);
        let a = e.store_mut().atom("a");
        let b = e.store_mut().atom("b");
        e.fact(item, vec![a]).unwrap();
        e.fact(item, vec![b]).unwrap();
        e.run().unwrap();
        // ∅, {a}, {b}, {a,b} all interned.
        assert_eq!(e.store().set_ids().len(), 4);
    }
}
