//! The public evaluation session: register predicates, load facts and
//! rules, run to fixpoint, query results — and keep the result
//! *maintainable*: facts added after a completed fixpoint accumulate
//! as pending deltas, and [`Engine::update`] seeds the semi-naive
//! drivers with them, re-running only from the lowest affected stratum
//! onward over the retained relations instead of recomputing the model
//! from scratch.
//!
//! Demand-driven queries get the same treatment: each cached magic-set
//! plan keeps its adorned/magic relations *retained* across queries
//! ([`EvalConfig::demand_retention`]), so a repeated point query is a
//! pure read, a new constant for a known adornment seeds one magic
//! fact and continues semi-naive from the retained fixpoint, and newly
//! arrived EDB facts drive the same continuation — repeated queries
//! cost O(new demand), not O(reach). The plan cache itself is LRU-
//! bounded ([`EvalConfig::demand_plan_cache`]); evicting a plan
//! reclaims its relation slots. Conjunctive goals join in through a
//! goal-shape cache ([`crate::magic::lift_goal`]): rules that differ
//! only in ground arguments share one plan, the constants arriving as
//! magic seeds.

use lps_term::{setops, FxHashMap, FxHashSet, TermId, TermStore, Value};

use crate::config::{EvalConfig, EvalStats, SetUniverse};
use crate::error::EngineError;
use crate::eval::StepProfiler;
use crate::fixpoint::{run_stratum, StratumStart};
use crate::magic::{self, MagicOutcome};
use crate::parallel::ParExec;
use crate::plan::{compile_program, compile_rule, CompiledProgram, Step};
use crate::pred::{PredId, PredRegistry};
use crate::relation::{ColMask, Relation};
use crate::rule::{BodyLit, Rule};
use crate::stats::{Stats, StatsCache};

/// Lifecycle of an [`Engine`] session.
///
/// ```text
/// Unprepared ──prepare──▶ Prepared ──run──▶ Materialized ──fact──▶ Dirty
///      ▲                      ▲                  │  ▲                │
///      └───────── rule ───────┴── reset_facts ───┘  └──── update ────┘
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineState {
    /// Rules changed since the last prepare: the next run restratifies
    /// and recompiles.
    Unprepared,
    /// Stratification, compiled rules, and index requests are cached;
    /// no model is materialized yet (fresh prepare, or after
    /// [`Engine::reset_facts`]).
    Prepared,
    /// A least model is materialized and current.
    Materialized,
    /// A model is materialized, but facts added since then wait in the
    /// pending deltas; [`Engine::update`] reconciles incrementally.
    Dirty,
}

/// Cached prepare-phase artifacts: everything derived from the rule
/// set alone. Reused across batch runs and incremental updates;
/// invalidated only when a rule is added (or the universe policy
/// changes, which affects compilation).
#[derive(Debug)]
struct Prepared {
    /// The loaded rule set, stratified and compiled.
    program: CompiledProgram,
    /// The universe policy the rules were compiled under.
    policy: SetUniverse,
    /// Whether the rules were compiled with cost-based join ordering
    /// ([`EvalConfig::cost_planner`]); a flip recompiles.
    cost_planner: bool,
}

/// Key of the demand plan cache: the queried predicate (or the
/// dedicated shape predicate of a conjunctive goal) and the bound-
/// position mask.
type PlanKey = (PredId, ColMask);

/// One entry of the per-adornment demand plan cache.
#[derive(Debug)]
enum QueryEntry {
    /// The magic-rewritten, compiled program for this query pattern.
    Demand(Box<QueryPlan>),
    /// The rewrite is inapplicable (non-monotone construct reachable
    /// from the query) or unplannable: queries with this pattern
    /// evaluate by full materialization.
    Fallback,
}

/// A compiled demand plan: the specialized program for one
/// `(predicate, adornment)` query pattern, together with the state of
/// its *retained* demand space (the adorned/magic relations kept alive
/// across queries under [`EvalConfig::demand_retention`]).
#[derive(Debug)]
struct QueryPlan {
    program: CompiledProgram,
    /// The magic predicate seeded with the query's bound arguments
    /// (`None` for the all-free adornment).
    magic_seed: Option<PredId>,
    /// The adorned query predicate holding the answers.
    answer: PredId,
    /// Adorned + magic predicates — the relation space a cold run
    /// clears before deriving (and a warm continuation retains).
    space: Vec<PredId>,
    /// The magic subset of `space` (demand-seed statistics).
    magic_preds: Vec<PredId>,
    /// `(pred, adornment)` pairs the rewrite compiled.
    adornments: usize,
    /// Every predicate whose `full` relation the retained fixpoint
    /// depends on: the rewrite's own space plus every original
    /// predicate its rules read (EDB bridges, base literals).
    tracked: Vec<PredId>,
    /// Whether `space` currently holds a completed fixpoint for the
    /// seeds accumulated in the magic relations. Goes false whenever
    /// anything outside a plan-driven run touches those relations — a
    /// batch rebuild, another plan's cold run or eviction clearing a
    /// shared sub-space, a facts reset.
    live: bool,
    /// Per-[`QueryPlan::tracked`] `full`-relation length at the last
    /// completed fixpoint: rows past the snapshot are the next
    /// continuation's seed set.
    base_lens: Vec<u32>,
    /// Interned-set count at the last completed fixpoint (baseline for
    /// universe-growth triggers, mirroring the incremental update
    /// path).
    sets_base: usize,
}

impl QueryPlan {
    /// The retained-fixpoint baseline length for `p` (0 for untracked
    /// predicates — only reachable when a plan was never live).
    fn base_len(&self, p: PredId) -> u32 {
        self.tracked
            .iter()
            .position(|&q| q == p)
            .map_or(0, |i| self.base_lens[i])
    }
}

/// How a query was answered. See [`Engine::query`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryPath {
    /// Demand-driven evaluation: the magic-set-rewritten program
    /// derived only tuples the query's bindings can reach.
    Demand,
    /// Answered from the maintained materialized model (reconciled
    /// incrementally first if facts were pending).
    Materialized,
    /// The demand rewrite was inapplicable; the engine fell back to a
    /// sound full materialization and filtered.
    Fallback,
}

/// Answers of an [`Engine::query`] or [`Engine::query_rule`] call.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The matching tuples, as one flat owned row set.
    pub rows: RowSet,
    /// Which pipeline produced them.
    pub path: QueryPath,
    /// Work this call performed (zeroed by pure model reads).
    pub stats: EvalStats,
}

/// Owned answer rows of one query, stored flat (arity-strided): one
/// allocation for the whole answer set instead of one `Vec` per row,
/// so reading a thousand-row answer out of a retained demand space
/// costs a memcpy, not a thousand mallocs — the query-path counterpart
/// of the arena-backed [`Relation`] storage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowSet {
    arity: usize,
    count: usize,
    flat: Vec<TermId>,
}

impl RowSet {
    /// Empty row set for rows of `arity` columns.
    pub fn new(arity: usize) -> Self {
        RowSet {
            arity,
            count: 0,
            flat: Vec::new(),
        }
    }

    /// Append one row (length must equal the arity; zero-arity rows —
    /// the "yes" answers of ground goals — are counted without
    /// storage).
    pub fn push(&mut self, row: &[TermId]) {
        debug_assert_eq!(row.len(), self.arity);
        self.flat.extend_from_slice(row);
        self.count += 1;
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Columns per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Row at `i`.
    pub fn row(&self, i: usize) -> &[TermId] {
        debug_assert!(i < self.count);
        &self.flat[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate over the rows.
    pub fn iter(&self) -> RowSetIter<'_> {
        RowSetIter { set: self, next: 0 }
    }

    /// The rows as owned per-row vectors (convenient for sorting and
    /// comparing in tests; the flat form is the cheap one).
    pub fn to_vecs(&self) -> Vec<Vec<TermId>> {
        self.iter().map(<[_]>::to_vec).collect()
    }

    /// [`RowSet::to_vecs`], sorted.
    pub fn sorted(&self) -> Vec<Vec<TermId>> {
        let mut rows = self.to_vecs();
        rows.sort();
        rows
    }
}

impl std::ops::Index<usize> for RowSet {
    type Output = [TermId];

    fn index(&self, i: usize) -> &[TermId] {
        self.row(i)
    }
}

impl PartialEq<Vec<Vec<TermId>>> for RowSet {
    fn eq(&self, other: &Vec<Vec<TermId>>) -> bool {
        self.count == other.len() && self.iter().zip(other).all(|(a, b)| a == b.as_slice())
    }
}

impl<'a> IntoIterator for &'a RowSet {
    type Item = &'a [TermId];
    type IntoIter = RowSetIter<'a>;

    fn into_iter(self) -> RowSetIter<'a> {
        self.iter()
    }
}

/// Borrowing row iterator of a [`RowSet`].
#[derive(Clone, Debug)]
pub struct RowSetIter<'a> {
    set: &'a RowSet,
    next: usize,
}

impl<'a> Iterator for RowSetIter<'a> {
    type Item = &'a [TermId];

    fn next(&mut self) -> Option<&'a [TermId]> {
        if self.next < self.set.count {
            let row = self.set.row(self.next);
            self.next += 1;
            Some(row)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.set.count - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RowSetIter<'_> {}

/// An evaluation session over a program's rules and facts.
///
/// ```
/// use lps_engine::{Engine, EvalConfig};
/// use lps_engine::pattern::{Pattern, VarId};
/// use lps_engine::rule::{BodyLit, Rule};
///
/// let mut engine = Engine::new(EvalConfig::default());
/// let edge = engine.pred("edge", 2);
/// let path = engine.pred("path", 2);
/// let (a, b, c) = {
///     let st = engine.store_mut();
///     (st.atom("a"), st.atom("b"), st.atom("c"))
/// };
/// engine.fact(edge, vec![a, b]).unwrap();
/// engine.fact(edge, vec![b, c]).unwrap();
/// let v = |i| Pattern::Var(VarId(i));
/// // path(X, Y) :- edge(X, Y).
/// engine.rule(Rule {
///     head: path,
///     head_args: vec![v(0), v(1)],
///     group: None,
///     outer: vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
///     quant: None,
///     num_vars: 2,
///     var_names: vec!["X".into(), "Y".into()],
///     var_sorts: vec![],
/// }).unwrap();
/// // path(X, Z) :- edge(X, Y), path(Y, Z).
/// engine.rule(Rule {
///     head: path,
///     head_args: vec![v(0), v(2)],
///     group: None,
///     outer: vec![
///         BodyLit::Pos(edge, vec![v(0), v(1)]),
///         BodyLit::Pos(path, vec![v(1), v(2)]),
///     ],
///     quant: None,
///     num_vars: 3,
///     var_names: vec!["X".into(), "Y".into(), "Z".into()],
///     var_sorts: vec![],
/// }).unwrap();
/// engine.run().unwrap();
/// assert!(engine.holds(path, &[a, c]));
/// assert_eq!(engine.tuples(path).count(), 3);
/// // The session stays maintainable: a fact added after the fixpoint
/// // queues as a pending delta, and `update` re-reaches the least
/// // model incrementally instead of recomputing it.
/// let d = engine.store_mut().atom("d");
/// engine.fact(edge, vec![c, d]).unwrap();
/// let stats = engine.update().unwrap();
/// assert_eq!(stats.incremental_runs, 1);
/// assert!(engine.holds(path, &[a, d]));
/// assert_eq!(engine.rows(path).len(), 6);
/// ```
#[derive(Debug)]
pub struct Engine {
    store: TermStore,
    preds: PredRegistry,
    /// Extensional facts loaded via [`Engine::fact`] — the session's
    /// EDB, kept apart from derived tuples so batch runs (and the
    /// non-monotone fallback) can rebuild the model from scratch.
    edb: Vec<Relation>,
    /// The materialized model: EDB plus derived tuples.
    full: Vec<Relation>,
    /// Semi-naive working deltas.
    delta: Vec<Relation>,
    /// Facts added after a completed fixpoint, awaiting
    /// [`Engine::update`].
    pending: Vec<Relation>,
    /// Per-predicate count of EDB rows already mirrored into `full` by
    /// the demand pipeline's [`Engine::sync_edb_to_full`]; reset with
    /// the facts.
    edb_synced: Vec<u32>,
    rules: Vec<Rule>,
    config: EvalConfig,
    state: EngineState,
    prepared: Option<Prepared>,
    /// Per-adornment demand plans: the magic-rewritten, compiled
    /// program for each `(pred, bound-mask)` query pattern seen
    /// (conjunctive goals enter under their dedicated shape
    /// predicate). Bounded by [`EvalConfig::demand_plan_cache`];
    /// invalidated with `prepared` on rule changes, and on universe
    /// policy changes.
    query_plans: FxHashMap<PlanKey, QueryEntry>,
    /// LRU order over `query_plans` keys, least-recently-used first.
    query_lru: Vec<PlanKey>,
    /// Conjunctive goal shapes ([`magic::goal_shape_key`]) → the
    /// dedicated `query#shape#…` head predicate registered for the
    /// shape. An entry lives exactly as long as the shape's cached
    /// plan: evicting the plan drops the entry and releases the shape
    /// predicate's registry slot ([`PredRegistry::release`]) for reuse,
    /// so neither this map nor the registry grows with the number of
    /// distinct shapes ever queried — only with the live plan cache.
    conj_shapes: FxHashMap<String, PredId>,
    /// The universe policy the cached query plans were compiled under.
    query_policy: SetUniverse,
    /// The [`EvalConfig::cost_planner`] flag the cached query plans
    /// were compiled under; a flip drops and recompiles them (their
    /// join orders and SIPS choices are planner-dependent).
    query_planner: bool,
    /// Lazily refreshed per-predicate cardinality snapshot feeding the
    /// cost-based planner (E16): invalidated (cheaply) whenever facts
    /// move, re-read from the relations at the next compile that needs
    /// it.
    stats_cache: StatsCache,
    /// Planner counters (reorders, estimated rows, stats refreshes)
    /// accumulated by compiles since the last pass epilogue; flushed
    /// into that pass's [`EvalStats`].
    planner_pending: EvalStats,
    /// Shadow model for non-monotone (fallback) queries: a full
    /// materialization kept *beside* the live relations, so answering
    /// a query whose rewrite is obstructed does not rebuild `full`,
    /// does not flip the session to `Materialized`, and — the point —
    /// does not put sibling plans' retained demand spaces back to
    /// cold. Rebuilt lazily; [`Engine::fallback_config`] tracks
    /// staleness.
    fallback_full: Vec<Relation>,
    /// Semi-naive working deltas of the shadow model.
    fallback_delta: Vec<Relation>,
    /// The configuration the shadow model was materialized under;
    /// `None` = stale (facts or rules changed since, or never built).
    fallback_config: Option<EvalConfig>,
    /// Interned-set count at the last completed materialization (the
    /// baseline for universe-growth triggers in incremental updates).
    sets_at_materialize: usize,
    /// The configuration the model was materialized under: a
    /// [`Engine::config_mut`] change after that voids the
    /// `Materialized`/`Dirty` short-circuits and forces a rebuild.
    config_at_materialize: EvalConfig,
    last_stats: EvalStats,
    cumulative_stats: EvalStats,
    /// Per-literal profile of the last query run with
    /// [`EvalConfig::profile`] on; `None` when the last query was not
    /// profiled (or fell back to the shadow model, which runs no
    /// demand plan to attribute).
    last_profile: Option<QueryProfile>,
    /// The parallel join executor (worker pool + per-worker arenas,
    /// E15). Lives on the session so pool threads and arena capacity
    /// persist across runs, updates, and demand continuations; rebuilt
    /// by [`Engine::sync_exec`] when [`EvalConfig::threads`] changes.
    exec: ParExec,
}

/// Estimated-vs-actual accounting for one positive body literal of a
/// profiled query's demand plan, in the planner's chosen join order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiteralProfile {
    /// Predicate the literal probes (adorned/magic relations keep
    /// their rewrite names, so the demand structure stays visible).
    pub pred: String,
    /// The planner's row estimate for this probe (0 when compiled
    /// without statistics).
    pub estimated_rows: u64,
    /// Index probes (or scans) actually performed across every round
    /// of the run.
    pub probes: u64,
    /// Rows those probes actually yielded.
    pub actual_rows: u64,
}

/// Per-rule slice of a [`QueryProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleProfile {
    /// Head predicate of the (rewritten) rule.
    pub head: String,
    /// Positive literals in chosen join order.
    pub literals: Vec<LiteralProfile>,
}

/// What [`EvalConfig::profile`] buys: the chosen demand plan's
/// estimated rows per body literal next to what evaluation actually
/// probed — the planner's predictions held up against ground truth
/// (`:profile` in `lpsi`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// One entry per rewritten rule that has positive body literals.
    pub rules: Vec<RuleProfile>,
}

/// Hard cap on the atom-domain size for the `ActiveSubsets` powerset
/// materialization (2^20 sets is already a million).
const MAX_POWERSET_ATOMS: usize = 20;

impl Engine {
    /// New session with the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        Engine {
            store: TermStore::new(),
            preds: PredRegistry::new(),
            edb: Vec::new(),
            full: Vec::new(),
            delta: Vec::new(),
            pending: Vec::new(),
            edb_synced: Vec::new(),
            rules: Vec::new(),
            config,
            state: EngineState::Unprepared,
            prepared: None,
            query_plans: FxHashMap::default(),
            query_lru: Vec::new(),
            conj_shapes: FxHashMap::default(),
            query_policy: config.set_universe,
            query_planner: config.cost_planner,
            stats_cache: StatsCache::default(),
            planner_pending: EvalStats::default(),
            fallback_full: Vec::new(),
            fallback_delta: Vec::new(),
            fallback_config: None,
            sets_at_materialize: 0,
            config_at_materialize: config,
            last_stats: EvalStats::default(),
            cumulative_stats: EvalStats::default(),
            last_profile: None,
            exec: ParExec::new(config.threads),
        }
    }

    /// Where the session is in its lifecycle.
    pub fn state(&self) -> EngineState {
        self.state
    }

    /// The term store (for interning constants and reading results).
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Mutable access to the term store.
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Mutable access to the configuration (before calling
    /// [`Engine::run`]).
    pub fn config_mut(&mut self) -> &mut EvalConfig {
        &mut self.config
    }

    /// Set the worker-thread count for subsequent evaluation (`0` =
    /// auto, `1` = sequential; see [`EvalConfig::threads`]). The pool
    /// is (re)built lazily on the next run.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// The resolved worker count evaluation currently uses (≥ 1; auto
    /// already resolved to the core count).
    pub fn threads(&self) -> usize {
        if self.exec.requested() == self.config.threads {
            self.exec.threads()
        } else {
            ParExec::new(self.config.threads).threads()
        }
    }

    /// Rebuild the parallel executor if [`EvalConfig::threads`] changed
    /// since it was built (via [`Engine::set_threads`] or
    /// [`Engine::config_mut`]). No-op when unchanged, so pool threads
    /// and arena capacity persist across evaluation passes.
    fn sync_exec(&mut self) {
        if self.exec.requested() != self.config.threads {
            self.exec = ParExec::new(self.config.threads);
        }
    }

    /// Refresh the planner-statistics snapshot if the cost planner is
    /// on and facts moved since the last refresh. Returns whether the
    /// snapshot may be used (`false` = planner off, textual ordering).
    /// Actual refresh passes are counted into the next pass's
    /// [`EvalStats::stats_refreshes`].
    fn refresh_planner_stats(&mut self) -> bool {
        if !self.config.cost_planner {
            return false;
        }
        let (_, refreshed) = self.stats_cache.refreshed(&self.edb, &self.full);
        if refreshed {
            self.planner_pending.stats_refreshes += 1;
        }
        true
    }

    /// A fresh planner-statistics snapshot over the session's current
    /// relations, refreshing the lazy cache if facts moved since the
    /// last refresh. Available regardless of
    /// [`EvalConfig::cost_planner`], so the estimates can be inspected
    /// (`:planner stats` in `lpsi`) even with planning off.
    pub fn planner_stats(&mut self) -> &Stats {
        let (stats, refreshed) = self.stats_cache.refreshed(&self.edb, &self.full);
        if refreshed {
            self.planner_pending.stats_refreshes += 1;
        }
        stats
    }

    /// Drain the planner counters accumulated by compiles since the
    /// last pass epilogue, to be absorbed into that pass's stats.
    fn take_planner_counters(&mut self) -> EvalStats {
        std::mem::take(&mut self.planner_pending)
    }

    /// Fold a compiled program's planner accounting into the pending
    /// counters.
    fn account_compile(&mut self, reorders: usize, estimated_rows: usize) {
        self.planner_pending.reorders_applied += reorders;
        self.planner_pending.estimated_rows = self
            .planner_pending
            .estimated_rows
            .saturating_add(estimated_rows);
    }

    /// Statistics from the most recent evaluation pass (batch run or
    /// incremental update) that performed work.
    pub fn stats(&self) -> EvalStats {
        self.last_stats
    }

    /// Statistics accumulated over the whole session: the initial
    /// materialization plus every incremental update since.
    pub fn cumulative_stats(&self) -> EvalStats {
        self.cumulative_stats
    }

    /// Zero both the last-pass and the session-cumulative statistics
    /// (`:stats reset` in `lpsi`). Max-merged cumulative ratios —
    /// `misestimate_ratio`, `worker_imbalance` — restart from zero
    /// instead of pinning their all-time high forever.
    pub fn reset_stats(&mut self) {
        self.last_stats = EvalStats::default();
        self.cumulative_stats = EvalStats::default();
    }

    /// The per-literal profile of the most recent query run with
    /// [`EvalConfig::profile`] on; `None` if the last query was not
    /// profiled or took the fallback path (no demand plan to
    /// attribute).
    pub fn last_profile(&self) -> Option<&QueryProfile> {
        self.last_profile.as_ref()
    }

    /// Register (or look up) a predicate by name and arity.
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        let sym = self.store.symbols_mut().intern(name);
        let id = self.preds.register(sym, arity);
        while self.full.len() <= id.index() {
            self.edb.push(Relation::new(0));
            self.full.push(Relation::new(0));
            self.delta.push(Relation::new(0));
            self.pending.push(Relation::new(0));
            self.edb_synced.push(0);
        }
        // (Re)size the relation if this is the first registration.
        if self.full[id.index()].arity() != arity && self.full[id.index()].is_empty() {
            self.edb[id.index()] = Relation::new(arity);
            self.full[id.index()] = Relation::new(arity);
            self.delta[id.index()] = Relation::new(arity);
            self.pending[id.index()] = Relation::new(arity);
        }
        id
    }

    /// Predicate metadata.
    pub fn pred_name(&self, id: PredId) -> String {
        self.store
            .symbols()
            .name(self.preds.info(id).name)
            .to_owned()
    }

    /// Look up a registered predicate.
    pub fn lookup_pred(&self, name: &str, arity: usize) -> Option<PredId> {
        let sym = self.store.symbols().get(name)?;
        self.preds.get(sym, arity)
    }

    /// The predicate registry.
    pub fn preds(&self) -> &PredRegistry {
        &self.preds
    }

    /// Load a ground fact. Before the first run it joins the EDB to be
    /// picked up by the next batch evaluation; after a completed
    /// fixpoint it queues as a pending delta and marks the session
    /// [`EngineState::Dirty`], to be reconciled by [`Engine::update`].
    pub fn fact(&mut self, pred: PredId, tuple: Vec<TermId>) -> Result<(), EngineError> {
        let arity = self.preds.info(pred).arity;
        if tuple.len() != arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(pred),
                expected: arity,
                got: tuple.len(),
            });
        }
        self.edb[pred.index()].insert(&tuple);
        self.stats_cache.invalidate();
        self.fallback_config = None;
        if matches!(self.state, EngineState::Materialized | EngineState::Dirty)
            && !self.full[pred.index()].contains(&tuple)
        {
            self.pending[pred.index()].insert(&tuple);
            self.state = EngineState::Dirty;
        }
        Ok(())
    }

    /// Convenience: load a fact with owned [`Value`] arguments.
    pub fn fact_values(&mut self, pred: PredId, values: &[Value]) -> Result<(), EngineError> {
        let tuple: Vec<TermId> = values.iter().map(|v| v.intern(&mut self.store)).collect();
        self.fact(pred, tuple)
    }

    /// Add a rule. Arity consistency is checked against the registry.
    pub fn rule(&mut self, rule: Rule) -> Result<(), EngineError> {
        let arity = self.preds.info(rule.head).arity;
        if rule.head_args.len() != arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(rule.head),
                expected: arity,
                got: rule.head_args.len(),
            });
        }
        for lit in rule.all_body_lits() {
            let (pred, n) = match lit {
                crate::rule::BodyLit::Pos(p, args) | crate::rule::BodyLit::Neg(p, args) => {
                    (*p, args.len())
                }
                crate::rule::BodyLit::Builtin(b, args) => {
                    if args.len() != b.arity() {
                        return Err(EngineError::ArityMismatch {
                            pred: b.name().to_owned(),
                            expected: b.arity(),
                            got: args.len(),
                        });
                    }
                    continue;
                }
            };
            let expected = self.preds.info(pred).arity;
            if n != expected {
                return Err(EngineError::ArityMismatch {
                    pred: self.pred_name(pred),
                    expected,
                    got: n,
                });
            }
        }
        self.rules.push(rule);
        // The rule set changed: cached plans (batch and per-adornment
        // demand plans alike) and any materialized model are stale.
        // The next run restratifies, recompiles, and rebuilds the
        // model from the EDB; the next query re-derives its rewrite.
        self.prepared = None;
        self.clear_query_plans();
        self.fallback_config = None;
        self.state = EngineState::Unprepared;
        Ok(())
    }

    /// Reach the least model.
    ///
    /// * [`EngineState::Unprepared`] / [`EngineState::Prepared`]: batch
    ///   evaluation — stratify and compile if not cached, rebuild the
    ///   model from the EDB, run every stratum to fixpoint.
    /// * [`EngineState::Dirty`]: delegates to [`Engine::update`] — the
    ///   pending facts are reconciled incrementally.
    /// * [`EngineState::Materialized`]: a cheap no-op — the fixpoint is
    ///   already reached; returns zeroed stats and leaves the model
    ///   (and [`Engine::stats`]) untouched.
    ///
    /// A configuration changed via [`Engine::config_mut`] after a
    /// materialization voids the short-circuits: the model is rebuilt
    /// under the new settings.
    pub fn run(&mut self) -> Result<EvalStats, EngineError> {
        self.sync_exec();
        if matches!(self.state, EngineState::Materialized | EngineState::Dirty)
            && self.config != self.config_at_materialize
        {
            // The materialized model was computed under a different
            // configuration; `prepare` re-checks the universe policy.
            return self.run_batch();
        }
        match self.state {
            EngineState::Materialized => Ok(EvalStats::default()),
            EngineState::Dirty => self.update_incremental(),
            EngineState::Unprepared | EngineState::Prepared => self.run_batch(),
        }
    }

    /// Reconcile facts added since the last completed fixpoint.
    ///
    /// Seeds the semi-naive drivers with the per-predicate pending
    /// deltas and re-runs only from the lowest affected stratum onward,
    /// over the retained full relations. Falls back to a batch
    /// recompute (from the EDB) when a non-monotone rule — negation or
    /// grouping — sits at or above the restart stratum, since a
    /// monotone continuation cannot retract tuples. With no model
    /// materialized yet this is a batch run; with nothing pending it is
    /// a no-op returning zeroed stats. Equivalent to [`Engine::run`] —
    /// both entry points resolve the session state the same way.
    pub fn update(&mut self) -> Result<EvalStats, EngineError> {
        self.run()
    }

    /// Drop all facts — EDB, pending deltas, and the materialized
    /// model — while keeping the rules and their compiled *batch*
    /// plans. The session returns to [`EngineState::Prepared`] (or
    /// [`EngineState::Unprepared`] if it was never prepared), so the
    /// next run skips restratification and recompilation.
    ///
    /// Demand plans are routed through the eviction path
    /// ([`Engine::clear_query_plans`]): their retained fixpoints are
    /// invalid without the facts, and dropping them reclaims the
    /// adorned/magic relation slots — a long session alternating
    /// `reset` and queries must not accumulate demand-space memory.
    pub fn reset_facts(&mut self) {
        self.clear_query_plans();
        self.stats_cache.invalidate();
        self.fallback_full.clear();
        self.fallback_delta.clear();
        self.fallback_config = None;
        for i in 0..self.preds.len() {
            self.edb[i].clear();
            self.full[i].clear();
            self.delta[i].clear();
            self.pending[i].clear();
            self.edb_synced[i] = 0;
        }
        self.state = if self.prepared.is_some() {
            EngineState::Prepared
        } else {
            EngineState::Unprepared
        };
    }

    /// Evict every cached demand plan, reclaiming the memory of their
    /// adorned/magic relations and recycling their registry slots
    /// (recompiling a shape later re-registers it, typically into the
    /// freed slots). Returns the number of plans dropped. Called by
    /// [`Engine::reset_facts`], on rule and universe-policy changes,
    /// and available to hosts that want to bound a long-lived session
    /// explicitly.
    pub fn clear_query_plans(&mut self) -> usize {
        let keys: Vec<PlanKey> = self.query_lru.drain(..).collect();
        let n = keys.len();
        for key in keys {
            self.evict_plan(key);
        }
        debug_assert!(self.query_plans.is_empty(), "every plan is LRU-listed");
        self.query_plans.clear();
        n
    }

    /// Answer `pred(args…)` — `Some` is a bound (ground) argument,
    /// `None` a free one — without materializing the full model when
    /// possible.
    ///
    /// On a session with no materialized model, the engine compiles a
    /// *demand plan* for the query's adornment (its bound/free
    /// pattern): the magic-set rewrite of the reachable rules
    /// ([`crate::magic`]), stratified and planned through the ordinary
    /// pipeline and cached per `(pred, adornment)` — so repeated point
    /// queries with different constants reuse the plan and pay only
    /// for seeding one magic fact and deriving the tuples their
    /// binding can reach. Under [`EvalConfig::demand_retention`]
    /// (default) the plan's demand space is *retained* between
    /// queries: a repeat is a zero-work read, and a new seed or new
    /// EDB facts continue the semi-naive fixpoint from the retained
    /// relations ([`EvalStats::demand_continuations`]) instead of
    /// re-deriving. The cache is LRU-bounded by
    /// [`EvalConfig::demand_plan_cache`]. When the rewrite is
    /// inapplicable (negation or grouping reachable from the query, or
    /// an unplannable rewrite) the engine soundly falls back to full
    /// materialization and filters, counting
    /// [`EvalStats::demand_fallbacks`].
    ///
    /// On a session that already holds a materialized model, the query
    /// answers from it directly (reconciling pending facts through the
    /// incremental update path first) — demand evaluation only pays
    /// off *before* the model exists.
    ///
    /// ```
    /// use lps_engine::{Engine, EvalConfig};
    /// use lps_engine::engine::QueryPath;
    /// use lps_engine::pattern::{Pattern, VarId};
    /// use lps_engine::rule::{BodyLit, Rule};
    ///
    /// let mut engine = Engine::new(EvalConfig::default());
    /// let edge = engine.pred("edge", 2);
    /// let path = engine.pred("path", 2);
    /// let (a, b, c) = {
    ///     let st = engine.store_mut();
    ///     (st.atom("a"), st.atom("b"), st.atom("c"))
    /// };
    /// engine.fact(edge, vec![a, b]).unwrap();
    /// engine.fact(edge, vec![b, c]).unwrap();
    /// let v = |i| Pattern::Var(VarId(i));
    /// engine.rule(Rule {
    ///     head: path,
    ///     head_args: vec![v(0), v(1)],
    ///     group: None,
    ///     outer: vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
    ///     quant: None,
    ///     num_vars: 2,
    ///     var_names: vec!["X".into(), "Y".into()],
    ///     var_sorts: vec![],
    /// }).unwrap();
    /// // Goal-directed: `?- path(b, Y)` never materializes the model.
    /// let res = engine.query(path, &[Some(b), None]).unwrap();
    /// assert_eq!(res.path, QueryPath::Demand);
    /// assert_eq!(res.rows, vec![vec![b, c]]);
    /// assert_eq!(res.stats.magic_facts_seeded, 1);
    /// // Same adornment, new constant: the demand plan is cached.
    /// let res = engine.query(path, &[Some(a), None]).unwrap();
    /// assert_eq!(res.stats.adornments_compiled, 0);
    /// assert_eq!(res.rows, vec![vec![a, b]]);
    /// ```
    pub fn query(
        &mut self,
        pred: PredId,
        args: &[Option<TermId>],
    ) -> Result<QueryResult, EngineError> {
        self.sync_exec();
        // A stale profile must not outlive the query it described.
        self.last_profile = None;
        let arity = self.preds.info(pred).arity;
        if args.len() != arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(pred),
                expected: arity,
                got: args.len(),
            });
        }
        // A maintained model answers directly; `run` resolves pending
        // facts (incrementally when it can) and is a no-op on a clean
        // fixpoint.
        if matches!(self.state, EngineState::Materialized | EngineState::Dirty) {
            let stats = self.run()?;
            return Ok(QueryResult {
                rows: self.filter_rows(pred, args),
                path: QueryPath::Materialized,
                stats,
            });
        }

        self.materialize_universe()?;
        let mask = magic::adornment_of(args);
        let mut evicted = self.refresh_query_cache_policy();
        let key = (pred, mask);
        let fresh = !self.query_plans.contains_key(&key);
        if fresh {
            let entry = self.compile_query_plan(pred, mask);
            evicted += self.insert_query_plan(key, entry);
        } else {
            self.touch_query_plan(key);
        }
        if matches!(self.query_plans[&key], QueryEntry::Fallback) {
            return self.query_fallback(pred, args, evicted);
        }

        self.sync_edb_to_full();
        let seed_tuple: Vec<TermId> = args.iter().filter_map(|a| *a).collect();
        let profiler = self.config.profile.then(StepProfiler::default);
        let (mut stats, answer, adornments) = self.run_plan(key, &seed_tuple, profiler.as_ref())?;
        if let Some(prof) = &profiler {
            self.last_profile = Some(self.build_profile(key, prof));
        }
        stats.plans_evicted = evicted;
        if fresh {
            stats.adornments_compiled = adornments;
        }
        stats.absorb(self.take_planner_counters());
        let rows = self.lookup_rows(answer, mask, &seed_tuple, 0);
        stats.seal_misestimate();
        self.last_stats = stats;
        self.cumulative_stats.absorb(stats);
        Ok(QueryResult {
            rows,
            path: QueryPath::Demand,
            stats,
        })
    }

    /// Evaluate an ad-hoc query *rule* — the compiled form of a
    /// conjunctive query like `?- p(X), q(X, {a}).`: the head collects
    /// the answer variables, the body is the goal conjunction. The
    /// head predicate must be dedicated to queries (not defined or
    /// loaded by the program).
    ///
    /// Demand evaluation canonicalizes the goal to its *shape* — the
    /// rule modulo top-level ground arguments of positive literals,
    /// which lift into bound head columns ([`magic::lift_goal`]) — and
    /// caches the magic-set plan per shape, so `?- path(a, X)` and
    /// `?- path(b, X)` written as conjunctive goals share one compiled
    /// plan and differ only in the magic seed tuple, exactly like
    /// point queries sharing a `(pred, adornment)` plan. Ground
    /// arguments thus still root the derivation: `?- path(a, X),
    /// color(X, blue)` derives only from `a` onward. The shared plan
    /// participates in the LRU bound and — under
    /// [`EvalConfig::demand_retention`] — keeps its demand space
    /// retained across calls. The non-monotone fallback discipline of
    /// [`Engine::query`] applies unchanged.
    pub fn query_rule(&mut self, rule: Rule) -> Result<QueryResult, EngineError> {
        self.sync_exec();
        self.last_profile = None;
        if rule.head_args.len() != self.preds.info(rule.head).arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(rule.head),
                expected: self.preds.info(rule.head).arity,
                got: rule.head_args.len(),
            });
        }
        if matches!(self.state, EngineState::Materialized | EngineState::Dirty) {
            // `run` accounts for its own work (no-op, incremental, or
            // rebuild); only the goal evaluation is new here.
            let mut stats = self.run()?;
            let mut extra = self.eval_single_rule(&rule)?;
            extra.absorb(self.take_planner_counters());
            stats.absorb(extra);
            stats.seal_misestimate();
            self.last_stats = stats;
            self.cumulative_stats.absorb(extra);
            return Ok(QueryResult {
                rows: self.collect_rows(rule.head),
                path: QueryPath::Materialized,
                stats,
            });
        }

        self.materialize_universe()?;
        let mut evicted = self.refresh_query_cache_policy();
        let lifted = magic::lift_goal(&rule);
        let k = lifted.consts.len();
        if k + rule.head_args.len() >= ColMask::BITS as usize {
            // Too many columns for an adornment mask: evaluate the
            // goal one-shot through the uncached pipeline.
            return self.query_rule_oneshot(rule);
        }
        let shape = match self.conj_shapes.get(&lifted.key) {
            Some(&p) => p,
            None => {
                let name = format!("query#shape#{}", self.conj_shapes.len());
                let p = self.pred(&name, k + rule.head_args.len());
                self.conj_shapes.insert(lifted.key.clone(), p);
                p
            }
        };
        let mask: ColMask = (1u32 << k) - 1;
        let key = (shape, mask);
        let fresh = !self.query_plans.contains_key(&key);
        if fresh {
            let mut canonical = lifted.rule;
            canonical.head = shape;
            let entry = self.compile_conj_plan(canonical, shape, mask);
            evicted += self.insert_query_plan(key, entry);
        } else {
            self.touch_query_plan(key);
        }
        if matches!(self.query_plans[&key], QueryEntry::Fallback) {
            // Non-monotone goal (or unplannable rewrite): materialize
            // the shadow model, then evaluate the original query rule
            // over it — sibling demand plans stay warm.
            let mut stats = self.ensure_shadow()?;
            let mut extra = self.eval_single_rule_on(&rule, true)?;
            extra.absorb(self.take_planner_counters());
            extra.demand_fallbacks = 1;
            extra.plans_evicted = evicted;
            stats.absorb(extra);
            stats.seal_misestimate();
            self.last_stats = stats;
            self.cumulative_stats.absorb(stats);
            return Ok(QueryResult {
                rows: self.collect_shadow_rows(rule.head),
                path: QueryPath::Fallback,
                stats,
            });
        }

        self.sync_edb_to_full();
        let profiler = self.config.profile.then(StepProfiler::default);
        let (mut stats, answer, adornments) =
            self.run_plan(key, &lifted.consts, profiler.as_ref())?;
        if let Some(prof) = &profiler {
            self.last_profile = Some(self.build_profile(key, prof));
        }
        stats.plans_evicted = evicted;
        if fresh {
            stats.adornments_compiled = adornments;
        }
        stats.absorb(self.take_planner_counters());
        // The retained adorned relation accumulates every seed's
        // answers; this call's rows are those whose seed columns match
        // its constants (an indexed lookup), seed columns stripped.
        let rows = self.lookup_rows(answer, mask, &lifted.consts, k);
        stats.seal_misestimate();
        self.last_stats = stats;
        self.cumulative_stats.absorb(stats);
        Ok(QueryResult {
            rows,
            path: QueryPath::Demand,
            stats,
        })
    }

    /// The pre-cache conjunctive pipeline: append the goal rule to the
    /// program, rewrite from its head all-free, compile and run
    /// one-shot. Kept for goals too wide for an adornment mask (more
    /// seed constants plus answer columns than mask bits).
    fn query_rule_oneshot(&mut self, rule: Rule) -> Result<QueryResult, EngineError> {
        let mut all_rules = self.rules.clone();
        let head = rule.head;
        all_rules.push(rule.clone());
        let cost_on = self.refresh_planner_stats();
        let policy = self.config.set_universe;
        let rewritten = match magic::magic_rewrite(
            &all_rules,
            head,
            0,
            &mut self.store,
            &mut self.preds,
            cost_on.then(|| magic::SipsCost {
                stats: self.stats_cache.current(),
                policy,
            }),
        ) {
            MagicOutcome::Obstructed(_) => None,
            MagicOutcome::Rewritten(mp) => {
                self.planner_pending.reorders_applied += mp.reorders;
                self.compile_rewritten(&mp.rules)
                    .ok()
                    .map(|program| (mp, program))
            }
        };
        let Some((mp, program)) = rewritten else {
            let mut stats = self.ensure_shadow()?;
            let mut extra = self.eval_single_rule_on(&rule, true)?;
            extra.absorb(self.take_planner_counters());
            extra.demand_fallbacks = 1;
            stats.absorb(extra);
            stats.seal_misestimate();
            self.last_stats = stats;
            self.cumulative_stats.absorb(stats);
            return Ok(QueryResult {
                rows: self.collect_shadow_rows(head),
                path: QueryPath::Fallback,
                stats,
            });
        };

        // A one-shot space is never retained: any plan whose fixpoint
        // it clears out from under must go cold.
        self.invalidate_overlapping(&mp.space);
        self.full[head.index()].clear();
        self.delta[head.index()].clear();
        self.sync_edb_to_full();
        let mut stats = run_demand_program(
            &mut self.store,
            &mut self.full,
            &mut self.delta,
            &self.config,
            &program,
            &mp.space,
            &mp.magic_preds,
            None,
            true,
            &mut self.exec,
            None,
        )?;
        stats.adornments_compiled = mp.adornments;
        stats.absorb(self.take_planner_counters());
        self.stats_cache.invalidate();
        let rows = self.collect_rows(mp.answer);
        stats.seal_misestimate();
        self.last_stats = stats;
        self.cumulative_stats.absorb(stats);
        Ok(QueryResult {
            rows,
            path: QueryPath::Demand,
            stats,
        })
    }

    /// Fallback query evaluation: materialize the *shadow* model (a
    /// full materialization kept beside the live relations) and filter
    /// the predicate's extension there. The fallback is routed per
    /// query: sibling demand plans keep their retained fixpoints, the
    /// session state is untouched, and a later monotone query
    /// continues warm. A fresh shadow answers repeat non-monotone
    /// queries by an indexed read. `evicted` carries plan evictions
    /// the caller's cache maintenance performed on the way here, so
    /// they stay visible in the pass counters.
    fn query_fallback(
        &mut self,
        pred: PredId,
        args: &[Option<TermId>],
        evicted: usize,
    ) -> Result<QueryResult, EngineError> {
        let mut stats = self.ensure_shadow()?;
        stats.absorb(self.take_planner_counters());
        stats.demand_fallbacks = 1;
        stats.plans_evicted += evicted;
        let rows = self.filter_shadow_rows(pred, args);
        stats.seal_misestimate();
        self.last_stats = stats;
        self.cumulative_stats.absorb(stats);
        Ok(QueryResult {
            rows,
            path: QueryPath::Fallback,
            stats,
        })
    }

    /// Bring the shadow fallback model up to date, returning the
    /// statistics of the materialization pass (zeroed when the shadow
    /// was already fresh). Registry growth since the last build (new
    /// predicates, adorned relations of later rewrites) cannot change
    /// the model — fact and rule changes invalidate it — so stale-free
    /// growth just sizes the vectors.
    fn ensure_shadow(&mut self) -> Result<EvalStats, EngineError> {
        if self.fallback_config != Some(self.config) {
            return self.run_shadow();
        }
        for i in 0..self.preds.len() {
            let arity = self.preds.info(PredId::from_index(i)).arity;
            if i >= self.fallback_full.len() {
                self.fallback_full.push(Relation::new(arity));
                self.fallback_delta.push(Relation::new(arity));
            } else if self.fallback_full[i].arity() != arity {
                // A recycled registry slot re-registered at another
                // arity; it was emptied on release, nothing is lost.
                self.fallback_full[i] = Relation::new(arity);
                self.fallback_delta[i] = Relation::new(arity);
            }
        }
        Ok(EvalStats::default())
    }

    /// Materialize the shadow model: the prepared batch program run
    /// over a scratch copy of the EDB. Unlike [`Engine::run_batch`]
    /// this leaves `full`, the retained demand spaces, and the session
    /// state untouched — the whole point of the shadow.
    fn run_shadow(&mut self) -> Result<EvalStats, EngineError> {
        self.materialize_universe()?;
        self.prepare()?;
        let mut stats = EvalStats::default();
        self.fallback_full.clear();
        self.fallback_delta.clear();
        for i in 0..self.preds.len() {
            self.fallback_full.push(self.edb[i].clone());
            stats.facts_derived += self.edb[i].len();
            self.fallback_delta.push(Relation::new(self.edb[i].arity()));
        }
        let program = &self.prepared.as_ref().expect("prepare() just ran").program;
        for &(pred, mask, is_delta) in &program.index_requests {
            self.fallback_full[pred.index()].ensure_index(mask);
            if is_delta {
                self.fallback_delta[pred.index()].ensure_index(mask);
            }
        }
        for &i in &program.fact_rules {
            let cr = &program.compiled[i];
            let tuple: Vec<TermId> = ground_head_tuple(&cr.rule);
            if self.fallback_full[cr.rule.head.index()].insert(&tuple) {
                stats.facts_derived += 1;
            }
        }
        for s in 0..program.strat.num_strata {
            let stratum_stats = run_stratum(
                &mut self.store,
                &mut self.fallback_full,
                &mut self.fallback_delta,
                &program.regular(s),
                &program.grouping(s),
                &self.config,
                StratumStart::Batch,
                &mut self.exec,
                None,
            )?;
            stats.absorb(stratum_stats);
        }
        self.fallback_config = Some(self.config);
        Ok(stats)
    }

    /// [`Engine::filter_rows`] against the shadow fallback model.
    fn filter_shadow_rows(&mut self, pred: PredId, args: &[Option<TermId>]) -> RowSet {
        let mask = magic::adornment_of(args);
        let key: Vec<TermId> = args.iter().filter_map(|a| *a).collect();
        let mut out = RowSet::new(self.preds.info(pred).arity);
        let rel = &mut self.fallback_full[pred.index()];
        if mask == 0 {
            for row in rel.iter() {
                out.push(row);
            }
            return out;
        }
        rel.ensure_index(mask);
        for &r in rel.lookup(mask, &key) {
            out.push(rel.row(r));
        }
        out
    }

    /// All rows of `pred` in the shadow fallback model.
    fn collect_shadow_rows(&self, pred: PredId) -> RowSet {
        let mut out = RowSet::new(self.preds.info(pred).arity);
        for row in self.fallback_full[pred.index()].iter() {
            out.push(row);
        }
        out
    }

    /// Compile the demand plan for one `(pred, adornment)` pattern.
    /// Registers the adorned/magic predicates and sizes their
    /// relations; any obstruction or planning failure yields the
    /// fallback entry instead of an error (the batch pipeline will
    /// surface real program errors).
    fn compile_query_plan(&mut self, pred: PredId, mask: ColMask) -> QueryEntry {
        let _compile_span = self.config.trace.then(|| {
            lps_trace::span("demand_compile")
                .arg("pred", self.pred_name(pred))
                .arg("mask", mask)
        });
        let cost_on = self.refresh_planner_stats();
        let policy = self.config.set_universe;
        let mp = match magic::magic_rewrite(
            &self.rules,
            pred,
            mask,
            &mut self.store,
            &mut self.preds,
            cost_on.then(|| magic::SipsCost {
                stats: self.stats_cache.current(),
                policy,
            }),
        ) {
            MagicOutcome::Obstructed(_) => return QueryEntry::Fallback,
            MagicOutcome::Rewritten(mp) => mp,
        };
        self.planner_pending.reorders_applied += mp.reorders;
        match self.compile_rewritten(&mp.rules) {
            Ok(program) => QueryEntry::Demand(Box::new(make_plan(program, mp))),
            Err(_) => QueryEntry::Fallback,
        }
    }

    /// Compile the demand plan for one conjunctive goal shape: the
    /// canonical rule (head grafted onto the dedicated shape
    /// predicate) joins the program and the rewrite roots at it with
    /// the lifted-constant columns bound.
    fn compile_conj_plan(&mut self, canonical: Rule, shape: PredId, mask: ColMask) -> QueryEntry {
        let _compile_span = self.config.trace.then(|| {
            lps_trace::span("demand_compile")
                .arg("pred", self.pred_name(shape))
                .arg("mask", mask)
        });
        let mut all = self.rules.clone();
        all.push(canonical);
        let cost_on = self.refresh_planner_stats();
        let policy = self.config.set_universe;
        let mp = match magic::magic_rewrite(
            &all,
            shape,
            mask,
            &mut self.store,
            &mut self.preds,
            cost_on.then(|| magic::SipsCost {
                stats: self.stats_cache.current(),
                policy,
            }),
        ) {
            MagicOutcome::Obstructed(_) => return QueryEntry::Fallback,
            MagicOutcome::Rewritten(mp) => mp,
        };
        self.planner_pending.reorders_applied += mp.reorders;
        match self.compile_rewritten(&mp.rules) {
            Ok(program) => QueryEntry::Demand(Box::new(make_plan(program, mp))),
            Err(_) => QueryEntry::Fallback,
        }
    }

    /// Run the cached demand plan under `key` — cold or as a seeded
    /// continuation over its retained space — and return the pass
    /// statistics plus the plan's answer predicate and adornment
    /// count. The plan is taken out of the cache for the duration so
    /// the engine's relation vectors stay freely borrowable.
    fn run_plan(
        &mut self,
        key: PlanKey,
        seed: &[TermId],
        profiler: Option<&StepProfiler>,
    ) -> Result<(EvalStats, PredId, usize), EngineError> {
        let Some(QueryEntry::Demand(mut plan)) = self.query_plans.remove(&key) else {
            unreachable!("run_plan is called on a cached demand entry");
        };
        let result = self.drive_plan(&mut plan, seed, profiler);
        let answer = plan.answer;
        let adornments = plan.adornments;
        self.query_plans.insert(key, QueryEntry::Demand(plan));
        result.map(|stats| (stats, answer, adornments))
    }

    /// Assemble a [`QueryProfile`] from the attribution a profiled
    /// `run_plan` pass collected, after the plan was reinserted under
    /// `key`: per rewritten rule, the planner's per-literal estimates
    /// next to the probes/rows actually observed.
    fn build_profile(&self, key: PlanKey, prof: &StepProfiler) -> QueryProfile {
        let mut rules = Vec::new();
        if let Some(QueryEntry::Demand(plan)) = self.query_plans.get(&key) {
            for cr in &plan.program.compiled {
                if cr.step_estimates.is_empty() {
                    continue;
                }
                let literals = cr
                    .step_estimates
                    .iter()
                    .map(|&(lit, est)| {
                        let pred = match &cr.rule.outer[lit] {
                            BodyLit::Pos(p, _) => *p,
                            other => {
                                unreachable!(
                                    "step_estimates points at positive literals: {other:?}"
                                )
                            }
                        };
                        let (probes, rows) = prof.get(cr.id, lit as u32);
                        LiteralProfile {
                            pred: self.pred_name(pred),
                            estimated_rows: est as u64,
                            probes,
                            actual_rows: rows,
                        }
                    })
                    .collect();
                rules.push(RuleProfile {
                    head: self.pred_name(cr.rule.head),
                    literals,
                });
            }
        }
        QueryProfile { rules }
    }

    /// Describe the demand plan a point query `pred(args)` would run,
    /// without running it: the goal adornment, the SIPS regime the
    /// planner used, and — when the magic rewrite succeeds — every
    /// rewritten rule's chosen join order with the planner's
    /// per-literal row estimates (`~N`). Compiles and caches the plan
    /// if this adornment has never been queried, so a following
    /// [`Engine::query`] call reuses it.
    pub fn explain(
        &mut self,
        pred: PredId,
        args: &[Option<TermId>],
    ) -> Result<String, EngineError> {
        self.sync_exec();
        let arity = self.preds.info(pred).arity;
        if args.len() != arity {
            return Err(EngineError::ArityMismatch {
                pred: self.pred_name(pred),
                expected: arity,
                got: args.len(),
            });
        }
        self.materialize_universe()?;
        let mask = magic::adornment_of(args);
        self.refresh_query_cache_policy();
        let key = (pred, mask);
        if !self.query_plans.contains_key(&key) {
            let entry = self.compile_query_plan(pred, mask);
            self.insert_query_plan(key, entry);
        } else {
            self.touch_query_plan(key);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "goal: {}/{}  adornment: {}\n",
            self.pred_name(pred),
            arity,
            magic::adornment_string(mask, arity)
        ));
        out.push_str(&format!(
            "sips: {}\n",
            if self.config.cost_planner {
                "cost-based (per-predicate statistics)"
            } else {
                "textual (left-to-right)"
            }
        ));
        match &self.query_plans[&key] {
            QueryEntry::Fallback => {
                out.push_str(
                    "plan: fallback — rewrite obstructed; \
                     the query materializes the shadow model\n",
                );
            }
            QueryEntry::Demand(plan) => {
                out.push_str(&format!(
                    "plan: demand — {} adornments, answer relation {}\n",
                    plan.adornments,
                    self.pred_name(plan.answer)
                ));
                for cr in &plan.program.compiled {
                    if cr.rule.is_fact() {
                        continue;
                    }
                    out.push_str(&format!("  {} :-", self.pred_name(cr.rule.head)));
                    let full = &cr.variants[0];
                    for step in full.steps.iter().chain(&full.post_steps) {
                        let desc = match step {
                            Step::Pos { lit, .. } => {
                                let BodyLit::Pos(p, _) = &cr.rule.outer[*lit] else {
                                    unreachable!("Pos step on a positive literal")
                                };
                                let est = cr
                                    .step_estimates
                                    .iter()
                                    .find(|(l, _)| l == lit)
                                    .map_or(0, |&(_, e)| e);
                                format!(" {}~{}", self.pred_name(*p), est)
                            }
                            Step::NegStep { lit } => {
                                let BodyLit::Neg(p, _) = &cr.rule.outer[*lit] else {
                                    unreachable!("Neg step on a negated literal")
                                };
                                format!(" !{}", self.pred_name(*p))
                            }
                            Step::BuiltinStep { lit, .. } => {
                                let BodyLit::Builtin(b, _) = &cr.rule.outer[*lit] else {
                                    unreachable!("Builtin step on a builtin literal")
                                };
                                format!(" <{}>", b.name())
                            }
                            Step::EnumUniverse { .. } => " <enum-universe>".to_owned(),
                        };
                        out.push_str(&desc);
                    }
                    out.push('\n');
                }
            }
        }
        Ok(out)
    }

    /// Reach the plan's fixpoint for the current seeds and EDB. Three
    /// regimes:
    ///
    /// * **warm** (retention on, space live): seeded semi-naive
    ///   continuation over the retained relations, driven by exactly
    ///   the new tuples — O(new demand);
    /// * **rebase** (retention on, space not live — fresh compile, or
    ///   invalidated by a batch rebuild / eviction of a shared
    ///   sub-space): batch evaluation over the space *without*
    ///   clearing it. Demand-space contents are always sound (they
    ///   were derived by the monotone rewrite from seeds and an
    ///   append-only EDB, or reset to empty), so re-running to
    ///   fixpoint from them is exact — and not clearing means sibling
    ///   plans sharing a sub-adornment stay live instead of
    ///   ping-ponging each other cold;
    /// * **cold** (retention off): clear the space and re-derive from
    ///   scratch — the pre-retention semantics, kept as the E14
    ///   ablation baseline. Clearing invalidates any retained sibling.
    ///
    /// On success under retention the plan records the new baseline
    /// (relation lengths and set count) and is live.
    fn drive_plan(
        &mut self,
        plan: &mut QueryPlan,
        seed: &[TermId],
        profiler: Option<&StepProfiler>,
    ) -> Result<EvalStats, EngineError> {
        let seed = plan.magic_seed.map(|m| (m, seed));
        let retain = self.config.demand_retention;
        let warm = retain && plan.live;
        plan.live = false;
        let stats = if warm {
            self.continue_plan(plan, seed, profiler)?
        } else {
            if !retain {
                self.invalidate_overlapping(&plan.space);
            }
            run_demand_program(
                &mut self.store,
                &mut self.full,
                &mut self.delta,
                &self.config,
                &plan.program,
                &plan.space,
                &plan.magic_preds,
                seed,
                !retain,
                &mut self.exec,
                profiler,
            )?
        };
        if retain {
            plan.live = true;
            plan.base_lens = plan
                .tracked
                .iter()
                .map(|p| self.full[p.index()].len() as u32)
                .collect();
            plan.sets_base = self.store.set_ids().len();
        }
        // Demand derivations changed the relations the next compile's
        // statistics would read.
        self.stats_cache.invalidate();
        Ok(stats)
    }

    /// Seeded semi-naive continuation over a retained demand space:
    /// plant the (possibly duplicate) magic seed, find every tracked
    /// relation that grew past the plan's baseline — the new seed plus
    /// newly synced EDB facts — and re-run from the lowest affected
    /// stratum with the deltas seeded from exactly those rows,
    /// mirroring [`Engine::update_incremental`]. The rewritten program
    /// is monotone by construction (the obstruction check excluded
    /// negation and grouping), so the continuation is always sound.
    fn continue_plan(
        &mut self,
        plan: &QueryPlan,
        seed: Option<(PredId, &[TermId])>,
        profiler: Option<&StepProfiler>,
    ) -> Result<EvalStats, EngineError> {
        let _continue_span = self.config.trace.then(|| {
            lps_trace::span("demand_continue")
                .arg("tracked", plan.tracked.len())
                .arg("strata", plan.program.strat.num_strata)
        });
        let mut stats = EvalStats {
            demand_continuations: 1,
            ..EvalStats::default()
        };
        for &(p, m, is_delta) in &plan.program.index_requests {
            self.full[p.index()].ensure_index(m);
            if is_delta {
                self.delta[p.index()].ensure_index(m);
            }
        }
        if let Some((magic, tuple)) = seed {
            if self.full[magic.index()].insert(tuple) {
                stats.facts_derived += 1;
                stats.magic_facts_seeded += 1;
            }
        }
        let changed: Vec<PredId> = plan
            .tracked
            .iter()
            .copied()
            .filter(|&p| self.full[p.index()].len() as u32 > plan.base_len(p))
            .collect();
        let universe_grew = self.store.set_ids().len() > plan.sets_base;
        debug_assert!(
            plan.program.max_nonmono_stratum.is_none(),
            "demand rewrites are monotone"
        );
        if let Some(s0) = plan.program.restart_stratum(changed, universe_grew) {
            let sets_baseline = plan.sets_base;
            for s in s0..plan.program.strat.num_strata {
                for d in self.delta.iter_mut() {
                    d.clear();
                }
                for &p in plan.program.strat.reads(s) {
                    let i = p.index();
                    for r in plan.base_len(p)..self.full[i].len() as u32 {
                        let tuple = self.full[i].row(r);
                        self.delta[i].insert(tuple);
                    }
                }
                let stratum_stats = run_stratum(
                    &mut self.store,
                    &mut self.full,
                    &mut self.delta,
                    &plan.program.regular(s),
                    &[],
                    &self.config,
                    StratumStart::Seeded { sets_baseline },
                    &mut self.exec,
                    profiler,
                )?;
                stats.absorb(stratum_stats);
            }
            for d in self.delta.iter_mut() {
                d.clear();
            }
        }
        Ok(stats)
    }

    /// Build the bound-column indexes a published snapshot's hit path
    /// probes — one per live demand plan's answer relation — while the
    /// writer still holds `&mut self`. Published relation clones are
    /// frozen, so any index missing here degrades the reader to a
    /// (sound) linear scan until the next publish after a change.
    pub fn prepare_publish(&mut self) {
        let answers: Vec<(PredId, ColMask)> = self
            .query_plans
            .iter()
            .filter_map(|(&(_, mask), e)| match e {
                QueryEntry::Demand(p) if p.live => Some((p.answer, mask)),
                _ => None,
            })
            .collect();
        for (answer, mask) in answers {
            if mask != 0 {
                self.full[answer.index()].ensure_index(mask);
            }
        }
    }

    /// Snapshot-publisher internals: the live demand plans as
    /// `((pred, mask), answer, magic_seed)` triples.
    pub(crate) fn live_plan_triples(&self) -> Vec<((PredId, ColMask), PredId, Option<PredId>)> {
        self.query_plans
            .iter()
            .filter_map(|(&key, e)| match e {
                QueryEntry::Demand(p) if p.live => Some((key, p.answer, p.magic_seed)),
                _ => None,
            })
            .collect()
    }

    /// Snapshot-publisher internals: the positional `full` relations.
    pub(crate) fn full_relations(&self) -> &[Relation] {
        &self.full
    }

    /// Whether every loaded fact has been folded into the model and
    /// the demand spaces: nothing pending for [`Engine::update`], no
    /// EDB rows awaiting the demand pipeline's sync. Retained plan
    /// answers are only publishable when this holds.
    pub(crate) fn demand_space_clean(&self) -> bool {
        self.pending.iter().all(Relation::is_empty)
            && self
                .edb
                .iter()
                .zip(&self.edb_synced)
                .all(|(e, &s)| e.len() <= s as usize)
    }

    /// Mark the plan cache entry most recently used.
    fn touch_query_plan(&mut self, key: PlanKey) {
        if let Some(pos) = self.query_lru.iter().position(|&k| k == key) {
            let k = self.query_lru.remove(pos);
            self.query_lru.push(k);
        }
    }

    /// Insert a freshly compiled entry and evict least-recently-used
    /// plans beyond [`EvalConfig::demand_plan_cache`] (clamped to ≥ 1).
    /// Returns the number of plans evicted.
    fn insert_query_plan(&mut self, key: PlanKey, entry: QueryEntry) -> usize {
        self.query_plans.insert(key, entry);
        self.query_lru.push(key);
        let bound = self.config.demand_plan_cache.max(1);
        let mut evicted = 0;
        while self.query_lru.len() > bound {
            let victim = self.query_lru.remove(0);
            self.evict_plan(victim);
            evicted += 1;
        }
        evicted
    }

    /// Drop one cached plan, reclaiming the memory of its
    /// adorned/magic relations. Any other retained fixpoint reading
    /// one of the reclaimed relations (plans can share demanded
    /// sub-adornments) goes cold and re-derives on its next use.
    fn evict_plan(&mut self, key: PlanKey) {
        let _evict_span = self.config.trace.then(|| {
            lps_trace::span("demand_evict")
                .arg("pred", self.pred_name(key.0))
                .arg("mask", key.1)
        });
        let Some(entry) = self.query_plans.remove(&key) else {
            return;
        };
        if let Some(pos) = self.query_lru.iter().position(|&k| k == key) {
            self.query_lru.remove(pos);
        }
        if let QueryEntry::Demand(plan) = entry {
            for &p in &plan.space {
                let arity = self.preds.info(p).arity;
                self.full[p.index()] = Relation::new(arity);
                self.delta[p.index()] = Relation::new(arity);
            }
            self.invalidate_overlapping(&plan.space);
            self.release_plan_preds(&plan.space, key.0);
        } else {
            self.release_plan_preds(&[], key.0);
        }
    }

    /// Recycle the registry slots an evicted plan no longer needs: its
    /// demand-space predicates, plus — when `key_pred` is a dedicated
    /// conjunctive shape head — the shape predicate itself (its
    /// [`Engine::conj_shapes`] naming entry is dropped along with it).
    /// A slot is released only when no surviving cached plan references
    /// it (plans can share demanded sub-adornments), so recycling never
    /// pulls a relation out from under a retained fixpoint.
    fn release_plan_preds(&mut self, space: &[PredId], key_pred: PredId) {
        let mut candidates: Vec<PredId> = space.to_vec();
        let shape_name = self
            .conj_shapes
            .iter()
            .find(|(_, &p)| p == key_pred)
            .map(|(name, _)| name.clone());
        if let Some(name) = shape_name {
            self.conj_shapes.remove(&name);
            candidates.push(key_pred);
        }
        for p in candidates {
            let referenced = self.query_plans.values().any(|e| match e {
                QueryEntry::Demand(pl) => pl.space.contains(&p) || pl.tracked.contains(&p),
                QueryEntry::Fallback => false,
            });
            if !referenced {
                // Leave the slot's relations empty so a re-register at
                // a different arity can swap them cleanly
                // ([`Engine::sync_relation_slots`]).
                let i = p.index();
                if i < self.full.len() {
                    let arity = self.preds.info(p).arity;
                    self.edb[i] = Relation::new(arity);
                    self.full[i] = Relation::new(arity);
                    self.delta[i] = Relation::new(arity);
                    self.pending[i] = Relation::new(arity);
                    self.edb_synced[i] = 0;
                }
                self.preds.release(p);
            }
        }
    }

    /// Put every retained fixpoint that reads one of `cleared`'s
    /// relations back to cold: its next query re-derives from scratch.
    fn invalidate_overlapping(&mut self, cleared: &[PredId]) {
        for entry in self.query_plans.values_mut() {
            if let QueryEntry::Demand(plan) = entry {
                if plan.live && plan.tracked.iter().any(|p| cleared.contains(p)) {
                    plan.live = false;
                }
            }
        }
    }

    /// Put every retained demand fixpoint back to cold (a batch run
    /// rebuilt the relation vectors out from under them).
    fn invalidate_retained_spaces(&mut self) {
        for entry in self.query_plans.values_mut() {
            if let QueryEntry::Demand(plan) = entry {
                plan.live = false;
            }
        }
    }

    /// Stratify and compile a magic-rewritten rule set, sizing the
    /// relation vectors for the predicates the rewrite registered.
    fn compile_rewritten(&mut self, rules: &[Rule]) -> Result<CompiledProgram, EngineError> {
        self.sync_relation_slots();
        let cost_on = self.refresh_planner_stats();
        let names = {
            let store = &self.store;
            let preds = &self.preds;
            move |p: PredId| store.symbols().name(preds.info(p).name).to_owned()
        };
        let growable: FxHashSet<PredId> = self.preds.ids().collect();
        let program = compile_program(
            rules,
            self.preds.len(),
            &self.preds,
            &names,
            &growable,
            self.config.set_universe,
            cost_on.then(|| self.stats_cache.current()),
        )?;
        self.account_compile(program.reorders_applied, program.estimated_rows);
        Ok(program)
    }

    /// Evaluate one ad-hoc rule against the (materialized) relations:
    /// used by [`Engine::query_rule`] once a model exists.
    fn eval_single_rule(&mut self, rule: &Rule) -> Result<EvalStats, EngineError> {
        self.eval_single_rule_on(rule, false)
    }

    /// [`Engine::eval_single_rule`], targeting either the live model
    /// (`shadow = false`) or the shadow fallback model (`shadow =
    /// true`, for non-monotone conjunctive goals answered without
    /// disturbing the live relations).
    fn eval_single_rule_on(&mut self, rule: &Rule, shadow: bool) -> Result<EvalStats, EngineError> {
        let cost_on = self.refresh_planner_stats();
        let names = {
            let store = &self.store;
            let preds = &self.preds;
            move |p: PredId| store.symbols().name(preds.info(p).name).to_owned()
        };
        // Body relations are fixed during this evaluation: no delta
        // variants, no quantifier triggers.
        let cr = compile_rule(
            rule,
            &self.preds,
            &names,
            &FxHashSet::default(),
            self.config.set_universe,
            cost_on.then(|| self.stats_cache.current()),
        )?;
        self.account_compile(cr.reorders, cr.estimated_rows);
        let (full, delta) = if shadow {
            (&mut self.fallback_full, &mut self.fallback_delta)
        } else {
            (&mut self.full, &mut self.delta)
        };
        let h = rule.head.index();
        let arity = rule.head_args.len();
        if full[h].arity() != arity {
            full[h] = Relation::new(arity);
            delta[h] = Relation::new(arity);
        } else {
            full[h].clear();
            delta[h].clear();
        }
        for &(p, m, is_delta) in &cr.index_requests {
            full[p.index()].ensure_index(m);
            if is_delta {
                delta[p.index()].ensure_index(m);
            }
        }
        let stats = run_stratum(
            &mut self.store,
            full,
            delta,
            &[&cr],
            &[],
            &self.config,
            StratumStart::Batch,
            &mut self.exec,
            None,
        )?;
        if !shadow {
            self.stats_cache.invalidate();
        }
        Ok(stats)
    }

    /// Drop the per-adornment plan cache when the universe policy it
    /// was compiled under changed, and enforce a shrunken cache bound.
    /// Returns the number of bound-shrink evictions (policy-change
    /// clears recompile everything and are not eviction-counted).
    fn refresh_query_cache_policy(&mut self) -> usize {
        if self.query_policy != self.config.set_universe
            || self.query_planner != self.config.cost_planner
        {
            self.clear_query_plans();
            self.query_policy = self.config.set_universe;
            self.query_planner = self.config.cost_planner;
        }
        let bound = self.config.demand_plan_cache.max(1);
        let mut evicted = 0;
        while self.query_lru.len() > bound {
            let victim = self.query_lru.remove(0);
            self.evict_plan(victim);
            evicted += 1;
        }
        evicted
    }

    /// Bring extensional facts into the shared `full` relations
    /// without running the program — the demand pipeline reads base
    /// predicates (and the EDB bridges of adorned predicates) from
    /// `full`. In a session with no materialized model, `full` holds
    /// nothing else for original predicates, so this is exactly the
    /// EDB image; a later batch run rebuilds `full` from the EDB
    /// regardless. EDB relations are append-only (until
    /// [`Engine::reset_facts`] drops them and resets the cursors), so
    /// a per-predicate synced-row cursor makes repeat syncs — one per
    /// demand query — O(new facts), not O(EDB).
    fn sync_edb_to_full(&mut self) {
        for i in 0..self.preds.len() {
            let len = self.edb[i].len();
            for r in self.edb_synced[i] as usize..len {
                let tuple = self.edb[i].row(r as u32);
                self.full[i].insert(tuple);
            }
            self.edb_synced[i] = len as u32;
        }
    }

    /// Size the per-predicate relation vectors up to the registry —
    /// needed after the magic rewrite registers adorned predicates
    /// directly in the registry.
    fn sync_relation_slots(&mut self) {
        // Recycled registry slots (plan eviction) may have been
        // re-registered at a different arity; refresh their relations.
        // Eviction already emptied them, so nothing can be lost — the
        // `is_empty` guard is belt and braces.
        for i in 0..self.full.len() {
            let arity = self.preds.info(PredId::from_index(i)).arity;
            if self.full[i].arity() != arity && self.full[i].is_empty() {
                self.edb[i] = Relation::new(arity);
                self.full[i] = Relation::new(arity);
                self.delta[i] = Relation::new(arity);
                self.pending[i] = Relation::new(arity);
                self.edb_synced[i] = 0;
            }
        }
        for i in self.full.len()..self.preds.len() {
            let arity = self.preds.info(PredId::from_index(i)).arity;
            self.edb.push(Relation::new(arity));
            self.full.push(Relation::new(arity));
            self.delta.push(Relation::new(arity));
            self.pending.push(Relation::new(arity));
            self.edb_synced.push(0);
        }
    }

    /// The rows of `pred` matching the bound positions, as one flat
    /// [`RowSet`] — via an on-demand index over the bound columns, so
    /// retrieval out of a large (retained) relation is O(matching
    /// rows), not O(relation). `mask`/`key` are the bound positions
    /// and values in ascending column order; the first `skip` columns
    /// of each row are dropped (the lifted seed columns of conjunctive
    /// answers).
    fn lookup_rows(&mut self, pred: PredId, mask: ColMask, key: &[TermId], skip: usize) -> RowSet {
        let mut out = RowSet::new(self.preds.info(pred).arity - skip);
        if mask == 0 {
            for row in self.full[pred.index()].iter() {
                out.push(&row[skip..]);
            }
            return out;
        }
        self.full[pred.index()].ensure_index(mask);
        let rel = &self.full[pred.index()];
        for &r in rel.lookup(mask, key) {
            out.push(&rel.row(r)[skip..]);
        }
        out
    }

    /// [`Engine::lookup_rows`] keyed by an `Option`-per-position
    /// argument vector.
    fn filter_rows(&mut self, pred: PredId, args: &[Option<TermId>]) -> RowSet {
        let mask = magic::adornment_of(args);
        let key: Vec<TermId> = args.iter().filter_map(|a| *a).collect();
        self.lookup_rows(pred, mask, &key, 0)
    }

    /// All rows of `pred` as an owned [`RowSet`].
    fn collect_rows(&self, pred: PredId) -> RowSet {
        let mut out = RowSet::new(self.preds.info(pred).arity);
        for row in self.rows(pred) {
            out.push(row);
        }
        out
    }

    /// Materialize the bounded powerset universe if configured. Run
    /// before every evaluation pass: idempotent, and monotone in the
    /// atom domain, so incremental updates that intern new atoms extend
    /// the universe in place.
    fn materialize_universe(&mut self) -> Result<(), EngineError> {
        if let SetUniverse::ActiveSubsets { max_card } = self.config.set_universe {
            let atoms: Vec<TermId> = self
                .store
                .ids()
                .filter(|&id| self.store.is_atomic(id))
                .collect();
            if atoms.len() > MAX_POWERSET_ATOMS {
                return Err(EngineError::UniverseTooLarge {
                    atoms: atoms.len(),
                    max: MAX_POWERSET_ATOMS,
                });
            }
            setops::subsets_up_to(&mut self.store, &atoms, max_card);
        }
        Ok(())
    }

    /// Stratify and compile the rule set, caching the result. A no-op
    /// when a cache built under the current universe policy exists.
    fn prepare(&mut self) -> Result<(), EngineError> {
        if self.prepared.as_ref().is_some_and(|p| {
            p.policy == self.config.set_universe && p.cost_planner == self.config.cost_planner
        }) {
            return Ok(());
        }
        let cost_on = self.refresh_planner_stats();
        // Every registered predicate can gain facts later in the
        // session, so every positive literal gets a delta variant and
        // every quantifier-inner predicate is a re-evaluation trigger
        // (in batch runs the extra variants skip on empty deltas).
        let growable: FxHashSet<PredId> = self.preds.ids().collect();
        let names = {
            let store = &self.store;
            let preds = &self.preds;
            move |p: PredId| store.symbols().name(preds.info(p).name).to_owned()
        };
        let program = compile_program(
            &self.rules,
            self.preds.len(),
            &self.preds,
            &names,
            &growable,
            self.config.set_universe,
            cost_on.then(|| self.stats_cache.current()),
        )?;
        self.account_compile(program.reorders_applied, program.estimated_rows);

        self.prepared = Some(Prepared {
            program,
            policy: self.config.set_universe,
            cost_planner: self.config.cost_planner,
        });
        if self.state == EngineState::Unprepared {
            self.state = EngineState::Prepared;
        }
        Ok(())
    }

    /// Batch evaluation: rebuild the model from the EDB and run every
    /// stratum to fixpoint with the cached plans.
    fn run_batch(&mut self) -> Result<EvalStats, EngineError> {
        self.materialize_universe()?;
        self.prepare()?;
        // The rebuild below resets every relation — including retained
        // demand spaces, whose plans must go cold.
        self.invalidate_retained_spaces();
        let mut stats = EvalStats::default();

        // Reset the model to the EDB; loaded facts count as derived
        // (they are part of `T_P ↑ ω`'s base).
        for i in 0..self.preds.len() {
            self.full[i] = self.edb[i].clone();
            stats.facts_derived += self.edb[i].len();
            self.delta[i].clear();
            self.pending[i].clear();
        }

        let program = &self.prepared.as_ref().expect("prepare() just ran").program;
        for &(pred, mask, is_delta) in &program.index_requests {
            self.full[pred.index()].ensure_index(mask);
            if is_delta {
                self.delta[pred.index()].ensure_index(mask);
            }
        }

        // Ground-head fact rules load directly; everything else
        // evaluates per stratum.
        for &i in &program.fact_rules {
            let cr = &program.compiled[i];
            let tuple: Vec<TermId> = ground_head_tuple(&cr.rule);
            if self.full[cr.rule.head.index()].insert(&tuple) {
                stats.facts_derived += 1;
            }
        }

        for s in 0..program.strat.num_strata {
            let stratum_stats = run_stratum(
                &mut self.store,
                &mut self.full,
                &mut self.delta,
                &program.regular(s),
                &program.grouping(s),
                &self.config,
                StratumStart::Batch,
                &mut self.exec,
                None,
            )?;
            stats.absorb(stratum_stats);
        }

        self.finish(stats)
    }

    /// Incremental update: splice the pending facts into the model,
    /// then continue the semi-naive fixpoint from the lowest affected
    /// stratum with the deltas seeded from exactly those new tuples.
    fn update_incremental(&mut self) -> Result<EvalStats, EngineError> {
        self.materialize_universe()?;
        let npreds = self.preds.len();
        let changed: Vec<PredId> = (0..npreds)
            .map(PredId::from_index)
            .filter(|p| !self.pending[p.index()].is_empty())
            .collect();
        let universe_grew = self.store.set_ids().len() > self.sets_at_materialize;

        let (start, fallback, num_strata) = {
            let program = &self
                .prepared
                .as_ref()
                .expect("a materialized session is prepared")
                .program;
            // New interned sets can re-fire universe-enumerating rules
            // even below the lowest fact-affected stratum;
            // `restart_stratum` folds that in.
            let start = program.restart_stratum(changed.iter().copied(), universe_grew);
            let fallback =
                start.is_some_and(|s0| program.max_nonmono_stratum.is_some_and(|m| m >= s0));
            (start, fallback, program.strat.num_strata)
        };
        if fallback {
            // Negation or grouping at/above the restart stratum: a
            // monotone continuation cannot retract, so recompute from
            // the EDB (which already includes the pending facts).
            return self.run_batch();
        }

        let mut stats = EvalStats::default();
        // Splice pending facts into the model, remembering each
        // relation's previous length: rows past the snapshot are this
        // update's seed set.
        let snapshot: Vec<u32> = (0..npreds).map(|i| self.full[i].len() as u32).collect();
        for &p in &changed {
            let i = p.index();
            for r in 0..self.pending[i].len() as u32 {
                let tuple = self.pending[i].row(r);
                if self.full[i].insert(tuple) {
                    stats.delta_seed_facts += 1;
                    stats.facts_derived += 1;
                }
            }
            self.pending[i].clear();
        }

        if let Some(s0) = start {
            let sets_baseline = self.sets_at_materialize;
            for s in s0..num_strata {
                // Re-seed the deltas with everything this update has
                // added so far (pending facts plus lower-stratum
                // derivations) — but only for the predicates this
                // stratum's rules actually read; the delta variants and
                // quantifier triggers consult no others.
                for d in self.delta.iter_mut() {
                    d.clear();
                }
                let program = &self.prepared.as_ref().expect("checked above").program;
                for &p in program.strat.reads(s) {
                    let i = p.index();
                    for r in snapshot[i]..self.full[i].len() as u32 {
                        let tuple = self.full[i].row(r);
                        self.delta[i].insert(tuple);
                    }
                }
                let stratum_stats = run_stratum(
                    &mut self.store,
                    &mut self.full,
                    &mut self.delta,
                    &program.regular(s),
                    &[],
                    &self.config,
                    StratumStart::Seeded { sets_baseline },
                    &mut self.exec,
                    None,
                )?;
                stats.absorb(stratum_stats);
            }
            for d in self.delta.iter_mut() {
                d.clear();
            }
        }

        stats.incremental_runs = 1;
        self.finish(stats)
    }

    /// Common epilogue of every evaluation pass.
    fn finish(&mut self, mut stats: EvalStats) -> Result<EvalStats, EngineError> {
        stats.absorb(self.take_planner_counters());
        self.stats_cache.invalidate();
        self.state = EngineState::Materialized;
        self.sets_at_materialize = self.store.set_ids().len();
        self.config_at_materialize = self.config;
        stats.seal_misestimate();
        self.last_stats = stats;
        self.cumulative_stats.absorb(stats);
        Ok(stats)
    }

    /// The full relation of a predicate (after [`Engine::run`]).
    pub fn relation(&self, pred: PredId) -> &Relation {
        &self.full[pred.index()]
    }

    /// Whether a ground tuple holds.
    pub fn holds(&self, pred: PredId, tuple: &[TermId]) -> bool {
        self.full[pred.index()].contains(tuple)
    }

    /// Iterate over the tuples of a predicate.
    pub fn tuples(&self, pred: PredId) -> impl Iterator<Item = &[TermId]> {
        self.rows(pred)
    }

    /// Borrowing, exact-size iterator over a predicate's tuples: rows
    /// are read straight out of the relation arena, nothing is
    /// allocated, and `len()` is O(1) — the cheap counterpart of
    /// [`Engine::extension`] for callers that only need to walk or
    /// count.
    pub fn rows(&self, pred: PredId) -> Rows<'_> {
        Rows {
            rel: &self.full[pred.index()],
            next: 0,
        }
    }

    /// Extract a predicate's extension as owned [`Value`] rows, sorted
    /// — a stable form for tests and for the Theorem-10/11 equivalence
    /// harness. Prefer [`Engine::rows`] when borrowing suffices.
    pub fn extension(&self, pred: PredId) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self
            .rows(pred)
            .map(|t| {
                t.iter()
                    .map(|&id| Value::from_store(&self.store, id))
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    }
}

/// Run one magic-rewritten program to fixpoint: optionally clear its
/// relation space (`clear_space` — the retention-off semantics;
/// retained plans *rebase* over whatever sound rows the space already
/// holds), satisfy its index requests, plant the explicit magic seed
/// (if any) and the ground fact rules (counting the real insertions
/// that seed magic predicates), then drive every stratum. Shared by
/// [`Engine::query`] / [`Engine::query_rule`] (cached plans) and the
/// one-shot conjunctive pipeline. A free function over the engine's
/// disjoint fields so callers can keep a borrow on the plan itself.
#[allow(clippy::too_many_arguments)]
fn run_demand_program(
    store: &mut TermStore,
    full: &mut [Relation],
    delta: &mut [Relation],
    config: &EvalConfig,
    program: &CompiledProgram,
    space: &[PredId],
    magic_preds: &[PredId],
    seed: Option<(PredId, &[TermId])>,
    clear_space: bool,
    exec: &mut ParExec,
    profiler: Option<&StepProfiler>,
) -> Result<EvalStats, EngineError> {
    let mut stats = EvalStats::default();
    if clear_space {
        for &p in space {
            full[p.index()].clear();
            delta[p.index()].clear();
        }
    }
    for &(p, m, is_delta) in &program.index_requests {
        full[p.index()].ensure_index(m);
        if is_delta {
            delta[p.index()].ensure_index(m);
        }
    }
    if let Some((magic, tuple)) = seed {
        // Count only real insertions: a duplicate seed (same constant
        // arriving through a fact rule below, or — on the retained
        // path — a repeated query) adds no demand.
        if full[magic.index()].insert(tuple) {
            stats.facts_derived += 1;
            stats.magic_facts_seeded += 1;
        }
    }
    for &i in &program.fact_rules {
        let cr = &program.compiled[i];
        let tuple: Vec<TermId> = ground_head_tuple(&cr.rule);
        if full[cr.rule.head.index()].insert(&tuple) {
            stats.facts_derived += 1;
            if magic_preds.contains(&cr.rule.head) {
                stats.magic_facts_seeded += 1;
            }
        }
    }
    for s in 0..program.strat.num_strata {
        debug_assert!(
            program.grouping(s).is_empty(),
            "the rewrite excludes grouping"
        );
        let stratum_stats = run_stratum(
            store,
            full,
            delta,
            &program.regular(s),
            &[],
            config,
            StratumStart::Batch,
            exec,
            profiler,
        )?;
        stats.absorb(stratum_stats);
    }
    Ok(stats)
}

/// Assemble a [`QueryPlan`] from a compiled rewrite: derives the
/// tracked predicate set (the rewrite's space plus every original
/// predicate its strata read) that the retained-space baselines are
/// recorded over. The plan starts cold (`live == false`).
fn make_plan(program: CompiledProgram, mp: magic::MagicProgram) -> QueryPlan {
    let mut tracked: Vec<PredId> = mp.space.clone();
    for s in 0..program.strat.num_strata {
        for &p in program.strat.reads(s) {
            if !tracked.contains(&p) {
                tracked.push(p);
            }
        }
    }
    QueryPlan {
        program,
        magic_seed: mp.magic_seed,
        answer: mp.answer,
        space: mp.space,
        magic_preds: mp.magic_preds,
        adornments: mp.adornments,
        tracked,
        live: false,
        base_lens: Vec::new(),
        sets_base: 0,
    }
}

/// The ground tuple of a fact rule's head (`is_fact` guarantees it).
fn ground_head_tuple(rule: &Rule) -> Vec<TermId> {
    rule.head_args
        .iter()
        .map(|p| match p {
            crate::pattern::Pattern::Ground(id) => *id,
            _ => unreachable!("is_fact guarantees ground head"),
        })
        .collect()
}

/// Borrowing tuple iterator returned by [`Engine::rows`].
#[derive(Clone, Debug)]
pub struct Rows<'a> {
    rel: &'a Relation,
    next: u32,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [TermId];

    fn next(&mut self) -> Option<&'a [TermId]> {
        if (self.next as usize) < self.rel.len() {
            let row = self.rel.row(self.next);
            self.next += 1;
            Some(row)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.rel.len() - self.next as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Rows<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, VarId};
    use crate::rule::{BodyLit, Builtin, GroupSpec, QuantGroup};

    fn v(i: u32) -> Pattern {
        Pattern::Var(VarId(i))
    }

    fn plain_rule(head: PredId, head_args: Vec<Pattern>, outer: Vec<BodyLit>, nv: usize) -> Rule {
        Rule {
            head,
            head_args,
            group: None,
            outer,
            quant: None,
            num_vars: nv,
            var_names: (0..nv).map(|i| format!("V{i}")).collect(),
            var_sorts: vec![],
        }
    }

    #[test]
    fn transitive_closure() {
        let mut e = Engine::new(EvalConfig::default());
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let ids: Vec<TermId> = (0..5)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(edge, vec![v(0), v(1)]),
                BodyLit::Pos(path, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        let stats = e.run().unwrap();
        // 4+3+2+1 = 10 paths.
        assert_eq!(e.tuples(path).count(), 10);
        assert!(e.holds(path, &[ids[0], ids[4]]));
        assert!(!e.holds(path, &[ids[4], ids[0]]));
        assert!(stats.iterations >= 3, "chain of length 4 needs rounds");
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let build = |strategy| {
            let mut e = Engine::new(EvalConfig {
                strategy,
                ..EvalConfig::default()
            });
            let edge = e.pred("edge", 2);
            let path = e.pred("path", 2);
            let ids: Vec<TermId> = (0..6)
                .map(|i| e.store_mut().atom(&format!("n{i}")))
                .collect();
            for i in 0..5 {
                e.fact(edge, vec![ids[i], ids[i + 1]]).unwrap();
            }
            e.fact(edge, vec![ids[5], ids[0]]).unwrap(); // cycle
            e.rule(plain_rule(
                path,
                vec![v(0), v(1)],
                vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
                2,
            ))
            .unwrap();
            e.rule(plain_rule(
                path,
                vec![v(0), v(2)],
                vec![
                    BodyLit::Pos(edge, vec![v(0), v(1)]),
                    BodyLit::Pos(path, vec![v(1), v(2)]),
                ],
                3,
            ))
            .unwrap();
            e.run().unwrap();
            e.extension(path)
        };
        let naive = build(crate::config::FixpointStrategy::Naive);
        let semi = build(crate::config::FixpointStrategy::SemiNaive);
        assert_eq!(naive, semi);
        assert_eq!(naive.len(), 36, "complete digraph on the 6-cycle");
    }

    #[test]
    fn example_1_disj_via_quantifiers() {
        // disj(X, Y) :- pair(X, Y), (∀u∈X)(∀w∈Y) u != w.
        let mut e = Engine::new(EvalConfig::default());
        let pair = e.pred("pair", 2);
        let disj = e.pred("disj", 2);
        let st = e.store_mut();
        let a = st.atom("a");
        let b = st.atom("b");
        let c = st.atom("c");
        let s_ab = st.set(vec![a, b]);
        let s_c = st.set(vec![c]);
        let s_bc = st.set(vec![b, c]);
        let s_empty = st.empty_set();
        e.fact(pair, vec![s_ab, s_c]).unwrap();
        e.fact(pair, vec![s_ab, s_bc]).unwrap();
        e.fact(pair, vec![s_empty, s_bc]).unwrap();
        e.rule(Rule {
            head: disj,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(pair, vec![v(0), v(1)])],
            quant: Some(QuantGroup {
                binders: vec![(VarId(2), v(0)), (VarId(3), v(1))],
                inner: vec![BodyLit::Builtin(Builtin::Ne, vec![v(2), v(3)])],
            }),
            num_vars: 4,
            var_names: vec!["X".into(), "Y".into(), "U".into(), "W".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(disj, &[s_ab, s_c]));
        assert!(!e.holds(disj, &[s_ab, s_bc]), "{{a,b}} ∩ {{b,c}} ≠ ∅");
        assert!(e.holds(disj, &[s_empty, s_bc]), "∅ is disjoint from all");
    }

    #[test]
    fn example_4_unnest() {
        // s(X, Y) :- r(X, Ys), Y in Ys.
        let mut e = Engine::new(EvalConfig::default());
        let r = e.pred("r", 2);
        let s = e.pred("s", 2);
        let st = e.store_mut();
        let x1 = st.atom("x1");
        let p = st.atom("p");
        let q = st.atom("q");
        let set_pq = st.set(vec![p, q]);
        e.fact(r, vec![x1, set_pq]).unwrap();
        e.rule(Rule {
            head: s,
            head_args: vec![v(0), v(2)],
            group: None,
            outer: vec![
                BodyLit::Pos(r, vec![v(0), v(1)]),
                BodyLit::Builtin(Builtin::In, vec![v(2), v(1)]),
            ],
            quant: None,
            num_vars: 3,
            var_names: vec!["X".into(), "Ys".into(), "Y".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(s, &[x1, p]));
        assert!(e.holds(s, &[x1, q]));
        assert_eq!(e.tuples(s).count(), 2);
    }

    #[test]
    fn stratified_negation() {
        // unreachable(X) :- node(X), not reach(X).
        let mut e = Engine::new(EvalConfig::default());
        let node = e.pred("node", 1);
        let edge = e.pred("edge", 2);
        let reach = e.pred("reach", 1);
        let unreach = e.pred("unreachable", 1);
        let ids: Vec<TermId> = (0..4)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for &n in &ids {
            e.fact(node, vec![n]).unwrap();
        }
        e.fact(edge, vec![ids[0], ids[1]]).unwrap();
        e.fact(reach, vec![ids[0]]).unwrap();
        e.rule(plain_rule(
            reach,
            vec![v(1)],
            vec![
                BodyLit::Pos(reach, vec![v(0)]),
                BodyLit::Pos(edge, vec![v(0), v(1)]),
            ],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            unreach,
            vec![v(0)],
            vec![
                BodyLit::Pos(node, vec![v(0)]),
                BodyLit::Neg(reach, vec![v(0)]),
            ],
            1,
        ))
        .unwrap();
        e.run().unwrap();
        assert!(!e.holds(unreach, &[ids[0]]));
        assert!(!e.holds(unreach, &[ids[1]]));
        assert!(e.holds(unreach, &[ids[2]]));
        assert!(e.holds(unreach, &[ids[3]]));
    }

    #[test]
    fn ldl_grouping_head() {
        // owns(P, <C>) :- car(P, C).
        let mut e = Engine::new(EvalConfig::default());
        let car = e.pred("car", 2);
        let owns = e.pred("owns", 2);
        let st = e.store_mut();
        let alice = st.atom("alice");
        let bob = st.atom("bob");
        let c1 = st.atom("c1");
        let c2 = st.atom("c2");
        let c3 = st.atom("c3");
        e.fact(car, vec![alice, c1]).unwrap();
        e.fact(car, vec![alice, c2]).unwrap();
        e.fact(car, vec![bob, c3]).unwrap();
        e.rule(Rule {
            head: owns,
            head_args: vec![v(0), v(1)],
            group: Some(GroupSpec {
                arg_pos: 1,
                var: VarId(1),
            }),
            outer: vec![BodyLit::Pos(car, vec![v(0), v(1)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["P".into(), "C".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        let set_alice = e.store_mut().set(vec![c1, c2]);
        let set_bob = e.store_mut().set(vec![c3]);
        assert!(e.holds(owns, &[alice, set_alice]));
        assert!(e.holds(owns, &[bob, set_bob]));
        assert_eq!(e.tuples(owns).count(), 2);
    }

    #[test]
    fn example_5_sum_via_disjoint_union() {
        // sum({}, 0).
        // sum(X, N) :- num_set(X), X = {N}.
        // sum(Z, K) :- num_set(Z), disj_union(X, Y, Z), X != {},
        //              Y != {}, sum(X, M), sum(Y, N), add(M, N, K).
        // (num_set bounds the recursion to subsets that occur; here we
        //  drive it with every subset decomposition instead, exactly as
        //  the paper's recursion does, seeded by sum({n}, n).)
        let mut e = Engine::new(EvalConfig::default());
        let num_set = e.pred("num_set", 1);
        let sum = e.pred("sum", 2);
        let st = e.store_mut();
        let nums: Vec<TermId> = [3i64, 5, 9].iter().map(|&n| st.int(n)).collect();
        let zero = st.int(0);
        let whole = st.set(nums.clone());
        let empty = st.empty_set();
        e.fact(num_set, vec![whole]).unwrap();
        // Close num_set under disjoint decomposition so the recursion
        // has its subsets available.
        e.rule(Rule {
            head: num_set,
            head_args: vec![v(1)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::DisjUnion, vec![v(1), v(2), v(0)]),
            ],
            quant: None,
            num_vars: 3,
            var_names: vec!["Z".into(), "X".into(), "Y".into()],
            var_sorts: vec![],
        })
        .unwrap();
        // sum({}, 0).
        e.rule(Rule {
            head: sum,
            head_args: vec![Pattern::Ground(empty), Pattern::Ground(zero)],
            group: None,
            outer: vec![],
            quant: None,
            num_vars: 0,
            var_names: vec![],
            var_sorts: vec![],
        })
        .unwrap();
        // sum(X, N) :- num_set(X), X = {N}.
        e.rule(Rule {
            head: sum,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::Eq, vec![v(0), Pattern::Set(Box::new([v(1)]))]),
            ],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "N".into()],
            var_sorts: vec![],
        })
        .unwrap();
        // The recursive clause.
        e.rule(Rule {
            head: sum,
            head_args: vec![v(0), v(6)],
            group: None,
            outer: vec![
                BodyLit::Pos(num_set, vec![v(0)]),
                BodyLit::Builtin(Builtin::DisjUnion, vec![v(1), v(2), v(0)]),
                BodyLit::Pos(sum, vec![v(1), v(4)]),
                BodyLit::Pos(sum, vec![v(2), v(5)]),
                BodyLit::Builtin(Builtin::Add, vec![v(4), v(5), v(6)]),
            ],
            quant: None,
            num_vars: 7,
            var_names: (0..7).map(|i| format!("V{i}")).collect(),
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        let seventeen = e.store_mut().int(17);
        assert!(e.holds(sum, &[whole, seventeen]));
        // Sums are functional: one value per set.
        let whole_sums: Vec<_> = e
            .tuples(sum)
            .filter(|t| t[0] == whole)
            .map(|t| t[1])
            .collect();
        assert_eq!(whole_sums, vec![seventeen]);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut e = Engine::new(EvalConfig::default());
        let p = e.pred("p", 2);
        let a = e.store_mut().atom("a");
        let err = e.fact(p, vec![a]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
    }

    fn tc_engine() -> (Engine, PredId, PredId, Vec<TermId>) {
        let mut e = Engine::new(EvalConfig::default());
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let ids: Vec<TermId> = (0..5)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(edge, vec![v(0), v(1)]),
                BodyLit::Pos(path, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        (e, edge, path, ids)
    }

    #[test]
    fn second_run_is_a_cheap_noop() {
        // Regression: `run()` used to recompute (and with stale state,
        // corrupt) the model when called twice. Now an unchanged,
        // materialized session reports zero work and an identical
        // model.
        let (mut e, _, path, _) = tc_engine();
        e.run().unwrap();
        assert_eq!(e.state(), crate::engine::EngineState::Materialized);
        let before = e.extension(path);
        let cumulative = e.cumulative_stats();
        let stats = e.run().unwrap();
        assert_eq!(stats, EvalStats::default(), "no work on a reached fixpoint");
        assert_eq!(e.extension(path), before);
        assert_eq!(
            e.cumulative_stats(),
            cumulative,
            "the no-op run must not even touch the counters"
        );
    }

    #[test]
    fn incremental_update_continues_from_the_retained_model() {
        let (mut e, edge, path, ids) = tc_engine();
        e.run().unwrap();
        // New edge n4 → n0 closes the ring: every ordered pair becomes
        // a path.
        e.fact(edge, vec![ids[4], ids[0]]).unwrap();
        assert_eq!(e.state(), crate::engine::EngineState::Dirty);
        let stats = e.update().unwrap();
        assert_eq!(stats.incremental_runs, 1);
        assert_eq!(stats.delta_seed_facts, 1);
        assert_eq!(e.rows(path).len(), 25, "closure of the 5-cycle");
        // Only the new tuples were derived: 1 seeded edge + 15 paths.
        assert_eq!(stats.facts_derived, 16);
        // And the model equals a from-scratch evaluation.
        let (mut fresh, fedge, fpath, fids) = tc_engine();
        fresh.fact(fedge, vec![fids[4], fids[0]]).unwrap();
        fresh.run().unwrap();
        assert_eq!(e.extension(path), fresh.extension(fpath));
        let inc: Vec<Vec<TermId>> = e.rows(path).map(<[_]>::to_vec).collect();
        let mut inc = inc;
        inc.sort();
        let mut batch: Vec<Vec<TermId>> = fresh.rows(fpath).map(<[_]>::to_vec).collect();
        batch.sort();
        assert_eq!(inc, batch, "bit-identical interned tuples");
    }

    #[test]
    fn config_change_after_run_voids_the_noop_shortcircuit() {
        let (mut e, _, path, _) = tc_engine();
        e.run().unwrap();
        e.config_mut().strategy = crate::config::FixpointStrategy::Naive;
        let stats = e.run().unwrap();
        assert!(
            stats.iterations > 0,
            "a changed config must rebuild, not return the stale model"
        );
        assert_eq!(e.rows(path).len(), 10);
        // Unchanged config short-circuits again.
        assert_eq!(e.run().unwrap(), EvalStats::default());
    }

    #[test]
    fn duplicate_fact_after_run_stays_clean() {
        let (mut e, edge, _, ids) = tc_engine();
        e.run().unwrap();
        // Re-adding a known fact queues nothing.
        e.fact(edge, vec![ids[0], ids[1]]).unwrap();
        assert_eq!(e.state(), crate::engine::EngineState::Materialized);
        assert_eq!(e.update().unwrap(), EvalStats::default());
    }

    #[test]
    fn update_with_negation_falls_back_to_a_sound_recompute() {
        // unreachable(X) :- node(X), not reach(X): a monotone
        // continuation cannot retract `unreachable(n2)` when a new edge
        // makes n2 reachable — the old engine silently kept it. The
        // session detects the non-monotone stratum and recomputes.
        let mut e = Engine::new(EvalConfig::default());
        let node = e.pred("node", 1);
        let edge = e.pred("edge", 2);
        let reach = e.pred("reach", 1);
        let unreach = e.pred("unreachable", 1);
        let ids: Vec<TermId> = (0..3)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for &n in &ids {
            e.fact(node, vec![n]).unwrap();
        }
        e.fact(edge, vec![ids[0], ids[1]]).unwrap();
        e.fact(reach, vec![ids[0]]).unwrap();
        e.rule(plain_rule(
            reach,
            vec![v(1)],
            vec![
                BodyLit::Pos(reach, vec![v(0)]),
                BodyLit::Pos(edge, vec![v(0), v(1)]),
            ],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            unreach,
            vec![v(0)],
            vec![
                BodyLit::Pos(node, vec![v(0)]),
                BodyLit::Neg(reach, vec![v(0)]),
            ],
            1,
        ))
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(unreach, &[ids[2]]));
        e.fact(edge, vec![ids[1], ids[2]]).unwrap();
        let stats = e.run().unwrap();
        assert_eq!(stats.incremental_runs, 0, "negation forces the fallback");
        assert!(e.holds(reach, &[ids[2]]));
        assert!(!e.holds(unreach, &[ids[2]]), "stale tuple retracted");
    }

    #[test]
    fn update_not_reading_changed_pred_is_trivial() {
        let (mut e, _, path, _) = tc_engine();
        e.run().unwrap();
        let before = e.rows(path).len();
        // `isolated` feeds no rule: the model is already the least
        // model of the enlarged database.
        let iso = e.pred("isolated", 1);
        let x = e.store_mut().atom("x");
        e.fact(iso, vec![x]).unwrap();
        let stats = e.update().unwrap();
        assert_eq!(stats.incremental_runs, 1);
        assert_eq!(stats.iterations, 0, "no stratum re-ran");
        assert!(e.holds(iso, &[x]));
        assert_eq!(e.rows(path).len(), before);
    }

    #[test]
    fn reset_facts_keeps_rules_and_compiled_plans() {
        let (mut e, edge, path, _) = tc_engine();
        e.run().unwrap();
        e.reset_facts();
        assert_eq!(e.state(), crate::engine::EngineState::Prepared);
        assert_eq!(e.rows(path).len(), 0);
        // Fresh facts evaluate under the cached plans.
        let (a, b) = {
            let st = e.store_mut();
            (st.atom("a"), st.atom("b"))
        };
        e.fact(edge, vec![a, b]).unwrap();
        e.run().unwrap();
        assert!(e.holds(path, &[a, b]));
        assert_eq!(e.rows(path).len(), 1);
    }

    #[test]
    fn rows_is_exact_size_and_matches_tuples() {
        let (mut e, _, path, _) = tc_engine();
        e.run().unwrap();
        let rows = e.rows(path);
        assert_eq!(rows.len(), 10);
        let collected: Vec<&[TermId]> = rows.collect();
        let via_tuples: Vec<&[TermId]> = e.tuples(path).collect();
        assert_eq!(collected, via_tuples);
    }

    #[test]
    fn grouping_update_falls_back_and_regroups() {
        // owns(P, <C>) :- car(P, C): grouping is non-monotone — adding
        // a car must *replace* alice's set, which only the fallback
        // recompute can do.
        let mut e = Engine::new(EvalConfig::default());
        let car = e.pred("car", 2);
        let owns = e.pred("owns", 2);
        let (alice, c1, c2) = {
            let st = e.store_mut();
            (st.atom("alice"), st.atom("c1"), st.atom("c2"))
        };
        e.fact(car, vec![alice, c1]).unwrap();
        e.rule(Rule {
            head: owns,
            head_args: vec![v(0), v(1)],
            group: Some(crate::rule::GroupSpec {
                arg_pos: 1,
                var: VarId(1),
            }),
            outer: vec![BodyLit::Pos(car, vec![v(0), v(1)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["P".into(), "C".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        e.fact(car, vec![alice, c2]).unwrap();
        let stats = e.update().unwrap();
        assert_eq!(stats.incremental_runs, 0, "grouping forces the fallback");
        let both = e.store_mut().set(vec![c1, c2]);
        let only_c1 = e.store_mut().set(vec![c1]);
        assert!(e.holds(owns, &[alice, both]));
        assert!(!e.holds(owns, &[alice, only_c1]), "old group retracted");
    }

    #[test]
    fn demand_query_answers_without_materializing() {
        let (mut e, _, path, ids) = tc_engine();
        let res = e.query(path, &[Some(ids[2]), None]).unwrap();
        assert_eq!(res.path, QueryPath::Demand);
        assert_ne!(e.state(), EngineState::Materialized);
        let rows = res.rows.sorted();
        assert_eq!(rows, vec![vec![ids[2], ids[3]], vec![ids[2], ids[4]]]);
        // The session never materialized the model: the path relation
        // holds only demand-space tuples, and `full` for `path` is
        // untouched.
        assert_eq!(e.rows(path).len(), 0);
        assert_eq!(res.stats.magic_facts_seeded, 1);
        assert!(res.stats.adornments_compiled >= 1);
        assert_eq!(res.stats.demand_fallbacks, 0);
    }

    #[test]
    fn demand_plan_is_cached_per_adornment() {
        let (mut e, _, path, ids) = tc_engine();
        let first = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert!(first.stats.adornments_compiled >= 1);
        assert_eq!(first.rows.len(), 4);
        // Same adornment, different constant: plan reused.
        let second = e.query(path, &[Some(ids[3]), None]).unwrap();
        assert_eq!(second.stats.adornments_compiled, 0);
        assert_eq!(second.rows, vec![vec![ids[3], ids[4]]]);
        // A different adornment compiles its own plan.
        let third = e.query(path, &[None, Some(ids[4])]).unwrap();
        assert!(third.stats.adornments_compiled >= 1);
        assert_eq!(third.rows.len(), 4);
        // Adding a rule invalidates every demand plan.
        let edge = e.lookup_pred("edge", 2).unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(1), v(0)])],
            2,
        ))
        .unwrap();
        let fourth = e.query(path, &[Some(ids[3]), None]).unwrap();
        assert!(fourth.stats.adornments_compiled >= 1, "plans recompiled");
        // Forward (n3,n4), reverse (n3,n2), and (n3,n3) via the cycle
        // edge(n3,n4) ∘ path(n4,n3).
        assert_eq!(fourth.rows.len(), 3);
    }

    #[test]
    fn demand_query_agrees_with_materialized_answers() {
        for args_mask in 0..4u32 {
            let (mut demand, _, dpath, dids) = tc_engine();
            let (mut batch, _, bpath, bids) = tc_engine();
            batch.run().unwrap();
            let args: Vec<Option<TermId>> = (0..2)
                .map(|i| (args_mask & (1 << i) != 0).then(|| dids[1 + i]))
                .collect();
            let bargs: Vec<Option<TermId>> = (0..2)
                .map(|i| (args_mask & (1 << i) != 0).then(|| bids[1 + i]))
                .collect();
            let got = demand.query(dpath, &args).unwrap();
            let want = batch.query(bpath, &bargs).unwrap();
            assert_eq!(got.path, QueryPath::Demand);
            assert_eq!(want.path, QueryPath::Materialized);
            assert_eq!(got.rows.sorted(), want.rows.sorted(), "mask {args_mask:#b}");
        }
    }

    #[test]
    fn query_on_materialized_session_reads_the_model() {
        let (mut e, edge, path, ids) = tc_engine();
        e.run().unwrap();
        let res = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(res.path, QueryPath::Materialized);
        assert_eq!(res.rows.len(), 4);
        assert_eq!(res.stats, EvalStats::default(), "pure model read");
        // Pending facts are reconciled (incrementally) before answering.
        e.fact(edge, vec![ids[4], ids[0]]).unwrap();
        let res = e.query(path, &[Some(ids[4]), None]).unwrap();
        assert_eq!(res.path, QueryPath::Materialized);
        assert_eq!(res.stats.incremental_runs, 1);
        assert_eq!(res.rows.len(), 5, "closure of the cycle from n4");
    }

    #[test]
    fn query_with_negation_falls_back_soundly() {
        let mut e = Engine::new(EvalConfig::default());
        let node = e.pred("node", 1);
        let edge = e.pred("edge", 2);
        let reach = e.pred("reach", 1);
        let unreach = e.pred("unreachable", 1);
        let ids: Vec<TermId> = (0..3)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for &n in &ids {
            e.fact(node, vec![n]).unwrap();
        }
        e.fact(edge, vec![ids[0], ids[1]]).unwrap();
        e.fact(reach, vec![ids[0]]).unwrap();
        e.rule(plain_rule(
            reach,
            vec![v(1)],
            vec![
                BodyLit::Pos(reach, vec![v(0)]),
                BodyLit::Pos(edge, vec![v(0), v(1)]),
            ],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            unreach,
            vec![v(0)],
            vec![
                BodyLit::Pos(node, vec![v(0)]),
                BodyLit::Neg(reach, vec![v(0)]),
            ],
            1,
        ))
        .unwrap();
        let res = e.query(unreach, &[Some(ids[2])]).unwrap();
        assert_eq!(res.path, QueryPath::Fallback);
        assert_eq!(res.stats.demand_fallbacks, 1);
        assert_eq!(res.rows, vec![vec![ids[2]]]);
        // The fallback materializes a *shadow* model: the session
        // itself stays in the demand regime.
        assert_eq!(
            e.state(),
            EngineState::Prepared,
            "shadow fallback leaves the session un-materialized"
        );
        // …so the monotone part still demand-evaluates.
        let res = e.query(reach, &[Some(ids[1])]).unwrap();
        assert_eq!(res.path, QueryPath::Demand);
        assert_eq!(res.rows, vec![vec![ids[1]]]);
        // A repeat non-monotone query reads the fresh shadow: no
        // re-materialization.
        let res = e.query(unreach, &[Some(ids[2])]).unwrap();
        assert_eq!(res.path, QueryPath::Fallback);
        assert_eq!(res.stats.facts_derived, 0, "shadow model is reused");
        assert_eq!(res.rows, vec![vec![ids[2]]]);
    }

    #[test]
    fn edb_only_query_needs_no_rewrite_rules_beyond_the_bridge() {
        let mut e = Engine::new(EvalConfig::default());
        let edge = e.pred("edge", 2);
        let (a, b, c) = {
            let st = e.store_mut();
            (st.atom("a"), st.atom("b"), st.atom("c"))
        };
        e.fact(edge, vec![a, b]).unwrap();
        e.fact(edge, vec![a, c]).unwrap();
        let res = e.query(edge, &[Some(a), None]).unwrap();
        assert_eq!(res.path, QueryPath::Demand);
        assert_eq!(res.rows.len(), 2);
        let res = e.query(edge, &[Some(b), None]).unwrap();
        assert!(res.rows.is_empty());
    }

    #[test]
    fn query_rule_compiles_conjunctive_goals() {
        let (mut e, edge, path, ids) = tc_engine();
        // ?- path(n0, Y), edge(Y, Z).  →  q(Y, Z) :- path(n0, Y), edge(Y, Z).
        let q = e.pred("query#goal", 2);
        let goal = plain_rule(
            q,
            vec![v(0), v(1)],
            vec![
                BodyLit::Pos(path, vec![Pattern::Ground(ids[0]), v(0)]),
                BodyLit::Pos(edge, vec![v(0), v(1)]),
            ],
            2,
        );
        let res = e.query_rule(goal.clone()).unwrap();
        assert_eq!(res.path, QueryPath::Demand);
        assert!(res.stats.magic_facts_seeded >= 1, "ground arg seeds demand");
        let rows = res.rows.sorted();
        assert_eq!(
            rows,
            vec![
                vec![ids[1], ids[2]],
                vec![ids[2], ids[3]],
                vec![ids[3], ids[4]],
            ]
        );
        // Same goal against the materialized model agrees.
        e.run().unwrap();
        let again = e.query_rule(goal).unwrap();
        assert_eq!(again.path, QueryPath::Materialized);
        assert_eq!(again.rows.sorted(), rows);
    }

    #[test]
    fn query_rule_does_not_double_count_cumulative_stats() {
        let (mut e, edge, path, ids) = tc_engine();
        e.run().unwrap();
        let base = e.cumulative_stats();
        // Dirty session: query_rule first reconciles incrementally
        // (self-accounting), then evaluates the goal. The cumulative
        // counters must grow by exactly this call's combined work.
        e.fact(edge, vec![ids[4], ids[0]]).unwrap();
        let q = e.pred("query#goal", 1);
        let goal = plain_rule(
            q,
            vec![v(1)],
            vec![BodyLit::Pos(path, vec![Pattern::Ground(ids[0]), v(1)])],
            2,
        );
        let res = e.query_rule(goal).unwrap();
        assert_eq!(res.path, QueryPath::Materialized);
        assert_eq!(res.rows.len(), 5, "the cycle closes every pair");
        assert_eq!(
            e.cumulative_stats().facts_derived,
            base.facts_derived + res.stats.facts_derived
        );
        assert_eq!(
            e.cumulative_stats().iterations,
            base.iterations + res.stats.iterations
        );
    }

    #[test]
    fn query_after_reset_facts_evicts_plans_and_stays_correct() {
        // `reset_facts` routes demand plans through the eviction path:
        // their retained fixpoints are meaningless without the facts,
        // and reclaiming the relation slots is what keeps a long
        // reset-query-reset session from leaking demand-space memory.
        let (mut e, edge, path, ids) = tc_engine();
        let res = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(res.rows.len(), 4);
        e.reset_facts();
        let res = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert!(
            res.stats.adornments_compiled >= 1,
            "reset evicted the plan; the next query recompiles"
        );
        assert!(res.rows.is_empty(), "no facts, no answers");
        e.fact(edge, vec![ids[0], ids[3]]).unwrap();
        let res = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(res.rows, vec![vec![ids[0], ids[3]]]);
        assert_eq!(res.stats.adornments_compiled, 0, "plan cached again");
    }

    #[test]
    fn retained_demand_space_makes_repeat_queries_free() {
        let (mut e, _, path, ids) = tc_engine();
        let first = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(first.rows.len(), 4);
        assert_eq!(first.stats.demand_continuations, 0, "first run is cold");
        // Identical query: the retained space already holds the
        // fixpoint — no seed inserted, no stratum re-run, no facts.
        let again = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(again.rows, first.rows);
        assert_eq!(again.stats.demand_continuations, 1);
        assert_eq!(again.stats.magic_facts_seeded, 0, "duplicate seed");
        assert_eq!(again.stats.facts_derived, 0);
        assert_eq!(again.stats.iterations, 0, "no stratum re-ran");
        // tc_engine's closure is right-linear, so the first query's
        // demand cascaded to every suffix node: a later constant in
        // the cascade is *already* demanded and answered — its seed is
        // a duplicate (not counted — the E13/E14 invariant) and the
        // whole query is a no-op read over the retained space.
        let third = e.query(path, &[Some(ids[2]), None]).unwrap();
        assert_eq!(third.stats.demand_continuations, 1);
        assert_eq!(third.stats.magic_facts_seeded, 0, "already demanded");
        assert_eq!(third.stats.facts_derived, 0);
        assert_eq!(third.stats.adornments_compiled, 0, "plan reused");
        let rows = third.rows.sorted();
        assert_eq!(rows, vec![vec![ids[2], ids[3]], vec![ids[2], ids[4]]]);
        // Earlier answers are still served, filtered per seed.
        let back = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(back.rows.len(), 4);
        assert_eq!(back.stats.facts_derived, 0);
    }

    /// Left-linear closure engine: `t(X, Z) :- t(X, Y), e(Y, Z)` keeps
    /// demand at the seed, so distinct constants have disjoint demand
    /// cones — the orientation where retained spaces show their
    /// incremental behavior (each new seed derives only its own cone).
    fn left_linear_engine() -> (Engine, PredId, PredId, Vec<TermId>) {
        let mut e = Engine::new(EvalConfig::default());
        let edge = e.pred("edge", 2);
        let t = e.pred("t", 2);
        let ids: Vec<TermId> = (0..6)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            t,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            t,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(t, vec![v(0), v(1)]),
                BodyLit::Pos(edge, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        (e, edge, t, ids)
    }

    #[test]
    fn new_seed_continues_over_the_retained_space() {
        let (mut e, edge, t, ids) = left_linear_engine();
        let first = e.query(t, &[Some(ids[3]), None]).unwrap();
        assert_eq!(first.rows.len(), 2, "n3 reaches n4, n5");
        // A new constant: one fresh seed, a seeded continuation
        // deriving only the new cone.
        let second = e.query(t, &[Some(ids[1]), None]).unwrap();
        assert_eq!(second.stats.demand_continuations, 1);
        assert_eq!(second.stats.magic_facts_seeded, 1);
        assert_eq!(second.stats.adornments_compiled, 0);
        assert_eq!(second.rows.len(), 4, "n1 reaches n2..n5");
        // The n3 cone survived the continuation: repeating the first
        // query is still a zero-work read.
        let repeat = e.query(t, &[Some(ids[3]), None]).unwrap();
        assert_eq!(repeat.stats.facts_derived, 0);
        assert_eq!(repeat.rows, first.rows);
        // A single-fact EDB update flows through as a continuation:
        // both retained cones extend, nothing is re-derived cold.
        let x = e.store_mut().atom("x");
        e.fact(edge, vec![ids[5], x]).unwrap();
        let updated = e.query(t, &[Some(ids[3]), None]).unwrap();
        assert_eq!(updated.stats.demand_continuations, 1);
        assert_eq!(updated.rows.len(), 3, "n3 now also reaches x");
        assert!(
            updated.stats.facts_derived <= 4,
            "only the extension rows derive, not the cones \
             (got {})",
            updated.stats.facts_derived
        );
        // …and the other cone saw the same extension.
        let other = e.query(t, &[Some(ids[1]), None]).unwrap();
        assert_eq!(other.rows.len(), 5, "n1 reaches n2..n5 and x");
        assert_eq!(other.stats.facts_derived, 0, "already propagated");
    }

    #[test]
    fn shadow_fallback_keeps_sibling_demand_spaces_live() {
        let (mut e, edge, t, ids) = left_linear_engine();
        let node = e.pred("node", 1);
        let unreach = e.pred("unreachable", 1);
        for &n in &ids {
            e.fact(node, vec![n]).unwrap();
        }
        // unreachable(X) :- node(X), ¬t(X, X) — obstructed rewrite.
        e.rule(plain_rule(
            unreach,
            vec![v(0)],
            vec![
                BodyLit::Pos(node, vec![v(0)]),
                BodyLit::Neg(t, vec![v(0), v(0)]),
            ],
            1,
        ))
        .unwrap();
        // Warm a monotone demand plan…
        let first = e.query(t, &[Some(ids[1]), None]).unwrap();
        assert_eq!(first.path, QueryPath::Demand);
        assert_eq!(first.rows.len(), 4, "n1 reaches n2..n5");
        // …interleave a non-monotone query…
        let nm = e.query(unreach, &[Some(ids[2])]).unwrap();
        assert_eq!(nm.path, QueryPath::Fallback);
        assert_eq!(nm.rows, vec![vec![ids[2]]]);
        // …and the sibling plan stayed live: a repeat of the monotone
        // query is still a zero-work read of its retained space.
        let repeat = e.query(t, &[Some(ids[1]), None]).unwrap();
        assert_eq!(repeat.path, QueryPath::Demand);
        assert_eq!(
            repeat.stats.facts_derived, 0,
            "retained demand space survived the fallback query"
        );
        assert_eq!(repeat.rows, first.rows);
        // An EDB extension reaches the retained space as a seeded
        // continuation — the fallback interleave did not force a cold
        // rebuild — and marks the shadow model stale.
        let x = e.store_mut().atom("x");
        e.fact(edge, vec![ids[5], x]).unwrap();
        let extended = e.query(t, &[Some(ids[1]), None]).unwrap();
        assert_eq!(extended.stats.demand_continuations, 1);
        assert_eq!(extended.rows.len(), 5, "n1 now also reaches x");
        let nm2 = e.query(unreach, &[Some(ids[2])]).unwrap();
        assert_eq!(nm2.path, QueryPath::Fallback);
        assert!(nm2.stats.facts_derived > 0, "stale shadow rebuilt");
        assert_eq!(nm2.rows, vec![vec![ids[2]]]);
    }

    #[test]
    fn retained_demand_space_absorbs_new_edb_facts() {
        let (mut e, edge, path, ids) = tc_engine();
        let first = e.query(path, &[Some(ids[3]), None]).unwrap();
        assert_eq!(first.rows, vec![vec![ids[3], ids[4]]]);
        // A new edge arriving between queries flows through the
        // seeded continuation, not a cold re-derivation.
        let x = e.store_mut().atom("x");
        e.fact(edge, vec![ids[4], x]).unwrap();
        let again = e.query(path, &[Some(ids[3]), None]).unwrap();
        assert_eq!(again.stats.demand_continuations, 1);
        assert_eq!(again.stats.adornments_compiled, 0);
        let rows = again.rows.sorted();
        assert_eq!(rows, vec![vec![ids[3], ids[4]], vec![ids[3], x]]);
        // And the model agrees with a from-scratch engine on the same
        // enlarged EDB.
        let (mut fresh, fedge, fpath, fids) = tc_engine();
        let fx = fresh.store_mut().atom("x");
        fresh.fact(fedge, vec![fids[4], fx]).unwrap();
        let want = fresh
            .query(fpath, &[Some(fids[3]), None])
            .unwrap()
            .rows
            .sorted();
        assert_eq!(rows, want);
    }

    #[test]
    fn retention_off_restores_per_query_cold_runs() {
        let cfg = EvalConfig {
            demand_retention: false,
            ..EvalConfig::default()
        };
        let mut e = Engine::new(cfg);
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let ids: Vec<TermId> = (0..5)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(edge, vec![v(0), v(1)]),
                BodyLit::Pos(path, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        let first = e.query(path, &[Some(ids[0]), None]).unwrap();
        let again = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(again.rows, first.rows);
        assert_eq!(again.stats.demand_continuations, 0, "cold each time");
        assert!(again.stats.facts_derived > 0, "re-derived from scratch");
        assert_eq!(again.stats.magic_facts_seeded, 1, "space was cleared");
    }

    #[test]
    fn plan_cache_evicts_lru_and_rederives_correctly() {
        let cfg = EvalConfig {
            demand_plan_cache: 1,
            ..EvalConfig::default()
        };
        let mut e = Engine::new(cfg);
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let ids: Vec<TermId> = (0..5)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(edge, vec![v(0), v(1)]),
                BodyLit::Pos(path, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        let bf = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(bf.rows.len(), 4);
        assert_eq!(bf.stats.plans_evicted, 0, "cache holds one plan");
        // The fb adornment evicts the bf plan (bound 1)…
        let fb = e.query(path, &[None, Some(ids[4])]).unwrap();
        assert_eq!(fb.rows.len(), 4);
        assert_eq!(fb.stats.plans_evicted, 1);
        assert!(fb.stats.adornments_compiled >= 1);
        // …and re-querying bf recompiles and re-derives — never serves
        // rows out of a reclaimed space.
        let bf2 = e.query(path, &[Some(ids[1]), None]).unwrap();
        assert_eq!(bf2.stats.plans_evicted, 1);
        assert!(bf2.stats.adornments_compiled >= 1, "recompiled after evict");
        let rows = bf2.rows.sorted();
        assert_eq!(
            rows,
            vec![
                vec![ids[1], ids[2]],
                vec![ids[1], ids[3]],
                vec![ids[1], ids[4]],
            ]
        );
    }

    #[test]
    fn evicted_plans_recycle_registry_slots() {
        // With a one-slot plan cache, alternating adornments evict each
        // other forever — but the registry (and the positional relation
        // vectors sized from it) must stay bounded: each eviction
        // releases the dead plan's demand-space slots and recompilation
        // reuses them.
        let cfg = EvalConfig {
            demand_plan_cache: 1,
            ..EvalConfig::default()
        };
        let mut e = Engine::new(cfg);
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let ids: Vec<TermId> = (0..5)
            .map(|i| e.store_mut().atom(&format!("n{i}")))
            .collect();
        for w in ids.windows(2) {
            e.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        e.rule(plain_rule(
            path,
            vec![v(0), v(1)],
            vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            2,
        ))
        .unwrap();
        e.rule(plain_rule(
            path,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(edge, vec![v(0), v(1)]),
                BodyLit::Pos(path, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        // Prime both adornments once so every demand predicate either
        // has a slot or a matching free slot to claim.
        let bf = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(bf.rows.len(), 4);
        let fb = e.query(path, &[None, Some(ids[4])]).unwrap();
        assert_eq!(fb.rows.len(), 4);
        let bound = e.preds().len();
        for round in 0..6 {
            let bf = e.query(path, &[Some(ids[0]), None]).unwrap();
            assert_eq!(bf.rows.len(), 4, "round {round}");
            let fb = e.query(path, &[None, Some(ids[4])]).unwrap();
            assert_eq!(fb.rows.len(), 4, "round {round}");
            assert_eq!(
                e.preds().len(),
                bound,
                "registry stays bounded under eviction churn (round {round})"
            );
        }
        assert!(
            e.preds().free_slots() > 0,
            "evicted slots are on the free list"
        );
    }

    #[test]
    fn conj_shape_eviction_releases_the_shape_slot() {
        // Distinct conjunctive goal shapes each register a dedicated
        // `query#shape#…` head; evicting a shape's plan must release
        // that slot too, so a stream of one-off shapes cannot grow the
        // registry without bound.
        let (mut e, edge, path, ids) = tc_engine();
        e.config_mut().demand_plan_cache = 1;
        let mut sizes = Vec::new();
        for round in 0..4 {
            // A fresh shape every round: the join chain gets one literal
            // longer, so the goal-shape key differs.
            let mut body = vec![BodyLit::Pos(path, vec![Pattern::Ground(ids[0]), v(0)])];
            for k in 0..round {
                body.push(BodyLit::Pos(edge, vec![v(k), v(k + 1)]));
            }
            let goal = plain_rule(
                e.pred("query#goal", 2),
                vec![v(0), v(round)],
                body,
                round as usize + 1,
            );
            let res = e.query_rule(goal).unwrap();
            assert!(!res.rows.is_empty(), "round {round}");
            sizes.push(e.preds().len());
        }
        // The first round pays for the shape machinery; later rounds
        // recycle the evicted shape's slots instead of growing.
        assert_eq!(
            sizes[2], sizes[3],
            "registry growth stops once eviction recycles shape slots: {sizes:?}"
        );
    }

    #[test]
    fn overlapping_plan_spaces_stay_consistent() {
        // Querying `s` demands `(path, bf)` too, so the two plans
        // share the `path#bf` / `m#path#bf` relations. A fresh plan
        // *rebases* over the shared rows instead of clearing them, so
        // the sibling stays live — and answers stay exact throughout.
        let (mut e, edge, path, ids) = tc_engine();
        let s = e.pred("s", 2);
        e.rule(plain_rule(
            s,
            vec![v(0), v(2)],
            vec![
                BodyLit::Pos(path, vec![v(0), v(1)]),
                BodyLit::Pos(edge, vec![v(1), v(2)]),
            ],
            3,
        ))
        .unwrap();
        let p1 = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(p1.rows.len(), 4);
        // Compiling the s-plan rebases over the shared sub-space.
        let s1 = e.query(s, &[Some(ids[0]), None]).unwrap();
        assert_eq!(s1.rows.len(), 3, "n0 → {{n1..n3}} → successor");
        // The path plan stayed live: a zero-work repeat, exact rows.
        let p2 = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(p2.stats.demand_continuations, 1, "sibling stayed live");
        assert_eq!(p2.stats.facts_derived, 0);
        let got = p2.rows.sorted();
        let want = p1.rows.sorted();
        assert_eq!(got, want);
        // And so did the s plan.
        let s2 = e.query(s, &[Some(ids[0]), None]).unwrap();
        assert_eq!(s2.rows.len(), 3);
        assert_eq!(s2.stats.facts_derived, 0);
        // Evicting one (cache shrunk to a single slot) reclaims its
        // relations and puts the survivor back to cold — which must
        // re-derive, never serve rows out of a reclaimed space.
        e.config_mut().demand_plan_cache = 1;
        let s3 = e.query(s, &[Some(ids[1]), None]).unwrap();
        assert_eq!(s3.rows.len(), 2, "n1 → {{n2, n3}} → successor");
        let p3 = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert!(p3.stats.plans_evicted >= 1, "bound 1 evicts the s plan");
        let got = p3.rows.sorted();
        assert_eq!(got, want, "exact rows after eviction churn");
    }

    #[test]
    fn conjunctive_plans_are_cached_by_goal_shape() {
        let (mut e, edge, path, ids) = tc_engine();
        let q = e.pred("query#goal", 2);
        let goal = |c: TermId| {
            plain_rule(
                q,
                vec![v(0), v(1)],
                vec![
                    BodyLit::Pos(path, vec![Pattern::Ground(c), v(0)]),
                    BodyLit::Pos(edge, vec![v(0), v(1)]),
                ],
                2,
            )
        };
        let first = e.query_rule(goal(ids[0])).unwrap();
        assert_eq!(first.path, QueryPath::Demand);
        assert!(first.stats.adornments_compiled >= 1);
        assert_eq!(first.stats.magic_facts_seeded, 1, "the lifted constant");
        assert_eq!(first.rows.len(), 3);
        // Same shape, new constant: the plan (and under retention the
        // whole demand space) is reused; only the new seed derives.
        let second = e.query_rule(goal(ids[2])).unwrap();
        assert_eq!(second.stats.adornments_compiled, 0, "shape-cache hit");
        assert_eq!(second.stats.demand_continuations, 1);
        assert_eq!(second.stats.magic_facts_seeded, 1);
        assert_eq!(second.rows, vec![vec![ids[3], ids[4]]]);
        // Repeating the first goal is a no-op read.
        let again = e.query_rule(goal(ids[0])).unwrap();
        assert_eq!(again.stats.facts_derived, 0);
        let rows = again.rows.sorted();
        let want = first.rows.sorted();
        assert_eq!(rows, want);
        // A structurally different goal compiles its own plan.
        let q1 = e.pred("query#goal1", 1);
        let other = plain_rule(
            q1,
            vec![v(0)],
            vec![BodyLit::Pos(path, vec![Pattern::Ground(ids[0]), v(0)])],
            1,
        );
        let res = e.query_rule(other).unwrap();
        assert!(res.stats.adornments_compiled >= 1, "new shape compiles");
        assert_eq!(res.rows.len(), 4);
    }

    #[test]
    fn query_rule_paths_interleave_cleanly_on_one_head() {
        // Regression (demand ↔ materialized interleaving on one goal
        // head): both paths must clear the head's relations
        // symmetrically, so switching pipelines can never surface
        // stale rows from the other path's previous answer.
        let (mut e, _, path, ids) = tc_engine();
        let q = e.pred("query#goal", 1);
        let goal = |c: TermId| {
            plain_rule(
                q,
                vec![v(1)],
                vec![BodyLit::Pos(path, vec![Pattern::Ground(c), v(1)])],
                2,
            )
        };
        // Demand path first: answers from n0.
        let demand = e.query_rule(goal(ids[0])).unwrap();
        assert_eq!(demand.path, QueryPath::Demand);
        assert_eq!(demand.rows.len(), 4);
        // Materialize, then run the *same head* with a different
        // constant through the materialized path: only n2's rows.
        e.run().unwrap();
        let mat = e.query_rule(goal(ids[2])).unwrap();
        assert_eq!(mat.path, QueryPath::Materialized);
        let rows = mat.rows.sorted();
        assert_eq!(rows, vec![vec![ids[3]], vec![ids[4]]], "no stale n0 rows");
        // Back again with the first constant — full and delta of the
        // head were both cleared, so the join restarts clean.
        let mat2 = e.query_rule(goal(ids[0])).unwrap();
        let rows = mat2.rows.sorted();
        assert_eq!(
            rows,
            vec![vec![ids[1]], vec![ids[2]], vec![ids[3]], vec![ids[4]]]
        );
        // And after dropping the facts, the demand path on the same
        // head sees none of the materialized-path leftovers.
        e.reset_facts();
        let empty = e.query_rule(goal(ids[0])).unwrap();
        assert_eq!(empty.path, QueryPath::Demand);
        assert!(empty.rows.is_empty(), "no facts, no stale answers");
    }

    #[test]
    fn profiled_query_reports_estimated_vs_actual_per_literal() {
        let (mut e, _, path, ids) = tc_engine();
        e.config_mut().profile = true;
        e.config_mut().cost_planner = true;
        let res = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(res.path, QueryPath::Demand);
        assert_eq!(res.rows.len(), 4);
        let profile = e.last_profile().expect("profiled demand query").clone();
        assert!(!profile.rules.is_empty(), "rewrite has rules with bodies");
        let total_rows: u64 = profile
            .rules
            .iter()
            .flat_map(|r| &r.literals)
            .map(|l| l.actual_rows)
            .sum();
        assert!(total_rows > 0, "the join touched rows");
        // Attribution covers all counted probe work: stats count only
        // indexed probes, the profile additionally counts scans.
        let total_probes: u64 = profile
            .rules
            .iter()
            .flat_map(|r| &r.literals)
            .map(|l| l.probes)
            .sum();
        assert!(total_probes as usize >= res.stats.index_probes);
        // An unprofiled query clears the stale profile.
        e.config_mut().profile = false;
        e.query(path, &[Some(ids[1]), None]).unwrap();
        assert!(e.last_profile().is_none());
    }

    #[test]
    fn profiled_query_matches_unprofiled_answers() {
        let (mut e, _, path, ids) = tc_engine();
        let plain = e.query(path, &[Some(ids[0]), None]).unwrap();
        let (mut p, _, ppath, pids) = tc_engine();
        p.config_mut().profile = true;
        let profiled = p.query(ppath, &[Some(pids[0]), None]).unwrap();
        assert_eq!(plain.rows.sorted(), profiled.rows.sorted());
    }

    #[test]
    fn explain_prints_adornment_and_join_order_without_running() {
        let (mut e, _, path, ids) = tc_engine();
        let text = e.explain(path, &[Some(ids[0]), None]).unwrap();
        assert!(text.contains("adornment: bf"), "got:\n{text}");
        assert!(text.contains("plan: demand"), "got:\n{text}");
        assert!(text.contains(":-"), "join order lines present:\n{text}");
        // Explaining compiled and cached the plan; the query reuses it.
        let res = e.query(path, &[Some(ids[0]), None]).unwrap();
        assert_eq!(res.stats.adornments_compiled, 0, "plan was pre-compiled");
        assert_eq!(res.rows.len(), 4);
    }

    #[test]
    fn reset_stats_zeroes_last_and_cumulative() {
        let (mut e, _, _, _) = tc_engine();
        e.run().unwrap();
        assert_ne!(e.stats(), EvalStats::default());
        assert_ne!(e.cumulative_stats(), EvalStats::default());
        e.reset_stats();
        assert_eq!(e.stats(), EvalStats::default());
        assert_eq!(e.cumulative_stats(), EvalStats::default());
    }

    #[test]
    fn powerset_universe_materializes_on_run() {
        let mut e = Engine::new(EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
            ..EvalConfig::default()
        });
        let item = e.pred("item", 1);
        let a = e.store_mut().atom("a");
        let b = e.store_mut().atom("b");
        e.fact(item, vec![a]).unwrap();
        e.fact(item, vec![b]).unwrap();
        e.run().unwrap();
        // ∅, {a}, {b}, {a,b} all interned.
        assert_eq!(e.store().set_ids().len(), 4);
    }
}
