//! Rule planning: safety analysis, join ordering, index selection.
//!
//! A [`Rule`] is compiled into a [`CompiledRule`]: one or more
//! [`Variant`]s (the full variant plus one delta variant per positive
//! outer literal, for semi-naive evaluation), each an ordered list of
//! [`Step`]s, plus a [`QuantPlan`] describing how the restricted
//! universal quantifier group is evaluated.
//!
//! Safety here is the operational counterpart of the paper's
//! infinitary Herbrand semantics: a rule is *safe* when every variable
//! is grounded by some literal ordering (range restriction). Variables
//! that range over the sort-s universe without any binding literal are
//! admitted only under a non-default [`SetUniverse`] policy, which
//! bounds them to the active universe (DESIGN.md §3).

use lps_term::FxHashSet;

use crate::builtin::mode_ok;
use crate::config::SetUniverse;
use crate::error::EngineError;
use crate::pattern::{Pattern, VarId};
use crate::pred::{PredId, PredRegistry};
use crate::relation::ColMask;
use crate::rule::{BodyLit, Rule};
use crate::stats::Stats;
use crate::strata::{stratify, Stratification};

/// One evaluation action within a variant.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// Evaluate a positive atom: index lookup on `mask` columns (or a
    /// scan when `mask == 0`), then pattern-match the rest. `delta`
    /// selects the delta relation instead of the full one.
    Pos {
        /// Index into `rule.outer`.
        lit: usize,
        /// Columns fully bound before this step.
        mask: ColMask,
        /// Read from the delta relation (semi-naive variants).
        delta: bool,
        /// All argument patterns are plain `Var`/`Ground` (precomputed
        /// here so the executor can take its allocation-free
        /// bind-in-place path without re-inspecting patterns per row).
        flat: bool,
    },
    /// Evaluate a builtin via `builtin::enumerate`.
    BuiltinStep {
        /// Index into `rule.outer`.
        lit: usize,
        /// All argument patterns are plain `Var`/`Ground` (see
        /// [`Step::Pos::flat`]).
        flat: bool,
    },
    /// Check a negated atom (all variables bound).
    NegStep {
        /// Index into `rule.outer`.
        lit: usize,
    },
    /// Bind a variable that appears in no body literal by enumerating
    /// the active universe (policy-gated). The paper's Theorem-6
    /// construction produces such clauses (Example 9's
    /// `N₇(X, Y, z) :- N₈(z, X)` holds for every `Y`); the bounded
    /// universe makes them executable (DESIGN.md §3).
    EnumUniverse {
        /// The variable to enumerate.
        var: VarId,
        /// Restrict the universe to this sort (from `lps-core`'s
        /// two-sorted inference); `None` = all terms.
        sort: Option<lps_term::Sort>,
    },
}

impl Step {
    /// The outer-literal index this step evaluates (`None` for
    /// universe enumeration).
    pub fn lit(&self) -> Option<usize> {
        match self {
            Step::Pos { lit, .. } | Step::BuiltinStep { lit, .. } | Step::NegStep { lit } => {
                Some(*lit)
            }
            Step::EnumUniverse { .. } => None,
        }
    }
}

/// An ordered evaluation strategy for the outer literals.
#[derive(Clone, Debug, PartialEq)]
pub struct Variant {
    /// Which outer literal reads from the delta relation (`None` for
    /// the full variant).
    pub delta_lit: Option<usize>,
    /// Steps in execution order.
    pub steps: Vec<Step>,
    /// Check steps deferred until after the quantifier group: negated
    /// or builtin literals whose variables are bound only by the
    /// group's coverage analysis (e.g. `¬C(X)` in the §4.2 set
    /// construction, where `X` is the quantifier domain).
    pub post_steps: Vec<Step>,
    /// Delta-literal columns to partition on when this variant's join
    /// is fanned across the worker pool (E15): the columns whose
    /// variables feed later join steps, so rows sharing a probe key
    /// land on one worker (locality, and skew becomes observable as
    /// `worker_imbalance`). Falls back to every column (whole-row
    /// hash) when the delta literal shares no variable with the rest
    /// of the body. `0` for the full variant, which never partitions.
    pub part_mask: ColMask,
}

/// Static plan for the quantifier group.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantPlan {
    /// Free variables of the group not bound by the outer steps —
    /// bound at runtime by coverage analysis / active-universe
    /// enumeration.
    pub unbound_free: Vec<VarId>,
    /// The subset of `unbound_free` that the head (or grouping slot)
    /// needs. Dead unbound variables are clause-level existentials and
    /// never require universe enumeration; live ones range over the
    /// active universe in the vacuously-true case.
    pub live_unbound: Vec<VarId>,
    /// Sort restriction per `live_unbound` entry.
    pub live_sorts: Vec<Option<lps_term::Sort>>,
    /// Join plan for the inner conjunction over (quantified vars ∪
    /// unbound free vars), with domains and outer vars assumed bound.
    /// `None` when `unbound_free` is empty and the fast per-element
    /// check suffices.
    pub inner_steps: Option<Vec<Step>>,
    /// Whether any quantifier domain is statically unbound (requires
    /// active-set enumeration).
    pub unbound_domain: bool,
}

/// A fully planned rule.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledRule {
    /// Position of this rule within its [`CompiledProgram`] (0 for
    /// rules compiled standalone). Profiling keys per-literal probe
    /// attribution on `(id, lit)`.
    pub id: u32,
    /// The rule being planned (owned copy).
    pub rule: Rule,
    /// `variants[0]` is always the full variant.
    pub variants: Vec<Variant>,
    /// Plan for the quantifier group, if the rule has one.
    pub quant_plan: Option<QuantPlan>,
    /// IDB predicates appearing inside the quantifier group (trigger
    /// set for semi-naive re-evaluation).
    pub inner_preds: Vec<PredId>,
    /// `(pred, mask, delta)` index requests to satisfy before running.
    pub index_requests: Vec<(PredId, ColMask, bool)>,
    /// Whether evaluation enumerates the active set universe (unbound
    /// quantifier domains/free vars, or builtin modes with free
    /// set-sorted arguments). Such rules must be re-run when new sets
    /// are interned, even if no new facts arrived.
    pub uses_active_universe: bool,
    /// Whether this rule's delta variants may run on the worker pool:
    /// no quantifier group, no grouping head, every step a flat
    /// (`Var`/`Ground`-only) positive join or negation check, and a
    /// flat head — exactly the fragment whose evaluation never interns
    /// a term, so workers need no access to the term store and
    /// parallel runs stay bit-identical to sequential ones (E15).
    pub parallel_safe: bool,
    /// Variants whose cost-based join order differs from the textual
    /// order — 0 when compiled without statistics, and 0 when the
    /// statistics agreed with the written order (E16 accounting,
    /// surfaced as [`EvalStats::reorders_applied`]).
    ///
    /// [`EvalStats::reorders_applied`]: crate::config::EvalStats::reorders_applied
    pub reorders: usize,
    /// Summed row estimates of the positive steps the planner chose —
    /// 0 when compiled without statistics (surfaced as
    /// [`EvalStats::estimated_rows`]).
    ///
    /// [`EvalStats::estimated_rows`]: crate::config::EvalStats::estimated_rows
    pub estimated_rows: usize,
    /// `(lit, estimated rows)` per positive step of the full variant,
    /// in chosen join order — the planner's per-literal predictions
    /// that `:profile` lines up against observed probe counts, and the
    /// join order `:explain` prints. Estimates are 0 when compiled
    /// without statistics.
    pub step_estimates: Vec<(usize, usize)>,
}

/// A whole rule set stratified, compiled, and bucketed for evaluation:
/// everything derivable from the rules alone, independent of any
/// facts. The engine's batch prepare phase caches one of these for the
/// loaded program; the demand subsystem compiles one per query
/// adornment for the magic-rewritten program.
#[derive(Debug)]
pub struct CompiledProgram {
    /// Stratification of the rule set.
    pub strat: Stratification,
    /// Every rule compiled, in input order.
    pub compiled: Vec<CompiledRule>,
    /// Indices into `compiled` of ordinary rules, per stratum.
    pub regular_by_stratum: Vec<Vec<usize>>,
    /// Indices into `compiled` of LDL grouping rules, per stratum.
    pub grouping_by_stratum: Vec<Vec<usize>>,
    /// Indices into `compiled` of ground-head fact rules.
    pub fact_rules: Vec<usize>,
    /// Deduplicated `(pred, mask, delta)` index requests.
    pub index_requests: Vec<(PredId, ColMask, bool)>,
    /// Highest stratum holding a non-monotone rule (negation anywhere
    /// in the body, or a grouping head); `None` for monotone programs.
    pub max_nonmono_stratum: Option<usize>,
    /// Lowest stratum holding a rule that enumerates the active set
    /// universe.
    pub min_universe_stratum: Option<usize>,
    /// Total [`CompiledRule::reorders`] across the program.
    pub reorders_applied: usize,
    /// Total [`CompiledRule::estimated_rows`] across the program.
    pub estimated_rows: usize,
}

/// Stratify and compile a rule set under the given policy — the shared
/// front half of both the batch pipeline and the per-adornment demand
/// pipeline. See [`compile_rule`] for the meaning of `idb` and `cost`.
pub fn compile_program(
    rules: &[Rule],
    num_preds: usize,
    preds: &PredRegistry,
    names: &dyn Fn(PredId) -> String,
    idb: &FxHashSet<PredId>,
    policy: SetUniverse,
    cost: Option<&Stats>,
) -> Result<CompiledProgram, EngineError> {
    let strat = stratify(rules, num_preds, names)?;
    let mut compiled: Vec<CompiledRule> = Vec::with_capacity(rules.len());
    for (i, rule) in rules.iter().enumerate() {
        let mut cr = compile_rule(rule, preds, names, idb, policy, cost)?;
        cr.id = i as u32;
        compiled.push(cr);
    }

    let mut regular_by_stratum: Vec<Vec<usize>> = vec![Vec::new(); strat.num_strata];
    let mut grouping_by_stratum: Vec<Vec<usize>> = vec![Vec::new(); strat.num_strata];
    let mut fact_rules = Vec::new();
    let mut index_requests = Vec::new();
    let mut max_nonmono_stratum = None;
    let mut min_universe_stratum = None;
    for (i, cr) in compiled.iter().enumerate() {
        index_requests.extend_from_slice(&cr.index_requests);
        if cr.rule.is_fact() {
            fact_rules.push(i);
            continue;
        }
        let s = strat.stratum(cr.rule.head);
        let nonmono = cr.rule.group.is_some()
            || cr
                .rule
                .all_body_lits()
                .any(|l| matches!(l, BodyLit::Neg(..)));
        if nonmono {
            max_nonmono_stratum = Some(max_nonmono_stratum.map_or(s, |m: usize| m.max(s)));
        }
        if cr.uses_active_universe {
            min_universe_stratum = Some(min_universe_stratum.map_or(s, |m: usize| m.min(s)));
        }
        if cr.rule.group.is_some() {
            grouping_by_stratum[s].push(i);
        } else {
            regular_by_stratum[s].push(i);
        }
    }
    index_requests.sort_unstable();
    index_requests.dedup();

    let reorders_applied = compiled.iter().map(|c| c.reorders).sum();
    let estimated_rows = compiled
        .iter()
        .fold(0usize, |a, c| a.saturating_add(c.estimated_rows));

    Ok(CompiledProgram {
        strat,
        compiled,
        regular_by_stratum,
        grouping_by_stratum,
        fact_rules,
        index_requests,
        max_nonmono_stratum,
        min_universe_stratum,
        reorders_applied,
        estimated_rows,
    })
}

impl CompiledProgram {
    /// The ordinary (non-grouping) rules of stratum `s`, as references.
    pub fn regular(&self, s: usize) -> Vec<&CompiledRule> {
        self.regular_by_stratum[s]
            .iter()
            .map(|&i| &self.compiled[i])
            .collect()
    }

    /// The grouping rules of stratum `s`, as references.
    pub fn grouping(&self, s: usize) -> Vec<&CompiledRule> {
        self.grouping_by_stratum[s]
            .iter()
            .map(|&i| &self.compiled[i])
            .collect()
    }

    /// The stratum a seeded semi-naive continuation must restart from,
    /// given the predicates that gained facts since the last completed
    /// fixpoint and whether the interned-set universe grew since then
    /// (new sets can re-fire universe-enumerating rules even below the
    /// lowest fact-affected stratum). `None` means the retained
    /// fixpoint is already the least model of the enlarged database.
    /// Shared by the incremental update path (E12) and the retained
    /// demand spaces (E14).
    pub fn restart_stratum<I>(&self, changed: I, universe_grew: bool) -> Option<usize>
    where
        I: IntoIterator<Item = PredId>,
    {
        let start = self.strat.lowest_affected(changed);
        if universe_grew {
            match (start, self.min_universe_stratum) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        } else {
            start
        }
    }
}

/// Compile `rule` under the given policy. `idb` says which predicates
/// can acquire new tuples during (or between) fixpoints — only those
/// get delta variants and count as quantifier-trigger predicates. The
/// engine session passes every registered predicate, since EDB facts
/// can arrive incrementally after a materialization; the unused
/// variants cost one empty-delta check per round.
///
/// `cost` enables statistics-driven join ordering: with a [`Stats`]
/// snapshot, positive literals are greedily placed
/// smallest-estimated-intermediate-result first instead of in textual
/// order (safety tiers — bound builtins, bound negation, existence
/// checks — are unchanged, so ordering never affects answers). `None`
/// is the exact textual planner.
pub fn compile_rule(
    rule: &Rule,
    preds: &PredRegistry,
    names: &dyn Fn(PredId) -> String,
    idb: &FxHashSet<PredId>,
    policy: SetUniverse,
    cost: Option<&Stats>,
) -> Result<CompiledRule, EngineError> {
    let head_name = names(rule.head);
    let mut uses_active_universe = false;
    let mut estimated_rows = 0usize;

    // Full variant.
    let full = order_steps(
        rule,
        None,
        policy,
        &head_name,
        &mut uses_active_universe,
        cost,
        &mut estimated_rows,
    )?;

    let mut variants = vec![full];
    for (i, lit) in rule.outer.iter().enumerate() {
        if let BodyLit::Pos(p, _) = lit {
            if idb.contains(p) {
                variants.push(order_steps(
                    rule,
                    Some(i),
                    policy,
                    &head_name,
                    &mut uses_active_universe,
                    cost,
                    &mut estimated_rows,
                )?);
            }
        }
    }

    // Reorder accounting: how many variants the statistics actually
    // moved away from the textual order. Re-running the (cheap) textual
    // ordering is simpler and more honest than trying to predict
    // divergence from the scores.
    let mut reorders = 0usize;
    if cost.is_some() {
        let mut scratch_active = false;
        let mut scratch_rows = 0usize;
        for variant in &variants {
            let differs = match order_steps(
                rule,
                variant.delta_lit,
                policy,
                &head_name,
                &mut scratch_active,
                None,
                &mut scratch_rows,
            ) {
                Ok(textual) => {
                    let lits = |v: &Variant| -> Vec<Option<usize>> {
                        v.steps.iter().map(Step::lit).collect()
                    };
                    lits(&textual) != lits(variant)
                }
                Err(_) => true,
            };
            if differs {
                reorders += 1;
            }
        }
    }

    // Quantifier-group planning.
    let bound_after_outer = vars_bound_after(&variants[0].steps, rule);
    let (quant_plan, inner_preds) = match &rule.quant {
        None => (None, Vec::new()),
        Some(group) => {
            let mut inner_preds: Vec<PredId> = group
                .inner
                .iter()
                .filter_map(BodyLit::pos_pred)
                .filter(|p| idb.contains(p))
                .collect();
            inner_preds.dedup();

            let free = group.free_vars();
            let unbound_free: Vec<VarId> = free
                .iter()
                .copied()
                .filter(|v| !bound_after_outer.contains(v))
                .collect();
            // Which unbound free vars does the head actually consume?
            let mut head_needs: FxHashSet<VarId> = FxHashSet::default();
            for arg in &rule.head_args {
                let mut vs = Vec::new();
                arg.collect_vars(&mut vs);
                head_needs.extend(vs);
            }
            if let Some(g) = &rule.group {
                head_needs.insert(g.var);
            }
            let live_unbound: Vec<VarId> = unbound_free
                .iter()
                .copied()
                .filter(|v| head_needs.contains(v))
                .collect();

            // Domain boundness: a domain is unbound if it has a
            // variable neither bound by the outer steps nor introduced
            // by an *earlier* binder (dependent domains like
            // `(∀S∈F)(∀x∈S)` are bound by the walk, not enumeration).
            let mut unbound_domain = false;
            let mut earlier: Vec<VarId> = Vec::new();
            for (qv, dom) in &group.binders {
                let mut vs = Vec::new();
                dom.collect_vars(&mut vs);
                if vs
                    .iter()
                    .any(|v| !bound_after_outer.contains(v) && !earlier.contains(v))
                {
                    unbound_domain = true;
                }
                earlier.push(*qv);
            }
            if unbound_domain || !live_unbound.is_empty() {
                uses_active_universe = true;
            }
            if unbound_domain && matches!(policy, SetUniverse::Reject) {
                let offender = group
                    .binders
                    .iter()
                    .flat_map(|(_, d)| {
                        let mut vs = Vec::new();
                        d.collect_vars(&mut vs);
                        vs
                    })
                    .find(|v| !bound_after_outer.contains(v))
                    .expect("unbound_domain implies an unbound domain var");
                return Err(EngineError::Unsafe {
                    rule_head: head_name,
                    var: rule.var_name(offender).to_owned(),
                    detail: "quantifier domain is not bound by the body; \
                             enable SetUniverse::ActiveSets to enumerate the active universe"
                        .to_owned(),
                });
            }

            // Inner-join plan when coverage analysis is needed: the
            // quantified vars and unbound free vars must be grounded by
            // the inner literals alone (with outer vars and domains
            // assumed bound).
            let inner_steps = if unbound_free.is_empty() {
                None
            } else {
                if !live_unbound.is_empty() && matches!(policy, SetUniverse::Reject) {
                    return Err(EngineError::Unsafe {
                        rule_head: head_name,
                        var: rule.var_name(live_unbound[0]).to_owned(),
                        detail: "reaches the head but occurs only under a restricted \
                                 universal quantifier; enable SetUniverse::ActiveSets to \
                                 enumerate the active universe in the vacuous case"
                            .to_owned(),
                    });
                }
                let mut initially_bound: FxHashSet<VarId> = bound_after_outer.clone();
                for (_, dom) in &group.binders {
                    let mut vs = Vec::new();
                    dom.collect_vars(&mut vs);
                    initially_bound.extend(vs);
                }
                let (steps, deferred) = order_lits(
                    &group.inner,
                    &initially_bound,
                    policy,
                    &head_name,
                    rule,
                    None,
                    false,
                    &mut uses_active_universe,
                    cost,
                    &mut estimated_rows,
                )?;
                debug_assert!(deferred.is_empty(), "no deferral inside groups");
                Some(steps)
            };

            (
                Some(QuantPlan {
                    live_sorts: live_unbound.iter().map(|&v| rule.var_sort(v)).collect(),
                    unbound_free,
                    live_unbound,
                    inner_steps,
                    unbound_domain,
                }),
                inner_preds,
            )
        }
    };

    // Head safety: every head variable must be bound after outer steps
    // or by the quantifier group (its free vars all end up bound) or be
    // the grouping variable.
    let mut head_bindable = bound_after_outer.clone();
    if let Some(group) = &rule.quant {
        head_bindable.extend(group.free_vars());
    }
    if let Some(g) = &rule.group {
        head_bindable.insert(g.var);
    }
    let mut enum_vars: Vec<VarId> = Vec::new();
    for (pos, arg) in rule.head_args.iter().enumerate() {
        if rule.group.as_ref().is_some_and(|g| g.arg_pos == pos) {
            continue;
        }
        let mut vs = Vec::new();
        arg.collect_vars(&mut vs);
        for v in vs {
            if !head_bindable.contains(&v) && !enum_vars.contains(&v) {
                if matches!(policy, SetUniverse::Reject) {
                    return Err(EngineError::Unsafe {
                        rule_head: head_name,
                        var: rule.var_name(v).to_owned(),
                        detail: "appears in the head but in no body literal \
                                 (enable SetUniverse::ActiveSets to range it over the \
                                 active universe)"
                            .to_owned(),
                    });
                }
                enum_vars.push(v);
            }
        }
    }
    if !enum_vars.is_empty() {
        uses_active_universe = true;
        for variant in &mut variants {
            for &v in &enum_vars {
                variant.steps.push(Step::EnumUniverse {
                    var: v,
                    sort: rule.var_sort(v),
                });
            }
        }
    }

    // Grouping var must be bound by the body.
    if let Some(g) = &rule.group {
        if !bound_after_outer.contains(&g.var)
            && !rule
                .quant
                .as_ref()
                .is_some_and(|q| q.free_vars().contains(&g.var))
        {
            return Err(EngineError::Unsafe {
                rule_head: head_name,
                var: rule.var_name(g.var).to_owned(),
                detail: "grouping variable is not bound by the body".to_owned(),
            });
        }
    }

    // Collect index requests from every variant and the inner plan.
    let mut index_requests = Vec::new();
    let mut push_requests = |steps: &[Step], lits: &[BodyLit]| {
        for step in steps {
            if let Step::Pos {
                lit, mask, delta, ..
            } = step
            {
                if *mask != 0 {
                    if let BodyLit::Pos(p, _) = &lits[*lit] {
                        index_requests.push((*p, *mask, *delta));
                    }
                }
            }
        }
    };
    for v in &variants {
        push_requests(&v.steps, &rule.outer);
    }
    if let Some(QuantPlan {
        inner_steps: Some(steps),
        ..
    }) = &quant_plan
    {
        if let Some(group) = &rule.quant {
            push_requests(steps, &group.inner);
        }
    }
    index_requests.sort_unstable();
    index_requests.dedup();

    let _ = preds; // registry currently only needed by callers; kept for signature stability

    // Parallel safety: the flat, store-free fragment (see the field
    // docs on [`CompiledRule::parallel_safe`]). `post_steps` are
    // provably empty here when the rule has no quantifier group
    // (deferral only triggers under `defer_ok`), but the check is kept
    // explicit rather than relied on.
    let parallel_safe = rule.quant.is_none()
        && rule.group.is_none()
        && rule
            .head_args
            .iter()
            .all(|a| matches!(a, Pattern::Var(_) | Pattern::Ground(_)))
        && variants.iter().all(|v| {
            v.post_steps.is_empty()
                && v.steps.iter().all(|s| match s {
                    Step::Pos { flat, .. } => *flat,
                    Step::NegStep { lit } => lit_flat(&rule.outer[*lit]),
                    Step::BuiltinStep { .. } | Step::EnumUniverse { .. } => false,
                })
        });

    // Per-literal estimates of the full variant, in chosen join order
    // (the masks stored in the steps are exactly the probe masks the
    // planner scored, so re-asking the snapshot reproduces its
    // predictions).
    let step_estimates: Vec<(usize, usize)> = variants[0]
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Pos { lit, mask, .. } => match &rule.outer[*lit] {
                BodyLit::Pos(p, _) => Some((
                    *lit,
                    cost.and_then(|st| st.estimate(*p, *mask)).unwrap_or(0),
                )),
                _ => None,
            },
            _ => None,
        })
        .collect();

    Ok(CompiledRule {
        id: 0,
        rule: rule.clone(),
        variants,
        quant_plan,
        inner_preds,
        index_requests,
        uses_active_universe,
        parallel_safe,
        reorders,
        estimated_rows,
        step_estimates,
    })
}

/// Variables statically bound after running `steps`.
fn vars_bound_after(steps: &[Step], rule: &Rule) -> FxHashSet<VarId> {
    let mut bound = FxHashSet::default();
    for step in steps {
        match step {
            Step::Pos { lit, .. } | Step::BuiltinStep { lit, .. } => {
                bound.extend(rule.outer[*lit].vars());
            }
            Step::NegStep { .. } => {}
            Step::EnumUniverse { var, .. } => {
                bound.insert(*var);
            }
        }
    }
    bound
}

fn order_steps(
    rule: &Rule,
    delta_lit: Option<usize>,
    policy: SetUniverse,
    head_name: &str,
    uses_active: &mut bool,
    cost: Option<&Stats>,
    est_rows: &mut usize,
) -> Result<Variant, EngineError> {
    let (steps, deferred) = order_lits(
        &rule.outer,
        &FxHashSet::default(),
        policy,
        head_name,
        rule,
        delta_lit,
        rule.quant.is_some(),
        uses_active,
        cost,
        est_rows,
    )?;
    // Deferred literals run after the quantifier group, by which time
    // the group's free variables are bound. Validate that claim.
    if !deferred.is_empty() {
        let mut bindable = vars_bound_after(&steps, rule);
        if let Some(group) = &rule.quant {
            bindable.extend(group.free_vars());
        }
        for &d in &deferred {
            if let Some(v) = rule.outer[d].vars().iter().find(|v| !bindable.contains(v)) {
                return Err(EngineError::Unsafe {
                    rule_head: head_name.to_owned(),
                    var: rule.var_name(*v).to_owned(),
                    detail: "no literal ordering can ground it (builtin modes unsatisfied)"
                        .to_owned(),
                });
            }
        }
    }
    let post_steps: Vec<Step> = deferred
        .into_iter()
        .map(|d| match &rule.outer[d] {
            BodyLit::Neg(..) => Step::NegStep { lit: d },
            BodyLit::Builtin(..) => Step::BuiltinStep {
                lit: d,
                flat: lit_flat(&rule.outer[d]),
            },
            BodyLit::Pos(..) => unreachable!("positive literals are never deferred"),
        })
        .collect();
    let part_mask = match delta_lit {
        Some(d) => partition_mask(rule, &steps, &post_steps, d),
        None => 0,
    };
    Ok(Variant {
        delta_lit,
        steps,
        post_steps,
        part_mask,
    })
}

/// The partition mask of a delta variant (see [`Variant::part_mask`]):
/// delta-literal columns whose variables appear in some *other* step's
/// literal — the probe keys the rest of the join will be driven by.
fn partition_mask(rule: &Rule, steps: &[Step], post_steps: &[Step], d: usize) -> ColMask {
    let args = match &rule.outer[d] {
        BodyLit::Pos(_, a) => a,
        other => unreachable!("delta literal must be positive, got {other:?}"),
    };
    let mut later: FxHashSet<VarId> = FxHashSet::default();
    for step in steps.iter().chain(post_steps) {
        match step.lit() {
            Some(l) if l != d => later.extend(rule.outer[l].vars()),
            _ => {}
        }
    }
    let mut mask: ColMask = 0;
    for (i, p) in args.iter().enumerate() {
        if matches!(p, Pattern::Var(v) if later.contains(v)) {
            mask |= 1 << i;
        }
    }
    if mask == 0 && !args.is_empty() {
        // No shared variable: partition on the whole row for balance.
        mask = ((1u64 << args.len()) - 1) as ColMask;
    }
    mask
}

/// Greedy literal ordering. Scores (descending):
/// fully-bound builtin check > bound negation > positive atom with the
/// most bound columns > generative builtin > unbound positive scan.
///
/// With `cost` statistics, the static positive-atom tier is replaced by
/// `700 − estimated rows` — greedy smallest-estimated-intermediate-
/// result first. The check tiers (bound builtin/negation/existence)
/// stay above every cost score, so safety-relevant placement is
/// unchanged; a huge scan *can* sink below the generative-builtin tier
/// (40), deliberately: binding variables cheaply first shrinks it to an
/// indexed probe. Each chosen positive step's estimate accumulates into
/// `est_rows`.
#[allow(clippy::too_many_arguments)]
fn order_lits(
    lits: &[BodyLit],
    initially_bound: &FxHashSet<VarId>,
    policy: SetUniverse,
    head_name: &str,
    rule: &Rule,
    delta_lit: Option<usize>,
    defer_ok: bool,
    uses_active: &mut bool,
    cost: Option<&Stats>,
    est_rows: &mut usize,
) -> Result<(Vec<Step>, Vec<usize>), EngineError> {
    let mut bound = initially_bound.clone();
    let mut remaining: Vec<usize> = (0..lits.len()).collect();
    let mut steps = Vec::with_capacity(lits.len());

    // The delta literal is forced first: semi-naive variants seed the
    // join from newly derived tuples.
    if let Some(d) = delta_lit {
        let mask = bound_mask(&lits[d], &bound);
        steps.push(Step::Pos {
            lit: d,
            mask,
            delta: true,
            flat: lit_flat(&lits[d]),
        });
        bound.extend(lits[d].vars());
        remaining.retain(|&i| i != d);
    }

    while !remaining.is_empty() {
        let mut best: Option<(i64, usize)> = None;
        for &i in &remaining {
            let score = match &lits[i] {
                BodyLit::Builtin(b, args) => {
                    let flags: Vec<bool> = args.iter().map(|p| pattern_bound(p, &bound)).collect();
                    if !mode_ok(*b, &flags, policy) {
                        continue;
                    }
                    if flags.iter().all(|&f| f) {
                        1000
                    } else {
                        40
                    }
                }
                BodyLit::Neg(_, args) => {
                    let all_bound = args.iter().all(|p| pattern_bound(p, &bound));
                    if !all_bound {
                        continue;
                    }
                    900
                }
                BodyLit::Pos(p, args) => {
                    let bound_cols = args.iter().filter(|p| pattern_bound(p, &bound)).count();
                    if bound_cols == args.len() && !args.is_empty() {
                        800 // existence check
                    } else if let Some(stats) = cost {
                        let mask = bound_mask(&lits[i], &bound);
                        match stats.estimate(*p, mask) {
                            Some(est) => 700i64.saturating_sub(est.min(1 << 40) as i64),
                            // No data: the predicate was registered
                            // after the snapshot — an adorned/magic
                            // relation mid-rewrite. Bound probes on
                            // those are demand-sized (small); unbound
                            // scans fall back to the static tier.
                            None if mask != 0 => 700 - 8,
                            None => 50 + bound_cols as i64 * 10,
                        }
                    } else {
                        50 + bound_cols as i64 * 10
                    }
                }
            };
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, i));
            }
        }
        let Some((_, pick)) = best else {
            // Nothing is evaluable. Positive atoms are always
            // scannable, so the stuck remainder is negations/builtins.
            if defer_ok
                && remaining
                    .iter()
                    .all(|&i| !matches!(lits[i], BodyLit::Pos(..)))
            {
                // Defer them past the quantifier group.
                let deferred = remaining.clone();
                return Ok((steps, deferred));
            }
            // Active-universe fallback: bind one stuck variable by
            // enumeration and keep ordering (the paper's constructions
            // legitimately produce e.g. `aux(Q, S) :- Q = S` with both
            // open — semantics restricted to the active universe,
            // DESIGN.md §3).
            if !matches!(policy, SetUniverse::Reject) {
                let witness = remaining
                    .iter()
                    .flat_map(|&i| lits[i].vars())
                    .find(|v| !bound.contains(v))
                    .expect("stuck implies an unbound variable");
                *uses_active = true;
                steps.push(Step::EnumUniverse {
                    var: witness,
                    sort: rule.var_sort(witness),
                });
                bound.insert(witness);
                continue;
            }
            let witness = remaining
                .iter()
                .flat_map(|&i| lits[i].vars())
                .find(|v| !bound.contains(v));
            let var = witness
                .map(|v| rule.var_name(v).to_owned())
                .unwrap_or_else(|| "?".to_owned());
            return Err(EngineError::Unsafe {
                rule_head: head_name.to_owned(),
                var,
                detail: "no literal ordering can ground it (builtin modes unsatisfied)".to_owned(),
            });
        };
        let step = match &lits[pick] {
            BodyLit::Pos(p, _) => {
                let mask = bound_mask(&lits[pick], &bound);
                if let Some(est) = cost.and_then(|s| s.estimate(*p, mask)) {
                    *est_rows = est_rows.saturating_add(est);
                }
                Step::Pos {
                    lit: pick,
                    mask,
                    delta: false,
                    flat: lit_flat(&lits[pick]),
                }
            }
            BodyLit::Neg(_, _) => Step::NegStep { lit: pick },
            BodyLit::Builtin(b, args) => {
                // Record active-universe dependence: an enumerable
                // builtin running with a free set-sorted argument reads
                // the set universe, which grows during evaluation.
                let flags: Vec<bool> = args.iter().map(|p| pattern_bound(p, &bound)).collect();
                let enumerates_sets = match b {
                    crate::rule::Builtin::In => !flags[1],
                    crate::rule::Builtin::SubsetEq => !flags[0] || !flags[1],
                    crate::rule::Builtin::Union => !(flags[0] && flags[1]),
                    crate::rule::Builtin::Card => !flags[0],
                    _ => false,
                };
                if enumerates_sets {
                    *uses_active = true;
                }
                Step::BuiltinStep {
                    lit: pick,
                    flat: lit_flat(&lits[pick]),
                }
            }
        };
        if !matches!(step, Step::NegStep { .. }) {
            bound.extend(lits[pick].vars());
        }
        steps.push(step);
        remaining.retain(|&i| i != pick);
    }
    Ok((steps, Vec::new()))
}

/// Whether every argument of a literal is a plain `Var`/`Ground`
/// pattern. Flat tuples have at most one match solution per row, which
/// the executor exploits to bind in place without capturing solutions.
fn lit_flat(lit: &BodyLit) -> bool {
    let args = match lit {
        BodyLit::Pos(_, args) | BodyLit::Neg(_, args) => args,
        BodyLit::Builtin(_, args) => args,
    };
    args.iter()
        .all(|p| matches!(p, Pattern::Var(_) | Pattern::Ground(_)))
}

fn pattern_bound(p: &Pattern, bound: &FxHashSet<VarId>) -> bool {
    let mut vs = Vec::new();
    p.collect_vars(&mut vs);
    vs.iter().all(|v| bound.contains(v))
}

/// Column mask of the fully-bound argument positions of a positive (or
/// negative) atom.
fn bound_mask(lit: &BodyLit, bound: &FxHashSet<VarId>) -> ColMask {
    let args = match lit {
        BodyLit::Pos(_, args) | BodyLit::Neg(_, args) => args,
        BodyLit::Builtin(..) => return 0,
    };
    let mut mask = 0;
    for (i, p) in args.iter().enumerate() {
        if pattern_bound(p, bound) {
            mask |= 1 << i;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Builtin, QuantGroup};
    use lps_term::SymbolTable;

    fn setup() -> (PredRegistry, PredId, PredId, PredId) {
        let mut syms = SymbolTable::new();
        let (e, p, q) = (syms.intern("e"), syms.intern("p"), syms.intern("q"));
        let mut reg = PredRegistry::new();
        let pe = reg.register(e, 2);
        let pp = reg.register(p, 2);
        let pq = reg.register(q, 1);
        (reg, pe, pp, pq)
    }

    fn v(i: u32) -> Pattern {
        Pattern::Var(VarId(i))
    }

    fn names(_: PredId) -> String {
        "head".to_owned()
    }

    #[test]
    fn transitive_closure_rule_plans_with_join_index() {
        // p(X, Z) :- e(X, Y), p(Y, Z).
        let (reg, pe, pp, _) = setup();
        let rule = Rule {
            head: pp,
            head_args: vec![v(0), v(2)],
            group: None,
            outer: vec![
                BodyLit::Pos(pe, vec![v(0), v(1)]),
                BodyLit::Pos(pp, vec![v(1), v(2)]),
            ],
            quant: None,
            num_vars: 3,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
            var_sorts: vec![],
        };
        let mut idb = FxHashSet::default();
        idb.insert(pp);
        let compiled =
            compile_rule(&rule, &reg, &names, &idb, SetUniverse::Reject, None).expect("plans");
        // Full variant + delta variant for the one IDB literal.
        assert_eq!(compiled.variants.len(), 2);
        // Full variant: scan first literal, indexed lookup on second.
        let full = &compiled.variants[0];
        assert_eq!(full.steps.len(), 2);
        match &full.steps[1] {
            Step::Pos { mask, .. } => assert_ne!(*mask, 0, "second literal must use an index"),
            other => panic!("expected Pos, got {other:?}"),
        }
        // Index requests include the join column.
        assert!(!compiled.index_requests.is_empty());
        // The flat recursive join is parallel-eligible, and its delta
        // variant partitions on the probe key: `p(Y, Z)`'s first
        // column, which drives the later `e(X, Y)` probe.
        assert!(compiled.parallel_safe);
        let delta = &compiled.variants[1];
        assert_eq!(delta.delta_lit, Some(1));
        assert_eq!(delta.part_mask, 0b01);
        assert_eq!(
            compiled.variants[0].part_mask, 0,
            "full variant never partitions"
        );
    }

    #[test]
    fn partition_mask_falls_back_to_whole_row() {
        // head(X, Y) :- e(X, Y).  — single literal, no join key.
        let (reg, pe, pp, _) = setup();
        let rule = Rule {
            head: pp,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(pe, vec![v(0), v(1)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![],
        };
        let mut idb = FxHashSet::default();
        idb.insert(pe);
        let compiled =
            compile_rule(&rule, &reg, &names, &idb, SetUniverse::Reject, None).expect("plans");
        assert!(compiled.parallel_safe);
        assert_eq!(compiled.variants[1].part_mask, 0b11, "whole-row hash");
    }

    #[test]
    fn builtin_check_is_scheduled_after_binding() {
        // head(X, Y) :- e(X, Y), X != Y.   (Ne needs both bound)
        let (reg, pe, pp, _) = setup();
        let rule = Rule {
            head: pp,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![
                BodyLit::Builtin(Builtin::Ne, vec![v(0), v(1)]),
                BodyLit::Pos(pe, vec![v(0), v(1)]),
            ],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![],
        };
        let compiled = compile_rule(
            &rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::Reject,
            None,
        )
        .expect("plans");
        let steps = &compiled.variants[0].steps;
        assert!(matches!(steps[0], Step::Pos { .. }));
        assert!(matches!(steps[1], Step::BuiltinStep { lit: 0, .. }));
    }

    #[test]
    fn unbound_head_var_is_unsafe() {
        // head(X, Y) :- q(X).   (Y never bound)
        let (reg, _, pp, pq) = setup();
        let rule = Rule {
            head: pp,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(pq, vec![v(0)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![],
        };
        let err = compile_rule(
            &rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::Reject,
            None,
        )
        .unwrap_err();
        match err {
            EngineError::Unsafe { var, .. } => assert_eq!(var, "Y"),
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn unbound_ne_is_unsafe() {
        // head(X) :- q(X), X != Y.   (Y never bound, Ne has no free mode)
        let (reg, _, pp, pq) = setup();
        let rule = Rule {
            head: pp,
            head_args: vec![v(0), v(0)],
            group: None,
            outer: vec![
                BodyLit::Pos(pq, vec![v(0)]),
                BodyLit::Builtin(Builtin::Ne, vec![v(0), v(1)]),
            ],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![],
        };
        let err = compile_rule(
            &rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::Reject,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Unsafe { .. }));
    }

    #[test]
    fn quantified_rule_with_bound_domain_plans_without_inner_join() {
        // head(X, Y) :- e(X, Y), (∀u ∈ X) u in Y.
        let (reg, pe, pp, _) = setup();
        let rule = Rule {
            head: pp,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(pe, vec![v(0), v(1)])],
            quant: Some(QuantGroup {
                binders: vec![(VarId(2), v(0))],
                inner: vec![BodyLit::Builtin(Builtin::In, vec![v(2), v(1)])],
            }),
            num_vars: 3,
            var_names: vec!["X".into(), "Y".into(), "U".into()],
            var_sorts: vec![],
        };
        let compiled = compile_rule(
            &rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::Reject,
            None,
        )
        .expect("plans");
        let qp = compiled.quant_plan.expect("has quant plan");
        assert!(qp.unbound_free.is_empty());
        assert!(qp.inner_steps.is_none());
        assert!(!qp.unbound_domain);
    }

    #[test]
    fn quantified_and_nonflat_rules_are_not_parallel_safe() {
        // Quantifier group → sequential only.
        let (reg, pe, pp, _) = setup();
        let quant_rule = Rule {
            head: pp,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(pe, vec![v(0), v(1)])],
            quant: Some(QuantGroup {
                binders: vec![(VarId(2), v(0))],
                inner: vec![BodyLit::Builtin(Builtin::In, vec![v(2), v(1)])],
            }),
            num_vars: 3,
            var_names: vec!["X".into(), "Y".into(), "U".into()],
            var_sorts: vec![],
        };
        let compiled = compile_rule(
            &quant_rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::Reject,
            None,
        )
        .expect("plans");
        assert!(!compiled.parallel_safe);

        // Builtin step → sequential only (builtins may intern terms).
        let builtin_rule = Rule {
            head: pp,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![
                BodyLit::Pos(pe, vec![v(0), v(1)]),
                BodyLit::Builtin(Builtin::Ne, vec![v(0), v(1)]),
            ],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![],
        };
        let compiled = compile_rule(
            &builtin_rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::Reject,
            None,
        )
        .expect("plans");
        assert!(!compiled.parallel_safe);
    }

    #[test]
    fn unbound_quantifier_domain_requires_policy() {
        // head(X) :- (∀u ∈ X) q(u).   — Theorem 8's shape.
        let (reg, _, pp, pq) = setup();
        let rule = Rule {
            head: pp,
            head_args: vec![v(0), v(0)],
            group: None,
            outer: vec![],
            quant: Some(QuantGroup {
                binders: vec![(VarId(1), v(0))],
                inner: vec![BodyLit::Pos(pq, vec![v(1)])],
            }),
            num_vars: 2,
            var_names: vec!["X".into(), "U".into()],
            var_sorts: vec![],
        };
        // Rejected under the default policy…
        let err = compile_rule(
            &rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::Reject,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Unsafe { .. }));
        // …planned under ActiveSets.
        let compiled = compile_rule(
            &rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::ActiveSets,
            None,
        )
        .expect("plans under ActiveSets");
        let qp = compiled.quant_plan.expect("has quant plan");
        assert!(qp.unbound_domain);
    }

    #[test]
    fn grouping_var_must_be_bound() {
        let (reg, _, pp, pq) = setup();
        let rule = Rule {
            head: pp,
            head_args: vec![v(0), v(1)],
            group: Some(crate::rule::GroupSpec {
                arg_pos: 1,
                var: VarId(1),
            }),
            outer: vec![BodyLit::Pos(pq, vec![v(0)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "G".into()],
            var_sorts: vec![],
        };
        let err = compile_rule(
            &rule,
            &reg,
            &names,
            &FxHashSet::default(),
            SetUniverse::Reject,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Unsafe { .. }));
    }
}
