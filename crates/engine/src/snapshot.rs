//! Epoch-published immutable engine snapshots — the single-writer /
//! many-reader split behind concurrent query serving.
//!
//! The engine itself stays a `&mut self` session: writes (`fact`,
//! `update`, rule changes) and anything that grows a demand space
//! belong to the one owning thread. What this module adds is a way for
//! that writer to *publish* a frozen, shareable view of the session —
//! an [`EngineSnapshot`] behind a vendored arc-swap-style epoch
//! pointer ([`lps_epoch::EpochCell`]) — that any number of reader
//! threads can query concurrently without locks:
//!
//! ```text
//!            writer thread                    reader threads
//!   fact/update/query ──► Engine
//!            │ publish()                      current() ──► Arc<EngineSnapshot>
//!            ▼                                   │ try_query()   (lock-free)
//!   SnapshotPublisher ──► EpochCell ◄────────────┘
//!            (epoch n+1 swaps in;     hit  → answer rows, no writer involved
//!             epoch n lives until     miss → funnel the query to the writer,
//!             its last reader drops)         which answers with `&mut Engine`
//!                                            and publishes a fresh epoch
//! ```
//!
//! A snapshot can answer a point query from two sources, mirroring the
//! sequential [`Engine::query`] decision exactly:
//!
//! * **Materialized model** — when the engine was `Materialized` and
//!   clean at publish time, any point query reads straight from the
//!   frozen relations (index probe when the index was already built,
//!   linear scan otherwise — never a mutation).
//! * **Retained demand plans** — the PR 5 plan cache, converted here
//!   from `&mut self` LRU state into a read-mostly map: a query whose
//!   `(pred, bound-mask)` plan is live *and* whose seed tuple is
//!   already in the plan's magic relation is a pure indexed read of
//!   the retained answer relation. Anything else — a cold adornment, a
//!   new seed constant, a non-monotone fallback — returns `None` and
//!   funnels to the writer (which evaluates, then republishes so later
//!   readers hit).
//!
//! Publishing is cheap when little changed: relations are shared by
//! `(identity, version)` fingerprint ([`Relation::fingerprint`]) so an
//! epoch reuses the previous epoch's `Arc<Relation>` for every
//! relation the writer did not touch, and the interned-term store is
//! re-cloned only when it grew. Readers never observe a torn epoch:
//! the epoch pointer swap is atomic, and a reader's `Arc` keeps its
//! whole snapshot (store, registry, relations, plans) alive together
//! until dropped (property-tested in `tests/prop_serve.rs`).

use crate::engine::{Engine, EngineState, RowSet};
use crate::magic;
use crate::pred::{PredId, PredRegistry};
use crate::relation::{ColMask, Relation};
use lps_epoch::EpochCell;
use lps_term::{FxHashMap, TermId, TermStore};
use std::sync::Arc;

/// One servable demand plan in a snapshot: the retained answer
/// relation and the magic relation that records which seeds its
/// fixpoint covers.
#[derive(Debug, Clone, Copy)]
struct SnapshotPlan {
    /// The adorned predicate holding the answers.
    answer: PredId,
    /// The magic (seed) predicate; `None` for the all-free adornment,
    /// whose fixpoint covers every seed.
    magic: Option<PredId>,
}

/// An immutable, shareable view of an [`Engine`] at one publish point.
///
/// Obtained from [`SnapshotReader::current`]; all methods are `&self`
/// and never mutate, so one snapshot can serve any number of threads.
#[derive(Debug)]
pub struct EngineSnapshot {
    epoch: u64,
    store: Arc<TermStore>,
    preds: PredRegistry,
    /// Frozen `full` relations, positionally indexed by
    /// [`PredId::index`]. Shared with other epochs where unchanged.
    rels: Vec<Arc<Relation>>,
    /// Live demand plans by `(pred, bound-mask)`; empty when the
    /// demand spaces were not current at publish time.
    plans: FxHashMap<(PredId, ColMask), SnapshotPlan>,
    /// Whether the materialized model was complete and clean at
    /// publish time (any point query is then servable from `rels`).
    model_servable: bool,
}

impl EngineSnapshot {
    /// The publish sequence number this snapshot was created at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen term store (read-only: use the `find_*` lookups).
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Look up a predicate by name and arity without registering it.
    /// `None` means the program never mentions it — the writer will
    /// report the error.
    pub fn find_pred(&self, name: &str, arity: usize) -> Option<PredId> {
        let sym = self.store.symbols().get(name)?;
        self.preds.get(sym, arity)
    }

    /// Arity of a predicate in this snapshot.
    pub fn arity(&self, pred: PredId) -> usize {
        self.preds.info(pred).arity
    }

    /// Try to answer the point query `pred(args…)` from this snapshot
    /// alone. `Some(rows)` is exactly what the sequential engine would
    /// answer at this epoch; `None` means the snapshot cannot answer
    /// without mutating (cold adornment, unseeded constant, fallback
    /// query, stale demand space) and the caller must funnel the query
    /// to the writer.
    pub fn try_query(&self, pred: PredId, args: &[Option<TermId>]) -> Option<RowSet> {
        if args.len() != self.preds.info(pred).arity {
            return None;
        }
        let mask = magic::adornment_of(args);
        let key: Vec<TermId> = args.iter().filter_map(|a| *a).collect();
        if self.model_servable {
            let rel = self.rels.get(pred.index())?;
            return Some(read_rows(rel, mask, &key));
        }
        let plan = self.plans.get(&(pred, mask))?;
        if let Some(m) = plan.magic {
            // The retained fixpoint covers exactly the seeds recorded
            // in the magic relation; a new constant funnels.
            if !self.rels.get(m.index())?.contains(&key) {
                return None;
            }
        }
        let answer = self.rels.get(plan.answer.index())?;
        Some(read_rows(answer, mask, &key))
    }
}

/// Answer rows from a frozen relation: scan for the all-free mask,
/// index probe when the index exists, filtered scan otherwise (frozen
/// relations cannot build indexes on demand — the fallback is sound,
/// just linear).
fn read_rows(rel: &Relation, mask: ColMask, key: &[TermId]) -> RowSet {
    let mut out = RowSet::new(rel.arity());
    if mask == 0 {
        for row in rel.iter() {
            out.push(row);
        }
    } else if rel.has_index(mask) {
        for &r in rel.lookup(mask, key) {
            out.push(rel.row(r));
        }
    } else {
        for row in rel.iter() {
            if masked_matches(row, mask, key) {
                out.push(row);
            }
        }
    }
    out
}

/// Do the `mask`-selected columns of `row` equal `key` (ascending
/// column order)?
fn masked_matches(row: &[TermId], mask: ColMask, key: &[TermId]) -> bool {
    let mut m = mask;
    let mut k = 0;
    while m != 0 {
        let col = m.trailing_zeros() as usize;
        if row[col] != key[k] {
            return false;
        }
        k += 1;
        m &= m - 1;
    }
    true
}

/// The writer-side handle: owns the epoch counter and the caches that
/// make republishing cheap. Lives next to the owning [`Engine`] on
/// the writer thread; hand [`SnapshotPublisher::reader`] clones to
/// reader threads.
#[derive(Debug)]
pub struct SnapshotPublisher {
    cell: Arc<EpochCell<EngineSnapshot>>,
    epoch: u64,
    /// `(terms, symbols)` lengths of the last published store — the
    /// store is append-only, so unchanged lengths mean an unchanged
    /// store and the previous `Arc` is reused.
    store_key: (usize, usize),
    store_arc: Arc<TermStore>,
    /// Last published relation per slot, keyed by the *source*
    /// relation's fingerprint at publish time.
    rel_cache: Vec<((u64, u64), Arc<Relation>)>,
}

impl SnapshotPublisher {
    /// Create a publisher and publish epoch 0 from the engine's
    /// current state.
    pub fn new(engine: &mut Engine) -> Self {
        let store_arc = Arc::new(engine.store().clone());
        let mut publisher = SnapshotPublisher {
            cell: Arc::new(EpochCell::new(Arc::new(EngineSnapshot {
                epoch: 0,
                store: Arc::clone(&store_arc),
                preds: engine.preds().clone(),
                rels: Vec::new(),
                plans: FxHashMap::default(),
                model_servable: false,
            }))),
            epoch: 0,
            store_key: (engine.store().len(), engine.store().symbols().len()),
            store_arc,
            rel_cache: Vec::new(),
        };
        publisher.epoch = 0;
        // Re-publish properly (relations, plans) through the one code
        // path; epoch 0 above is just the cell's initial value.
        publisher.publish(engine);
        publisher
    }

    /// A cheap, clonable reader handle for this publisher's epochs.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
        }
    }

    /// Freeze the engine's current state into a new epoch and swap it
    /// in for readers. Returns the new epoch number. Unchanged
    /// relations and an unchanged store are shared with the previous
    /// epoch rather than re-cloned.
    pub fn publish(&mut self, engine: &mut Engine) -> u64 {
        // Build the bound-column indexes the reader hit path probes
        // while we still have `&mut` — published relations are frozen.
        engine.prepare_publish();
        let store_key = (engine.store().len(), engine.store().symbols().len());
        if store_key != self.store_key {
            self.store_arc = Arc::new(engine.store().clone());
            self.store_key = store_key;
        }
        let full = engine.full_relations();
        self.rel_cache.truncate(full.len());
        let mut rels = Vec::with_capacity(full.len());
        for (i, rel) in full.iter().enumerate() {
            let fp = rel.fingerprint();
            match self.rel_cache.get(i) {
                Some((cached_fp, arc)) if *cached_fp == fp => rels.push(Arc::clone(arc)),
                _ => {
                    let arc = Arc::new(rel.clone());
                    if i < self.rel_cache.len() {
                        self.rel_cache[i] = (fp, Arc::clone(&arc));
                    } else {
                        self.rel_cache.push((fp, Arc::clone(&arc)));
                    }
                    rels.push(arc);
                }
            }
        }
        // Demand plans are servable only while nothing is waiting to
        // be folded into their spaces; otherwise a plan hit could miss
        // consequences of a fact this epoch is supposed to include.
        let mut plans = FxHashMap::default();
        if engine.demand_space_clean() {
            for (key, answer, magic) in engine.live_plan_triples() {
                plans.insert(key, SnapshotPlan { answer, magic });
            }
        }
        // `Materialized` implies no pending facts (a `fact` call flips
        // the state to `Dirty`), so the model relations are the least
        // model as of this epoch.
        let model_servable = engine.state() == EngineState::Materialized;
        self.epoch += 1;
        self.cell.store(Arc::new(EngineSnapshot {
            epoch: self.epoch,
            store: Arc::clone(&self.store_arc),
            preds: engine.preds().clone(),
            rels,
            plans,
            model_servable,
        }));
        self.epoch
    }
}

/// The reader-side handle: clone one per reader thread; each
/// [`SnapshotReader::current`] call acquires the latest published
/// epoch lock-free.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    cell: Arc<EpochCell<EngineSnapshot>>,
}

impl SnapshotReader {
    /// The latest published snapshot. The returned `Arc` pins its
    /// epoch alive for as long as the caller holds it, independent of
    /// later publishes.
    pub fn current(&self) -> Arc<EngineSnapshot> {
        self.cell.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::pattern::{Pattern, VarId};
    use crate::rule::{BodyLit, Rule};

    /// `path` transitive closure over a small chain.
    fn chain_engine(n: i64) -> (Engine, PredId, PredId) {
        let mut e = Engine::new(EvalConfig::default());
        let edge = e.pred("edge", 2);
        let path = e.pred("path", 2);
        let v = |i| Pattern::Var(VarId(i));
        e.rule(Rule {
            head: path,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(edge, vec![v(0), v(1)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.rule(Rule {
            head: path,
            head_args: vec![v(0), v(2)],
            group: None,
            outer: vec![
                BodyLit::Pos(path, vec![v(0), v(1)]),
                BodyLit::Pos(edge, vec![v(1), v(2)]),
            ],
            quant: None,
            num_vars: 3,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
            var_sorts: vec![],
        })
        .unwrap();
        for i in 0..n {
            let a = e.store_mut().int(i);
            let b = e.store_mut().int(i + 1);
            e.fact(edge, vec![a, b]).unwrap();
        }
        (e, edge, path)
    }

    #[test]
    fn materialized_snapshot_answers_point_queries() {
        let (mut e, _edge, path) = chain_engine(8);
        e.run().unwrap();
        let mut publisher = SnapshotPublisher::new(&mut e);
        let reader = publisher.reader();
        let snap = reader.current();
        let zero = snap.store().find_int(0).unwrap();
        let want = e.query(path, &[Some(zero), None]).unwrap().rows.sorted();
        let got = snap.try_query(path, &[Some(zero), None]).unwrap().sorted();
        assert_eq!(got, want);
        assert_eq!(got.len(), 8);
        // All-free scan matches the full extension.
        let all = snap.try_query(path, &[None, None]).unwrap();
        assert_eq!(all.len(), e.rows(path).len());
        // Unknown predicates funnel (writer reports the error).
        assert!(snap.find_pred("nope", 2).is_none());
        let _ = publisher.publish(&mut e);
    }

    #[test]
    fn demand_plan_hits_are_servable_and_new_seeds_funnel() {
        let (mut e, _edge, path) = chain_engine(8);
        // Goal-directed: no materialization, a retained demand plan.
        let three = e.store_mut().int(3);
        let five = e.store_mut().int(5);
        let want = e.query(path, &[Some(three), None]).unwrap();
        assert_eq!(want.path, crate::engine::QueryPath::Demand);
        let mut publisher = SnapshotPublisher::new(&mut e);
        let snap = publisher.reader().current();
        // Seeded constant: pure snapshot read, equal to the engine.
        let got = snap.try_query(path, &[Some(three), None]).unwrap();
        assert_eq!(got.sorted(), want.rows.sorted());
        // New constant under the same adornment: the seed is not in
        // the magic relation — funnel.
        assert!(snap.try_query(path, &[Some(five), None]).is_none());
        // Cold adornment: funnel.
        assert!(snap.try_query(path, &[None, Some(three)]).is_none());
        // After the writer answers the new seed and republishes, the
        // same snapshot read hits.
        let want5 = e.query(path, &[Some(five), None]).unwrap();
        publisher.publish(&mut e);
        let snap2 = publisher.reader().current();
        assert!(snap2.epoch() > snap.epoch());
        let got5 = snap2.try_query(path, &[Some(five), None]).unwrap();
        assert_eq!(got5.sorted(), want5.rows.sorted());
    }

    #[test]
    fn pending_writes_unpublish_plans_until_reconciled() {
        let (mut e, edge, path) = chain_engine(4);
        let zero = e.store_mut().int(0);
        e.query(path, &[Some(zero), None]).unwrap();
        let mut publisher = SnapshotPublisher::new(&mut e);
        assert!(publisher
            .reader()
            .current()
            .try_query(path, &[Some(zero), None])
            .is_some());
        // A fact the plan has not absorbed yet: publishing now must
        // not serve stale plan answers.
        let a = e.store_mut().int(100);
        let b = e.store_mut().int(101);
        e.fact(edge, vec![a, b]).unwrap();
        publisher.publish(&mut e);
        let snap = publisher.reader().current();
        assert!(
            snap.try_query(path, &[Some(zero), None]).is_none(),
            "stale demand space must funnel"
        );
        // The writer reconciles (next query drives the continuation),
        // republishes, and the hit path returns — now including any
        // new consequences.
        let want = e.query(path, &[Some(zero), None]).unwrap();
        publisher.publish(&mut e);
        let snap = publisher.reader().current();
        let got = snap.try_query(path, &[Some(zero), None]).unwrap();
        assert_eq!(got.sorted(), want.rows.sorted());
    }

    #[test]
    fn unchanged_relations_are_shared_across_epochs() {
        let (mut e, _edge, path) = chain_engine(6);
        e.run().unwrap();
        let mut publisher = SnapshotPublisher::new(&mut e);
        let s1 = publisher.reader().current();
        publisher.publish(&mut e);
        let s2 = publisher.reader().current();
        assert!(s2.epoch() > s1.epoch());
        let i = path.index();
        assert!(
            Arc::ptr_eq(&s1.rels[i], &s2.rels[i]),
            "untouched relations must be shared, not re-cloned"
        );
        assert!(
            Arc::ptr_eq(&s1.store, &s2.store),
            "unchanged store is shared"
        );
        // Old epochs stay fully readable while held.
        let zero = s1.store().find_int(0).unwrap();
        assert_eq!(
            s1.try_query(path, &[Some(zero), None]).unwrap().len(),
            s2.try_query(path, &[Some(zero), None]).unwrap().len()
        );
    }
}
