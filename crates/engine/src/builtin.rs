//! Builtin relation evaluation with binding modes.
//!
//! Each builtin supports a set of *modes*: which arguments must be
//! bound for evaluation to be possible, and what gets enumerated when
//! the others are free. [`mode_ok`] is the static mode table used by
//! the planner; [`enumerate`] produces the candidate ground argument
//! tuples at run time (the caller pattern-matches them back against
//! the argument patterns, which handles destructuring like `X = {N}`).
//!
//! Free set-sorted arguments (e.g. `x in S` with `S` free, `subseteq`
//! with a free side) are enumerated over the **active set universe** —
//! every set interned in the store — under the [`SetUniverse`] policy.
//! This is the executable restriction of the paper's infinitary
//! Herbrand sort-s universe (see DESIGN.md §3).

use lps_term::{setops, TermId, TermStore};

use crate::config::SetUniverse;
use crate::error::EngineError;
use crate::rule::Builtin;

/// Is the builtin evaluable when exactly the arguments flagged in
/// `bound` are bound, under the given set-universe policy?
pub fn mode_ok(b: Builtin, bound: &[bool], policy: SetUniverse) -> bool {
    debug_assert_eq!(bound.len(), b.arity());
    let enumerable = !matches!(policy, SetUniverse::Reject);
    match b {
        Builtin::Eq => bound[0] || bound[1],
        Builtin::Ne | Builtin::NotIn | Builtin::Lt | Builtin::Le => bound[0] && bound[1],
        Builtin::In => bound[1] || enumerable,
        Builtin::SubsetEq => (bound[0] && bound[1]) || enumerable,
        Builtin::Union => {
            (bound[0] && bound[1]) || (bound[2] && (bound[0] || bound[1] || enumerable))
        }
        Builtin::DisjUnion | Builtin::Scons | Builtin::SconsMin => {
            (bound[0] && bound[1]) || bound[2]
        }
        Builtin::Card => bound[0] || (bound[1] && enumerable),
        Builtin::Add | Builtin::Sub => bound.iter().filter(|&&b| b).count() >= 2,
        Builtin::Mul => (bound[0] && bound[1]) || (bound[2] && (bound[0] || bound[1])),
    }
}

/// Candidate ground argument tuples for `b`, given the already-known
/// ground values in `known` (`None` = free). Guaranteed consistent
/// with the bound positions, so the caller's pattern matching on bound
/// positions always succeeds.
///
/// May intern new terms (computed unions, integers) into `store`.
pub fn enumerate(
    b: Builtin,
    known: &[Option<TermId>],
    store: &mut TermStore,
    policy: SetUniverse,
) -> Result<Vec<Vec<TermId>>, EngineError> {
    debug_assert_eq!(known.len(), b.arity());
    match b {
        Builtin::Eq => eq(known),
        Builtin::Ne => {
            let (x, y) = (req(b, known, 0)?, req(b, known, 1)?);
            Ok(if x != y { vec![vec![x, y]] } else { vec![] })
        }
        Builtin::In => member(known, store, policy),
        Builtin::NotIn => {
            let (x, s) = (req(b, known, 0)?, req(b, known, 1)?);
            // ELPS (§5): atoms have no elements, so x ∉ atom holds.
            let holds = match store.set_elems(s) {
                Some(elems) => elems.binary_search(&x).is_err(),
                None => true,
            };
            Ok(if holds { vec![vec![x, s]] } else { vec![] })
        }
        Builtin::SubsetEq => subseteq(known, store, policy),
        Builtin::Union => union(known, store, policy),
        Builtin::DisjUnion => disj_union(known, store),
        Builtin::Scons => scons(known, store),
        Builtin::SconsMin => scons_min(known, store),
        Builtin::Card => card(known, store),
        Builtin::Add => add(known, store),
        Builtin::Sub => sub(known, store),
        Builtin::Mul => mul(known, store),
        Builtin::Lt | Builtin::Le => {
            let (x, y) = (req(b, known, 0)?, req(b, known, 1)?);
            let (m, n) = (int_arg(b, store, x)?, int_arg(b, store, y)?);
            let holds = if b == Builtin::Lt { m < n } else { m <= n };
            Ok(if holds { vec![vec![x, y]] } else { vec![] })
        }
    }
}

fn req(b: Builtin, known: &[Option<TermId>], i: usize) -> Result<TermId, EngineError> {
    known[i].ok_or_else(|| EngineError::UnsupportedMode {
        builtin: b.name(),
        mode: mode_string(known),
    })
}

fn mode_string(known: &[Option<TermId>]) -> String {
    let parts: Vec<&str> = known
        .iter()
        .map(|k| if k.is_some() { "bound" } else { "free" })
        .collect();
    format!("({})", parts.join(", "))
}

fn set_arg(b: Builtin, store: &TermStore, id: TermId) -> Result<Vec<TermId>, EngineError> {
    store
        .set_elems(id)
        .map(<[TermId]>::to_vec)
        .ok_or_else(|| EngineError::TypeError {
            builtin: b.name(),
            detail: format!("expected a set, got `{}`", store.display(id)),
        })
}

fn int_arg(b: Builtin, store: &TermStore, id: TermId) -> Result<i64, EngineError> {
    store.as_int(id).ok_or_else(|| EngineError::TypeError {
        builtin: b.name(),
        detail: format!("expected an integer, got `{}`", store.display(id)),
    })
}

fn is_set(store: &TermStore, id: TermId) -> bool {
    store.is_set(id)
}

fn active_sets(store: &TermStore) -> Vec<TermId> {
    store.set_ids().to_vec()
}

fn eq(known: &[Option<TermId>]) -> Result<Vec<Vec<TermId>>, EngineError> {
    match (known[0], known[1]) {
        (Some(x), Some(y)) => Ok(if x == y { vec![vec![x, y]] } else { vec![] }),
        (Some(x), None) => Ok(vec![vec![x, x]]),
        (None, Some(y)) => Ok(vec![vec![y, y]]),
        (None, None) => Err(EngineError::UnsupportedMode {
            builtin: Builtin::Eq.name(),
            mode: mode_string(known),
        }),
    }
}

fn member(
    known: &[Option<TermId>],
    store: &mut TermStore,
    policy: SetUniverse,
) -> Result<Vec<Vec<TermId>>, EngineError> {
    match (known[0], known[1]) {
        (Some(x), Some(s)) => {
            // ELPS (§5): membership in an atom is false, not an error.
            let holds =
                matches!(store.set_elems(s), Some(elems) if elems.binary_search(&x).is_ok());
            Ok(if holds { vec![vec![x, s]] } else { vec![] })
        }
        (None, Some(s)) => {
            let elems = store.set_elems(s).map(<[_]>::to_vec).unwrap_or_default();
            Ok(elems.into_iter().map(|e| vec![e, s]).collect())
        }
        (Some(x), None) => {
            require_enumerable(Builtin::In, known, policy)?;
            // Inverted index: all active sets containing x.
            Ok(store
                .sets_containing(x)
                .iter()
                .map(|&s| vec![x, s])
                .collect())
        }
        (None, None) => {
            require_enumerable(Builtin::In, known, policy)?;
            let mut out = Vec::new();
            for s in active_sets(store) {
                for &e in store.set_elems(s).expect("active sets are sets") {
                    out.push(vec![e, s]);
                }
            }
            Ok(out)
        }
    }
}

fn require_enumerable(
    b: Builtin,
    known: &[Option<TermId>],
    policy: SetUniverse,
) -> Result<(), EngineError> {
    if matches!(policy, SetUniverse::Reject) {
        Err(EngineError::UnsupportedMode {
            builtin: b.name(),
            mode: format!(
                "{} (set enumeration disabled; configure SetUniverse::ActiveSets)",
                mode_string(known)
            ),
        })
    } else {
        Ok(())
    }
}

fn subseteq(
    known: &[Option<TermId>],
    store: &mut TermStore,
    policy: SetUniverse,
) -> Result<Vec<Vec<TermId>>, EngineError> {
    let b = Builtin::SubsetEq;
    match (known[0], known[1]) {
        (Some(x), Some(y)) => {
            check_set(b, store, x)?;
            check_set(b, store, y)?;
            Ok(if setops::subset(store, x, y) {
                vec![vec![x, y]]
            } else {
                vec![]
            })
        }
        (None, Some(y)) => {
            check_set(b, store, y)?;
            require_enumerable(b, known, policy)?;
            Ok(active_sets(store)
                .into_iter()
                .filter(|&s| setops::subset(store, s, y))
                .map(|s| vec![s, y])
                .collect())
        }
        (Some(x), None) => {
            check_set(b, store, x)?;
            require_enumerable(b, known, policy)?;
            Ok(active_sets(store)
                .into_iter()
                .filter(|&s| setops::subset(store, x, s))
                .map(|s| vec![x, s])
                .collect())
        }
        (None, None) => {
            require_enumerable(b, known, policy)?;
            let sets = active_sets(store);
            let mut out = Vec::new();
            for &x in &sets {
                for &y in &sets {
                    if setops::subset(store, x, y) {
                        out.push(vec![x, y]);
                    }
                }
            }
            Ok(out)
        }
    }
}

fn check_set(b: Builtin, store: &TermStore, id: TermId) -> Result<(), EngineError> {
    if is_set(store, id) {
        Ok(())
    } else {
        Err(EngineError::TypeError {
            builtin: b.name(),
            detail: format!("expected a set, got `{}`", store.display(id)),
        })
    }
}

fn union(
    known: &[Option<TermId>],
    store: &mut TermStore,
    policy: SetUniverse,
) -> Result<Vec<Vec<TermId>>, EngineError> {
    let b = Builtin::Union;
    match (known[0], known[1], known[2]) {
        (Some(x), Some(y), z) => {
            check_set(b, store, x)?;
            check_set(b, store, y)?;
            let u = setops::union(store, x, y);
            Ok(match z {
                Some(z) if z != u => vec![],
                _ => vec![vec![x, y, u]],
            })
        }
        (Some(x), None, Some(z)) => {
            check_set(b, store, x)?;
            check_set(b, store, z)?;
            if !setops::subset(store, x, z) {
                return Ok(vec![]);
            }
            require_enumerable(b, known, policy)?;
            Ok(active_sets(store)
                .into_iter()
                .filter(|&y| setops::union(store, x, y) == z)
                .map(|y| vec![x, y, z])
                .collect())
        }
        (None, Some(y), Some(z)) => {
            check_set(b, store, y)?;
            check_set(b, store, z)?;
            if !setops::subset(store, y, z) {
                return Ok(vec![]);
            }
            require_enumerable(b, known, policy)?;
            Ok(active_sets(store)
                .into_iter()
                .filter(|&x| setops::union(store, x, y) == z)
                .map(|x| vec![x, y, z])
                .collect())
        }
        (None, None, Some(z)) => {
            check_set(b, store, z)?;
            require_enumerable(b, known, policy)?;
            let candidates: Vec<TermId> = active_sets(store)
                .into_iter()
                .filter(|&s| setops::subset(store, s, z))
                .collect();
            let mut out = Vec::new();
            for &x in &candidates {
                for &y in &candidates {
                    if setops::union(store, x, y) == z {
                        out.push(vec![x, y, z]);
                    }
                }
            }
            Ok(out)
        }
        _ => Err(EngineError::UnsupportedMode {
            builtin: b.name(),
            mode: mode_string(known),
        }),
    }
}

fn disj_union(
    known: &[Option<TermId>],
    store: &mut TermStore,
) -> Result<Vec<Vec<TermId>>, EngineError> {
    let b = Builtin::DisjUnion;
    match (known[0], known[1], known[2]) {
        (Some(x), Some(y), z) => {
            check_set(b, store, x)?;
            check_set(b, store, y)?;
            if !setops::disjoint(store, x, y) {
                return Ok(vec![]);
            }
            let u = setops::union(store, x, y);
            Ok(match z {
                Some(z) if z != u => vec![],
                _ => vec![vec![x, y, u]],
            })
        }
        (Some(x), None, Some(z)) => {
            check_set(b, store, x)?;
            check_set(b, store, z)?;
            if !setops::subset(store, x, z) {
                return Ok(vec![]);
            }
            let y = setops::difference(store, z, x);
            Ok(vec![vec![x, y, z]])
        }
        (None, Some(y), Some(z)) => {
            check_set(b, store, y)?;
            check_set(b, store, z)?;
            if !setops::subset(store, y, z) {
                return Ok(vec![]);
            }
            let x = setops::difference(store, z, y);
            Ok(vec![vec![x, y, z]])
        }
        (None, None, Some(z)) => {
            check_set(b, store, z)?;
            // The paper-faithful inverse mode (Example 5): all 2^|z|
            // ordered disjoint partitions.
            Ok(setops::disjoint_union_decompositions(store, z)
                .into_iter()
                .map(|(x, y)| vec![x, y, z])
                .collect())
        }
        _ => Err(EngineError::UnsupportedMode {
            builtin: b.name(),
            mode: mode_string(known),
        }),
    }
}

fn scons(known: &[Option<TermId>], store: &mut TermStore) -> Result<Vec<Vec<TermId>>, EngineError> {
    let b = Builtin::Scons;
    match (known[0], known[1], known[2]) {
        (Some(x), Some(y), z) => {
            check_set(b, store, y)?;
            let s = setops::scons(store, x, y);
            Ok(match z {
                Some(z) if z != s => vec![],
                _ => vec![vec![x, y, s]],
            })
        }
        (None, None, Some(z)) => {
            check_set(b, store, z)?;
            // Z = {x} ∪ Y admits, per x ∈ Z, both Y = Z∖{x} and Y = Z.
            let mut out = Vec::new();
            for (x, rest) in setops::scons_decompositions(store, z) {
                out.push(vec![x, rest, z]);
                out.push(vec![x, z, z]);
            }
            Ok(out)
        }
        (Some(x), None, Some(z)) => {
            check_set(b, store, z)?;
            if !setops::member(store, x, z) {
                return Ok(vec![]);
            }
            let singleton = store.set(vec![x]);
            let rest = setops::difference(store, z, singleton);
            let mut out = vec![vec![x, rest, z]];
            if rest != z {
                out.push(vec![x, z, z]);
            }
            Ok(out)
        }
        (None, Some(y), Some(z)) => {
            check_set(b, store, y)?;
            check_set(b, store, z)?;
            if !setops::subset(store, y, z) {
                return Ok(vec![]);
            }
            let extra = setops::difference(store, z, y);
            let extra_elems = set_arg(b, store, extra)?;
            match extra_elems.len() {
                0 => {
                    // Y = Z: any x ∈ Z works.
                    let elems = set_arg(b, store, z)?;
                    Ok(elems.into_iter().map(|x| vec![x, y, z]).collect())
                }
                1 => Ok(vec![vec![extra_elems[0], y, z]]),
                _ => Ok(vec![]),
            }
        }
        _ => Err(EngineError::UnsupportedMode {
            builtin: b.name(),
            mode: mode_string(known),
        }),
    }
}

fn scons_min(
    known: &[Option<TermId>],
    store: &mut TermStore,
) -> Result<Vec<Vec<TermId>>, EngineError> {
    let b = Builtin::SconsMin;
    match (known[0], known[1], known[2]) {
        (None, None, Some(z)) => {
            check_set(b, store, z)?;
            Ok(setops::scons_min_decomposition(store, z)
                .map(|(x, rest)| vec![vec![x, rest, z]])
                .unwrap_or_default())
        }
        (Some(x), Some(y), z) => {
            check_set(b, store, y)?;
            if setops::member(store, x, y) {
                return Ok(vec![]);
            }
            let s = setops::scons(store, x, y);
            let min = *store
                .set_elems(s)
                .expect("scons returns a set")
                .first()
                .expect("nonempty by construction");
            if min != x {
                return Ok(vec![]);
            }
            Ok(match z {
                Some(z) if z != s => vec![],
                _ => vec![vec![x, y, s]],
            })
        }
        _ => Err(EngineError::UnsupportedMode {
            builtin: b.name(),
            mode: mode_string(known),
        }),
    }
}

fn card(known: &[Option<TermId>], store: &mut TermStore) -> Result<Vec<Vec<TermId>>, EngineError> {
    let b = Builtin::Card;
    match (known[0], known[1]) {
        (Some(s), n) => {
            let c = set_arg(b, store, s)?.len() as i64;
            let c_id = store.int(c);
            Ok(match n {
                Some(n) if n != c_id => vec![],
                _ => vec![vec![s, c_id]],
            })
        }
        (None, Some(n)) => {
            let want = int_arg(b, store, n)?;
            if want < 0 {
                return Ok(vec![]);
            }
            Ok(active_sets(store)
                .into_iter()
                .filter(|&s| store.card(s) == Some(want as usize))
                .map(|s| vec![s, n])
                .collect())
        }
        (None, None) => Err(EngineError::UnsupportedMode {
            builtin: b.name(),
            mode: mode_string(known),
        }),
    }
}

fn arith3(
    b: Builtin,
    known: &[Option<TermId>],
    store: &mut TermStore,
    f: impl Fn(Option<i64>, Option<i64>, Option<i64>) -> Option<Option<(i64, i64, i64)>>,
) -> Result<Vec<Vec<TermId>>, EngineError> {
    let vals: Vec<Option<i64>> = known
        .iter()
        .map(|k| k.map(|id| int_arg(b, store, id)).transpose())
        .collect::<Result<_, _>>()?;
    match f(vals[0], vals[1], vals[2]) {
        None => Err(EngineError::UnsupportedMode {
            builtin: b.name(),
            mode: mode_string(known),
        }),
        Some(None) => Ok(vec![]),
        Some(Some((m, n, k))) => {
            let ids = vec![store.int(m), store.int(n), store.int(k)];
            Ok(vec![ids])
        }
    }
}

fn add(known: &[Option<TermId>], store: &mut TermStore) -> Result<Vec<Vec<TermId>>, EngineError> {
    arith3(Builtin::Add, known, store, |m, n, k| match (m, n, k) {
        (Some(m), Some(n), k) => {
            let sum = m.checked_add(n)?;
            Some(match k {
                Some(k) if k != sum => None,
                _ => Some((m, n, sum)),
            })
        }
        (Some(m), None, Some(k)) => Some(k.checked_sub(m).map(|n| (m, n, k))),
        (None, Some(n), Some(k)) => Some(k.checked_sub(n).map(|m| (m, n, k))),
        _ => None,
    })
}

fn sub(known: &[Option<TermId>], store: &mut TermStore) -> Result<Vec<Vec<TermId>>, EngineError> {
    arith3(Builtin::Sub, known, store, |m, n, k| match (m, n, k) {
        (Some(m), Some(n), k) => {
            let diff = m.checked_sub(n)?;
            Some(match k {
                Some(k) if k != diff => None,
                _ => Some((m, n, diff)),
            })
        }
        (Some(m), None, Some(k)) => Some(m.checked_sub(k).map(|n| (m, n, k))),
        (None, Some(n), Some(k)) => Some(k.checked_add(n).map(|m| (m, n, k))),
        _ => None,
    })
}

fn mul(known: &[Option<TermId>], store: &mut TermStore) -> Result<Vec<Vec<TermId>>, EngineError> {
    arith3(Builtin::Mul, known, store, |m, n, k| match (m, n, k) {
        (Some(m), Some(n), k) => {
            let prod = m.checked_mul(n)?;
            Some(match k {
                Some(k) if k != prod => None,
                _ => Some((m, n, prod)),
            })
        }
        (Some(m), None, Some(k)) => {
            if m == 0 {
                // 0 * n = k: n is unconstrained — unsupported mode.
                None
            } else {
                Some((k % m == 0).then_some((m, k / m, k)))
            }
        }
        (None, Some(n), Some(k)) => {
            if n == 0 {
                None
            } else {
                Some((k % n == 0).then_some((k / n, n, k)))
            }
        }
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_abc() -> (TermStore, TermId, TermId, TermId) {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let c = st.atom("c");
        (st, a, b, c)
    }

    #[test]
    fn eq_propagates_either_direction() {
        let (mut st, a, _, _) = store_abc();
        assert_eq!(
            enumerate(Builtin::Eq, &[Some(a), None], &mut st, SetUniverse::Reject).unwrap(),
            vec![vec![a, a]]
        );
        assert_eq!(
            enumerate(Builtin::Eq, &[None, Some(a)], &mut st, SetUniverse::Reject).unwrap(),
            vec![vec![a, a]]
        );
        assert!(enumerate(Builtin::Eq, &[None, None], &mut st, SetUniverse::Reject).is_err());
    }

    #[test]
    fn member_enumerates_elements() {
        let (mut st, a, b, c) = store_abc();
        let s = st.set(vec![a, c]);
        let sols = enumerate(Builtin::In, &[None, Some(s)], &mut st, SetUniverse::Reject).unwrap();
        assert_eq!(sols, vec![vec![a, s], vec![c, s]]);
        // Bound membership test.
        assert_eq!(
            enumerate(
                Builtin::In,
                &[Some(b), Some(s)],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap()
            .len(),
            0
        );
    }

    #[test]
    fn member_free_set_uses_inverted_index_under_policy() {
        let (mut st, a, b, _) = store_abc();
        let s1 = st.set(vec![a]);
        let s2 = st.set(vec![a, b]);
        let _s3 = st.set(vec![b]);
        let sols = enumerate(
            Builtin::In,
            &[Some(a), None],
            &mut st,
            SetUniverse::ActiveSets,
        )
        .unwrap();
        assert_eq!(sols, vec![vec![a, s1], vec![a, s2]]);
        // Policy Reject refuses.
        assert!(enumerate(Builtin::In, &[Some(a), None], &mut st, SetUniverse::Reject).is_err());
    }

    #[test]
    fn member_of_atom_is_false_not_error() {
        // ELPS (§5): atoms have no elements.
        let (mut st, a, b, _) = store_abc();
        let sols = enumerate(
            Builtin::In,
            &[Some(a), Some(b)],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert!(sols.is_empty());
        let sols = enumerate(
            Builtin::NotIn,
            &[Some(a), Some(b)],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert_eq!(sols.len(), 1);
        let sols = enumerate(Builtin::In, &[None, Some(b)], &mut st, SetUniverse::Reject).unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn union_forward_and_check() {
        let (mut st, a, b, c) = store_abc();
        let xy = st.set(vec![a, b]);
        let yz = st.set(vec![b, c]);
        let all = st.set(vec![a, b, c]);
        let sols = enumerate(
            Builtin::Union,
            &[Some(xy), Some(yz), None],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert_eq!(sols, vec![vec![xy, yz, all]]);
        // Check mode with wrong z fails.
        let sols = enumerate(
            Builtin::Union,
            &[Some(xy), Some(yz), Some(xy)],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn union_inverse_enumerates_active_sets() {
        let (mut st, a, b, _) = store_abc();
        let sa = st.set(vec![a]);
        let sb = st.set(vec![b]);
        let sab = st.set(vec![a, b]);
        let empty = st.empty_set();
        let sols = enumerate(
            Builtin::Union,
            &[None, None, Some(sab)],
            &mut st,
            SetUniverse::ActiveSets,
        )
        .unwrap();
        // Active sets: {a}, {b}, {a,b}, {}. Pairs unioning to {a,b}:
        // ({a},{b}), ({b},{a}), ({a},{a,b}), ({a,b},{a}), ({b},{a,b}),
        // ({a,b},{b}), ({a,b},{a,b}), ({},{a,b}), ({a,b},{}).
        assert_eq!(sols.len(), 9);
        for sol in &sols {
            assert_eq!(setops::union(&mut st, sol[0], sol[1]), sab);
        }
        assert!(sols.contains(&vec![sa, sb, sab]));
        assert!(sols.contains(&vec![empty, sab, sab]));
    }

    #[test]
    fn disj_union_inverse_is_exponential_partition() {
        let (mut st, a, b, _) = store_abc();
        let sab = st.set(vec![a, b]);
        let sols = enumerate(
            Builtin::DisjUnion,
            &[None, None, Some(sab)],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert_eq!(sols.len(), 4, "2^2 ordered partitions");
        // Forward mode refuses overlapping operands.
        let sa = st.set(vec![a]);
        let sols = enumerate(
            Builtin::DisjUnion,
            &[Some(sa), Some(sa), None],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn disj_union_difference_mode() {
        let (mut st, a, b, c) = store_abc();
        let all = st.set(vec![a, b, c]);
        let sa = st.set(vec![a]);
        let sbc = st.set(vec![b, c]);
        let sols = enumerate(
            Builtin::DisjUnion,
            &[Some(sa), None, Some(all)],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert_eq!(sols, vec![vec![sa, sbc, all]]);
    }

    #[test]
    fn scons_decomposition_includes_both_rest_variants() {
        let (mut st, a, b, _) = store_abc();
        let sab = st.set(vec![a, b]);
        let sols = enumerate(
            Builtin::Scons,
            &[None, None, Some(sab)],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        // For each x ∈ {a,b}: (x, Z∖{x}, Z) and (x, Z, Z).
        assert_eq!(sols.len(), 4);
        for sol in &sols {
            let rebuilt = setops::scons(&mut st, sol[0], sol[1]);
            assert_eq!(rebuilt, sab);
        }
    }

    #[test]
    fn scons_min_is_single_canonical() {
        let (mut st, a, b, _) = store_abc();
        let sab = st.set(vec![a, b]);
        let sb = st.set(vec![b]);
        let sols = enumerate(
            Builtin::SconsMin,
            &[None, None, Some(sab)],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert_eq!(sols, vec![vec![a, sb, sab]]);
        let empty = st.empty_set();
        let sols = enumerate(
            Builtin::SconsMin,
            &[None, None, Some(empty)],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn card_computes_and_filters() {
        let (mut st, a, b, _) = store_abc();
        let sab = st.set(vec![a, b]);
        let sols = enumerate(
            Builtin::Card,
            &[Some(sab), None],
            &mut st,
            SetUniverse::Reject,
        )
        .unwrap();
        let two = st.int(2);
        assert_eq!(sols, vec![vec![sab, two]]);
        // Reverse: active sets of card 1.
        let sa = st.set(vec![a]);
        let one = st.int(1);
        let sols = enumerate(
            Builtin::Card,
            &[None, Some(one)],
            &mut st,
            SetUniverse::ActiveSets,
        )
        .unwrap();
        assert_eq!(sols, vec![vec![sa, one]]);
    }

    #[test]
    fn arithmetic_all_modes() {
        let mut st = TermStore::new();
        let i2 = st.int(2);
        let i3 = st.int(3);
        let i5 = st.int(5);
        let i6 = st.int(6);
        // add
        assert_eq!(
            enumerate(
                Builtin::Add,
                &[Some(i2), Some(i3), None],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap(),
            vec![vec![i2, i3, i5]]
        );
        assert_eq!(
            enumerate(
                Builtin::Add,
                &[Some(i2), None, Some(i5)],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap(),
            vec![vec![i2, i3, i5]]
        );
        assert_eq!(
            enumerate(
                Builtin::Add,
                &[None, Some(i3), Some(i5)],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap(),
            vec![vec![i2, i3, i5]]
        );
        // sub: 5 - 3 = 2
        assert_eq!(
            enumerate(
                Builtin::Sub,
                &[Some(i5), Some(i3), None],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap(),
            vec![vec![i5, i3, i2]]
        );
        // mul: 2 * 3 = 6; inverse 6 / 2 = 3
        assert_eq!(
            enumerate(
                Builtin::Mul,
                &[Some(i2), Some(i3), None],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap(),
            vec![vec![i2, i3, i6]]
        );
        assert_eq!(
            enumerate(
                Builtin::Mul,
                &[Some(i2), None, Some(i6)],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap(),
            vec![vec![i2, i3, i6]]
        );
        // non-divisible product: no solutions.
        assert!(enumerate(
            Builtin::Mul,
            &[Some(i2), None, Some(i5)],
            &mut st,
            SetUniverse::Reject
        )
        .unwrap()
        .is_empty());
        // 0 * n = 0 is an unsupported mode (n unconstrained).
        let zero = st.int(0);
        assert!(enumerate(
            Builtin::Mul,
            &[Some(zero), None, Some(zero)],
            &mut st,
            SetUniverse::Reject
        )
        .is_err());
    }

    #[test]
    fn comparisons() {
        let mut st = TermStore::new();
        let i2 = st.int(2);
        let i3 = st.int(3);
        assert_eq!(
            enumerate(
                Builtin::Lt,
                &[Some(i2), Some(i3)],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap()
            .len(),
            1
        );
        assert!(enumerate(
            Builtin::Lt,
            &[Some(i3), Some(i2)],
            &mut st,
            SetUniverse::Reject
        )
        .unwrap()
        .is_empty());
        assert_eq!(
            enumerate(
                Builtin::Le,
                &[Some(i2), Some(i2)],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap()
            .len(),
            1
        );
        // Comparing a non-integer is a type error.
        let a = st.atom("a");
        assert!(enumerate(
            Builtin::Lt,
            &[Some(a), Some(i2)],
            &mut st,
            SetUniverse::Reject
        )
        .is_err());
    }

    #[test]
    fn subseteq_modes() {
        let (mut st, a, b, _) = store_abc();
        let sa = st.set(vec![a]);
        let sab = st.set(vec![a, b]);
        // Both bound.
        assert_eq!(
            enumerate(
                Builtin::SubsetEq,
                &[Some(sa), Some(sab)],
                &mut st,
                SetUniverse::Reject
            )
            .unwrap()
            .len(),
            1
        );
        // Free left side: active subsets of {a,b} are {a} and {a,b}
        // (the empty set hasn't been interned yet).
        let sols = enumerate(
            Builtin::SubsetEq,
            &[None, Some(sab)],
            &mut st,
            SetUniverse::ActiveSets,
        )
        .unwrap();
        assert_eq!(sols.len(), 2);
        // Reject policy errors on the free mode.
        assert!(enumerate(
            Builtin::SubsetEq,
            &[None, Some(sab)],
            &mut st,
            SetUniverse::Reject
        )
        .is_err());
    }

    #[test]
    fn mode_table_matches_enumerate_behaviour() {
        // Spot-check a few rows of the static mode table.
        assert!(mode_ok(Builtin::Eq, &[true, false], SetUniverse::Reject));
        assert!(!mode_ok(Builtin::Eq, &[false, false], SetUniverse::Reject));
        assert!(mode_ok(Builtin::In, &[false, true], SetUniverse::Reject));
        assert!(!mode_ok(Builtin::In, &[true, false], SetUniverse::Reject));
        assert!(mode_ok(
            Builtin::In,
            &[true, false],
            SetUniverse::ActiveSets
        ));
        assert!(mode_ok(
            Builtin::DisjUnion,
            &[false, false, true],
            SetUniverse::Reject
        ));
        assert!(!mode_ok(
            Builtin::Union,
            &[false, false, true],
            SetUniverse::Reject
        ));
        assert!(mode_ok(
            Builtin::Union,
            &[false, false, true],
            SetUniverse::ActiveSets
        ));
        assert!(mode_ok(
            Builtin::Add,
            &[true, false, true],
            SetUniverse::Reject
        ));
        assert!(!mode_ok(
            Builtin::Add,
            &[true, false, false],
            SetUniverse::Reject
        ));
    }
}
