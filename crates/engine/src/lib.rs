//! # `lps-engine` — bottom-up Datalog-with-sets evaluation substrate
//!
//! This crate is the executable semantics layer for Kuper's *Logic
//! Programming with Sets* (PODS 1987): a bottom-up Datalog engine whose
//! values include canonical finite sets, and whose rules may carry the
//! paper's *restricted universal quantifiers* `(∀x ∈ X)`
//! (Definition 4/5), stratified negation (§4.2), and LDL grouping
//! heads (Definition 14, used in the §6 comparisons).
//!
//! The engine evaluates the paper's `T_P` operator (Theorem 5) by
//! naive or semi-naive iteration, per stratum. Rules arrive as the
//! [`rule::Rule`] IR — `lps-core` lowers surface programs into it.
//!
//! Layering:
//!
//! * [`pattern`] — terms with variables, matching, environments;
//! * [`rule`] — the rule IR and the builtin vocabulary;
//! * [`relation`] — tuple storage with on-demand indexes;
//! * [`builtin`] — mode-driven builtin evaluation;
//! * [`plan`] — safety analysis, join ordering, index selection;
//! * [`stats`] — per-predicate cardinality statistics feeding the
//!   cost-based join ordering and SIPS selection (E16);
//! * [`strata`] — stratification (Tarjan SCC);
//! * [`magic`] — the demand (magic-set) rewrite behind
//!   [`Engine::query`];
//! * [`eval`] / [`fixpoint`] — the executor and the drivers;
//! * [`parallel`] — the scoped-pool join fan-out (E15);
//! * [`engine`] — the public [`Engine`] session;
//! * [`snapshot`] — epoch-published immutable snapshots for
//!   single-writer / many-reader query serving (E17).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builtin;
pub mod config;
pub mod engine;
pub mod error;
pub mod eval;
pub mod fixpoint;
pub mod magic;
pub mod parallel;
pub mod pattern;
pub mod plan;
pub mod pred;
pub mod relation;
pub mod rule;
pub mod snapshot;
pub mod stats;
pub mod strata;

pub use config::{EvalConfig, EvalStats, FixpointStrategy, SetUniverse};
pub use engine::{Engine, EngineState, QueryPath, QueryResult, RowSet, Rows};
pub use error::EngineError;
pub use magic::{adornment_of, adornment_string, Adornment, SipsCost};
pub use parallel::ParExec;
pub use pred::{PredId, PredRegistry};
pub use relation::Relation;
pub use rule::{BodyLit, Builtin, GroupSpec, QuantGroup, Rule};
pub use snapshot::{EngineSnapshot, SnapshotPublisher, SnapshotReader};
pub use stats::{Stats, StatsCache};
