//! The rule executor: joins, builtin solving, and restricted-universal
//! quantifier evaluation.
//!
//! [`eval_rule_variant`] runs one planned [`Variant`] of a rule against
//! the current relation state and invokes a sink per satisfying
//! variable assignment. The drivers (`naive`, `seminaive`) build head
//! tuples or grouping pairs from the sink callbacks.
//!
//! ## Quantifier-group evaluation
//!
//! `(∀q₁∈D₁)…(∀qₙ∈Dₙ)(inner)` is evaluated per the case analysis in
//! DESIGN.md:
//!
//! 1. **Unbound domains** are enumerated over the active set universe
//!    (policy-gated) and bound one at a time.
//! 2. With all domains bound, an **empty product** (some `Dᵢ = ∅`)
//!    satisfies the group vacuously — Definition 4's "(∀x∈X)φ is true
//!    whenever X is the empty set". Free variables that remain unbound
//!    in that case range over the active universe.
//! 3. With a nonempty product and all free variables bound, each tuple
//!    of the product is **checked** directly against the relations.
//! 4. With unbound free variables, the inner conjunction is evaluated
//!    as a join and grouped into a **coverage map**; a free-variable
//!    binding qualifies iff the whole product is covered.

use std::cell::{Cell, RefCell};

use lps_term::{FxHashMap, FxHashSet, Sort, TermId, TermStore};

use crate::builtin;
use crate::config::SetUniverse;
use crate::error::EngineError;
use crate::pattern::{match_tuple, Env, Pattern, VarId};
use crate::plan::{QuantPlan, Step, Variant};
use crate::relation::{hash_masked_tuple, Relation};
use crate::rule::{BodyLit, QuantGroup, Rule};

/// Interior-mutable counters for the indexed-join probe path, threaded
/// through [`RelViews`] so the recursive executor can count without
/// extra parameters. The fixpoint drivers fold them into
/// [`crate::config::EvalStats`] after each stratum.
#[derive(Debug, Default)]
pub struct ProbeCounters {
    /// Indexed lookups performed ([`Relation::lookup`] calls).
    pub probes: Cell<u64>,
    /// Row ids yielded by those lookups.
    pub rows: Cell<u64>,
    /// Heap allocations on the probe path. Only compound key patterns
    /// (set/function literals that must intern a term per probe)
    /// allocate; flat `Var`/`Ground` keys are built into a stack
    /// buffer, so this stays 0 on ordinary joins.
    pub allocs: Cell<u64>,
}

impl ProbeCounters {
    #[inline]
    fn bump(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get() + by);
    }
}

/// Per-literal probe attribution for `:profile`, keyed by
/// `(CompiledRule::id, outer-literal index)`. Interior-mutable for the
/// same reason as [`ProbeCounters`]: the recursive executor holds the
/// views immutably. Aggregation happens across every variant and round
/// of a run, so the totals are what the whole fixpoint actually spent
/// per body literal.
#[derive(Debug, Default)]
pub struct StepProfiler {
    tab: RefCell<FxHashMap<(u32, u32), (u64, u64)>>,
}

impl StepProfiler {
    /// Add `probes` lookups yielding `rows` rows to literal `lit` of
    /// rule `rule`.
    pub fn record(&self, rule: u32, lit: u32, probes: u64, rows: u64) {
        let mut tab = self.tab.borrow_mut();
        let e = tab.entry((rule, lit)).or_insert((0, 0));
        e.0 += probes;
        e.1 += rows;
    }

    /// `(probes, rows)` recorded for literal `lit` of rule `rule`.
    pub fn get(&self, rule: u32, lit: u32) -> (u64, u64) {
        self.tab
            .borrow()
            .get(&(rule, lit))
            .copied()
            .unwrap_or((0, 0))
    }
}

/// Read-only view of the relation state during one rule evaluation.
pub struct RelViews<'a> {
    /// Full relations, indexed by `PredId::index()`.
    pub full: &'a [Relation],
    /// Delta relations (last iteration's new tuples), same indexing.
    /// Empty relations when running naive.
    pub delta: &'a [Relation],
    /// Probe counters for this evaluation pass.
    pub counters: &'a ProbeCounters,
    /// Per-literal attribution, tagged with the id of the rule being
    /// evaluated. `None` outside `:profile` runs — the hot path pays
    /// one branch.
    pub profile: Option<(&'a StepProfiler, u32)>,
}

/// Optional restriction used by the semi-naive ∀-trigger (experiment
/// E9): when re-evaluating a quantified rule because inner predicates
/// grew, only domain values intersecting the newly derived elements
/// can yield new heads.
pub struct QuantTrigger<'a> {
    /// Set ids that contain at least one newly derived element.
    pub candidate_sets: &'a FxHashSet<TermId>,
}

/// Evaluate one variant of `rule`, calling `sink` once per satisfying
/// assignment (with all head/grouping variables bound).
#[allow(clippy::too_many_arguments)]
pub fn eval_rule_variant(
    rule: &Rule,
    variant: &Variant,
    quant_plan: Option<&QuantPlan>,
    store: &mut TermStore,
    views: &RelViews<'_>,
    policy: SetUniverse,
    trigger: Option<&QuantTrigger<'_>>,
    sink: &mut dyn FnMut(&mut TermStore, &Env) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    let mut env = Env::new(rule.num_vars);
    run_steps(
        &rule.outer,
        &variant.steps,
        0,
        store,
        views,
        policy,
        &mut env,
        &mut |store, env| match (&rule.quant, quant_plan) {
            (Some(group), Some(plan)) => eval_quant(
                group,
                plan,
                store,
                views,
                policy,
                trigger,
                env,
                &mut |store, env| {
                    // Post-group checks: literals whose variables the
                    // group just bound (e.g. the ¬C(X) of §4.2).
                    let mut env2 = env.clone();
                    run_steps(
                        &rule.outer,
                        &variant.post_steps,
                        0,
                        store,
                        views,
                        policy,
                        &mut env2,
                        &mut |store, env2| sink(store, env2),
                    )
                },
            ),
            _ => {
                let mut env2 = env.clone();
                run_steps(
                    &rule.outer,
                    &variant.post_steps,
                    0,
                    store,
                    views,
                    policy,
                    &mut env2,
                    &mut |store, env2| sink(store, env2),
                )
            }
        },
    )
}

/// Recursively execute join steps.
#[allow(clippy::too_many_arguments)]
fn run_steps(
    lits: &[BodyLit],
    steps: &[Step],
    k: usize,
    store: &mut TermStore,
    views: &RelViews<'_>,
    policy: SetUniverse,
    env: &mut Env,
    sink: &mut dyn FnMut(&mut TermStore, &mut Env) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    if k == steps.len() {
        return sink(store, env);
    }
    match &steps[k] {
        Step::Pos {
            lit,
            mask,
            delta,
            flat,
        } => {
            let (pred, args) = match &lits[*lit] {
                BodyLit::Pos(p, a) => (*p, a),
                other => unreachable!("Pos step on {other:?}"),
            };
            let rel = if *delta {
                &views.delta[pred.index()]
            } else {
                &views.full[pred.index()]
            };
            if *mask == 0 {
                if let Some((prof, rid)) = views.profile {
                    prof.record(rid, *lit as u32, 1, rel.len() as u64);
                }
                for row in 0..rel.len() as u32 {
                    match_row_then_continue(
                        lits,
                        steps,
                        k,
                        store,
                        views,
                        policy,
                        env,
                        sink,
                        args,
                        rel.row(row),
                        *flat,
                    )?;
                }
            } else {
                // Build the probe key into a stack buffer, in ascending
                // column order (arity ≤ 32) — the indexed-join path
                // performs no heap allocation.
                let mut m = *mask;
                let first_col = m.trailing_zeros() as usize;
                m &= m - 1;
                let mut key = [build_key_col(&args[first_col], store, env, views.counters); 32];
                let mut klen = 1;
                while m != 0 {
                    let col = m.trailing_zeros() as usize;
                    key[klen] = build_key_col(&args[col], store, env, views.counters);
                    klen += 1;
                    m &= m - 1;
                }
                ProbeCounters::bump(&views.counters.probes, 1);
                let rows = rel.lookup(*mask, &key[..klen]);
                ProbeCounters::bump(&views.counters.rows, rows.len() as u64);
                if let Some((prof, rid)) = views.profile {
                    prof.record(rid, *lit as u32, 1, rows.len() as u64);
                }
                for &row in rows {
                    match_row_then_continue(
                        lits,
                        steps,
                        k,
                        store,
                        views,
                        policy,
                        env,
                        sink,
                        args,
                        rel.row(row),
                        *flat,
                    )?;
                }
            }
            Ok(())
        }
        Step::BuiltinStep { lit, flat } => {
            let (b, args) = match &lits[*lit] {
                BodyLit::Builtin(b, a) => (*b, a),
                other => unreachable!("Builtin step on {other:?}"),
            };
            let known: Vec<Option<TermId>> = args
                .iter()
                .map(|p| {
                    if p.is_bound(env) {
                        p.build(store, env)
                    } else {
                        None
                    }
                })
                .collect();
            let candidates = builtin::enumerate(b, &known, store, policy)?;
            for cand in candidates {
                match_row_then_continue(
                    lits, steps, k, store, views, policy, env, sink, args, &cand, *flat,
                )?;
            }
            Ok(())
        }
        Step::NegStep { lit } => {
            let (pred, args) = match &lits[*lit] {
                BodyLit::Neg(p, a) => (*p, a),
                other => unreachable!("Neg step on {other:?}"),
            };
            let mut tuple = Vec::with_capacity(args.len());
            for arg in args {
                tuple.push(
                    arg.build(store, env)
                        .expect("planner guarantees negation is ground"),
                );
            }
            if !views.full[pred.index()].contains(&tuple) {
                run_steps(lits, steps, k + 1, store, views, policy, env, sink)?;
            }
            Ok(())
        }
        Step::EnumUniverse { var, sort } => {
            let universe = universe_of_sort(store, *sort);
            for t in universe {
                let mark = env.mark();
                env.bind(*var, t);
                run_steps(lits, steps, k + 1, store, views, policy, env, sink)?;
                env.undo_to(mark);
            }
            Ok(())
        }
    }
}

/// Build one probe-key column. Flat `Var`/`Ground` patterns read a
/// binding or copy an id; compound patterns must intern a term, which
/// allocates — counted so `EvalStats` can prove the ordinary join path
/// is allocation-free.
#[inline]
fn build_key_col(
    arg: &Pattern,
    store: &mut TermStore,
    env: &Env,
    counters: &ProbeCounters,
) -> TermId {
    if !matches!(arg, Pattern::Var(_) | Pattern::Ground(_)) {
        ProbeCounters::bump(&counters.allocs, 1);
    }
    arg.build(store, env)
        .expect("planner guarantees bound columns")
}

/// Match one relation row (or builtin candidate tuple) against `args`
/// and recurse into the remaining steps for each solution. Flat tuples
/// (all `Var`/`Ground` args, precomputed by the planner) have at most
/// one solution and bind in place with no allocation; general patterns
/// fall back to solution capture.
#[allow(clippy::too_many_arguments)]
fn match_row_then_continue(
    lits: &[BodyLit],
    steps: &[Step],
    k: usize,
    store: &mut TermStore,
    views: &RelViews<'_>,
    policy: SetUniverse,
    env: &mut Env,
    sink: &mut dyn FnMut(&mut TermStore, &mut Env) -> Result<(), EngineError>,
    args: &[Pattern],
    tuple: &[TermId],
    flat: bool,
) -> Result<(), EngineError> {
    if flat {
        let mark = env.mark();
        if match_flat(args, tuple, env) {
            run_steps(lits, steps, k + 1, store, views, policy, env, sink)?;
        }
        env.undo_to(mark);
        return Ok(());
    }
    let sols = match_solutions(store, args, tuple, env);
    for bindings in sols {
        let mark = env.mark();
        env.apply(&bindings);
        run_steps(lits, steps, k + 1, store, views, policy, env, sink)?;
        env.undo_to(mark);
    }
    Ok(())
}

/// Match a flat (all `Var`/`Ground`) argument tuple against a ground
/// tuple, binding unbound variables in place. Returns whether the whole
/// tuple matched; the caller undoes any partial bindings via its mark.
#[inline]
fn match_flat(args: &[Pattern], tuple: &[TermId], env: &mut Env) -> bool {
    for (p, &t) in args.iter().zip(tuple) {
        match p {
            Pattern::Ground(id) => {
                if *id != t {
                    return false;
                }
            }
            Pattern::Var(v) => match env.get(*v) {
                Some(bound) => {
                    if bound != t {
                        return false;
                    }
                }
                None => env.bind(*v, t),
            },
            _ => unreachable!("flat tuple has Var/Ground args only"),
        }
    }
    true
}

/// Plain (non-`Cell`) probe counters for the parallel join workers,
/// which own their counter state exclusively; the fixpoint driver folds
/// them into the shared [`ProbeCounters`] after the scope joins.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FlatCounters {
    /// Indexed lookups performed.
    pub probes: u64,
    /// Row ids yielded by those lookups.
    pub rows: u64,
}

/// One probe-key column of a flat step. Parallel-safe rules carry only
/// `Var`/`Ground` patterns, so no term is ever interned — the whole
/// store-free executor rests on this.
#[inline]
fn flat_key_col(arg: &Pattern, env: &Env) -> TermId {
    match arg {
        Pattern::Ground(id) => *id,
        Pattern::Var(v) => env.get(*v).expect("planner guarantees bound columns"),
        _ => unreachable!("parallel-safe rules have flat args only"),
    }
}

/// Build the ground head tuple of a parallel-safe rule (flat
/// `Var`/`Ground` head args) into `out`. Store-free: callable from a
/// worker thread that holds no `TermStore`.
#[inline]
pub(crate) fn flat_head_tuple(args: &[Pattern], env: &Env, out: &mut Vec<TermId>) {
    for a in args {
        out.push(flat_key_col(a, env));
    }
}

/// Run one parallel-safe delta variant over worker `worker`'s share of
/// the delta rows, invoking `sink` once per satisfying assignment.
/// Ownership is decided per row: with `assign = Some(a)` the driver has
/// precomputed `a[row]` (the rebalanced owner for skewed partitions);
/// otherwise a row belongs to the worker its
/// [`Variant::part_mask`]-columns hash to modulo `nworkers`.
/// Store-free and infallible: the parallel-safe fragment has no
/// builtins, no quantifier groups, and no universe enumeration, so
/// nothing interns terms or errors. Returns the number of delta rows
/// this worker owned (the driver's imbalance statistic).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_flat_partition(
    rule: &Rule,
    variant: &Variant,
    full: &[Relation],
    delta: &[Relation],
    worker: usize,
    nworkers: usize,
    assign: Option<&[u8]>,
    counters: &mut FlatCounters,
    sink: &mut dyn FnMut(&Env),
) -> u64 {
    let d = variant
        .delta_lit
        .expect("parallel execution targets delta variants");
    debug_assert!(
        matches!(&variant.steps[0], Step::Pos { lit, delta: true, .. } if *lit == d),
        "the planner orders the delta literal first"
    );
    let (pred, args) = match &rule.outer[d] {
        BodyLit::Pos(p, a) => (*p, a),
        other => unreachable!("delta literal must be positive: {other:?}"),
    };
    let drel = &delta[pred.index()];
    let mut env = Env::new(rule.num_vars);
    let mut owned = 0u64;
    for row in 0..drel.len() as u32 {
        let tuple = drel.row(row);
        let mine = match assign {
            Some(a) => a[row as usize] as usize == worker,
            None => hash_masked_tuple(tuple, variant.part_mask) as usize % nworkers == worker,
        };
        if !mine {
            continue;
        }
        owned += 1;
        let mark = env.mark();
        if match_flat(args, tuple, &mut env) {
            run_flat_steps(
                &rule.outer,
                &variant.steps,
                1,
                full,
                delta,
                &mut env,
                counters,
                sink,
            );
        }
        env.undo_to(mark);
    }
    owned
}

/// Recursive step executor for the store-free parallel path. Mirrors
/// [`run_steps`] restricted to the parallel-safe fragment: flat
/// positive joins (scan or indexed probe) and flat ground negation.
#[allow(clippy::too_many_arguments)]
fn run_flat_steps(
    lits: &[BodyLit],
    steps: &[Step],
    k: usize,
    full: &[Relation],
    delta: &[Relation],
    env: &mut Env,
    counters: &mut FlatCounters,
    sink: &mut dyn FnMut(&Env),
) {
    if k == steps.len() {
        sink(env);
        return;
    }
    match &steps[k] {
        Step::Pos {
            lit,
            mask,
            delta: is_delta,
            flat,
        } => {
            debug_assert!(*flat, "parallel-safe rules have flat steps only");
            let (pred, args) = match &lits[*lit] {
                BodyLit::Pos(p, a) => (*p, a),
                other => unreachable!("Pos step on {other:?}"),
            };
            let rel = if *is_delta {
                &delta[pred.index()]
            } else {
                &full[pred.index()]
            };
            if *mask == 0 {
                for row in 0..rel.len() as u32 {
                    let mark = env.mark();
                    if match_flat(args, rel.row(row), env) {
                        run_flat_steps(lits, steps, k + 1, full, delta, env, counters, sink);
                    }
                    env.undo_to(mark);
                }
            } else {
                // Same stack-buffer key build as the sequential path
                // (ascending column order, arity ≤ 32, no allocation).
                let mut m = *mask;
                let first_col = m.trailing_zeros() as usize;
                m &= m - 1;
                let mut key = [flat_key_col(&args[first_col], env); 32];
                let mut klen = 1;
                while m != 0 {
                    let col = m.trailing_zeros() as usize;
                    key[klen] = flat_key_col(&args[col], env);
                    klen += 1;
                    m &= m - 1;
                }
                counters.probes += 1;
                let rows = rel.lookup(*mask, &key[..klen]);
                counters.rows += rows.len() as u64;
                for &row in rows {
                    let mark = env.mark();
                    if match_flat(args, rel.row(row), env) {
                        run_flat_steps(lits, steps, k + 1, full, delta, env, counters, sink);
                    }
                    env.undo_to(mark);
                }
            }
        }
        Step::NegStep { lit } => {
            let (pred, args) = match &lits[*lit] {
                BodyLit::Neg(p, a) => (*p, a),
                other => unreachable!("Neg step on {other:?}"),
            };
            let mut tuple = Vec::with_capacity(args.len());
            for arg in args {
                tuple.push(flat_key_col(arg, env));
            }
            if !full[pred.index()].contains(&tuple) {
                run_flat_steps(lits, steps, k + 1, full, delta, env, counters, sink);
            }
        }
        Step::BuiltinStep { .. } | Step::EnumUniverse { .. } => {
            unreachable!("parallel-safe rules contain flat Pos/Neg steps only")
        }
    }
}

/// All match solutions of `patterns` against `tuple` under `env`,
/// captured as re-appliable binding lists (the matcher backtracks its
/// own bindings, so we record them).
fn match_solutions(
    store: &TermStore,
    patterns: &[Pattern],
    tuple: &[TermId],
    env: &mut Env,
) -> Vec<Vec<(VarId, TermId)>> {
    let base = env.mark();
    let mut out = Vec::new();
    match_tuple(store, patterns, tuple, env, &mut |env| {
        out.push(env.bindings_since(base));
        false
    });
    out
}

/// Evaluate the quantifier group (see module docs for the case
/// analysis).
///
/// Binders may be **dependent**: a later domain can mention earlier
/// binder variables, as in `(∀S∈F)(∀x∈S)` over nested ELPS sets. The
/// product is therefore walked level by level, rebuilding each domain
/// under the bindings of the outer levels. An empty (or atomic, §5)
/// domain satisfies its subtree vacuously.
#[allow(clippy::too_many_arguments)]
fn eval_quant(
    group: &QuantGroup,
    plan: &QuantPlan,
    store: &mut TermStore,
    views: &RelViews<'_>,
    policy: SetUniverse,
    trigger: Option<&QuantTrigger<'_>>,
    env: &mut Env,
    sink: &mut dyn FnMut(&mut TermStore, &Env) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    // Case 1: bind the first genuinely unbound domain from the active
    // universe. A domain whose variables are earlier binder variables
    // is *dependent*, not unbound — the walk below binds it.
    let mut earlier_binders: Vec<VarId> = Vec::new();
    for (qv, dom) in &group.binders {
        let mut dvars = Vec::new();
        dom.collect_vars(&mut dvars);
        let unbound = dvars
            .iter()
            .any(|v| env.get(*v).is_none() && !earlier_binders.contains(v));
        if unbound {
            let snapshot: Vec<TermId> = store.set_ids().to_vec();
            for set_id in snapshot {
                let sols = match_solutions(store, std::slice::from_ref(dom), &[set_id], env);
                for bindings in sols {
                    let mark = env.mark();
                    env.apply(&bindings);
                    eval_quant(group, plan, store, views, policy, trigger, env, sink)?;
                    env.undo_to(mark);
                }
            }
            return Ok(());
        }
        earlier_binders.push(*qv);
    }

    // Trigger pruning (sound only when every domain is independent of
    // the binder variables, so all domain values are known up front):
    // a re-derivation driven by new inner facts needs some domain to
    // contain a newly derived element.
    if let Some(t) = trigger {
        let mut ids = Vec::with_capacity(group.binders.len());
        let mut all_independent = true;
        for (_, dom) in &group.binders {
            if dom.is_bound(env) {
                ids.push(dom.build(store, env).expect("bound domain"));
            } else {
                all_independent = false;
                break;
            }
        }
        if all_independent && !ids.iter().any(|id| t.candidate_sets.contains(id)) {
            return Ok(());
        }
    }

    // Which free variables are still unbound right now?
    let unbound_free: Vec<VarId> = plan
        .unbound_free
        .iter()
        .copied()
        .filter(|v| env.get(*v).is_none())
        .collect();

    if unbound_free.is_empty() {
        // Case 2/3: dependent walk with a direct check at each leaf.
        // Vacuous levels (empty/atomic domains) succeed trivially.
        if walk_check(group, 0, store, views, policy, env)? {
            return sink(store, env);
        }
        return Ok(());
    }

    // Case 4: coverage analysis. Join the inner conjunction over
    // (quantified vars ∪ unbound free vars), group covered q-tuples by
    // free-var binding, and accept bindings whose dependent product is
    // fully covered.
    let steps = plan
        .inner_steps
        .as_ref()
        .expect("planner provides inner steps when free vars may be unbound");
    let qvars: Vec<VarId> = group.binders.iter().map(|(q, _)| *q).collect();
    let mut cover: FxHashMap<Vec<TermId>, FxHashSet<Vec<TermId>>> = FxHashMap::default();
    run_steps(
        &group.inner,
        steps,
        0,
        store,
        views,
        policy,
        env,
        &mut |_store, env| {
            let free_vals: Vec<TermId> = unbound_free
                .iter()
                .map(|v| env.get(*v).expect("inner join binds free vars"))
                .collect();
            let q_vals: Vec<TermId> = qvars
                .iter()
                .map(|q| env.get(*q).expect("inner join binds quantified vars"))
                .collect();
            cover.entry(free_vals).or_default().insert(q_vals);
            Ok(())
        },
    )?;

    // Does the walk reach any leaf at all? If not, the condition is
    // vacuous: every binding of the live unbound variables qualifies.
    if !walk_has_leaf(group, 0, store, env)? {
        if trigger.is_some() {
            // Vacuous satisfaction doesn't depend on inner facts; it
            // was derived by earlier (non-trigger) passes.
            return Ok(());
        }
        let live: Vec<(VarId, Option<Sort>)> = plan
            .live_unbound
            .iter()
            .zip(&plan.live_sorts)
            .filter(|(v, _)| env.get(**v).is_none())
            .map(|(v, s)| (*v, *s))
            .collect();
        if live.is_empty() {
            return sink(store, env);
        }
        if matches!(policy, SetUniverse::Reject) {
            return Err(EngineError::UnsupportedMode {
                builtin: "forall-in",
                mode: "vacuously-true group with unbound head variables \
                       (set enumeration disabled)"
                    .to_owned(),
            });
        }
        return enum_free(&live, 0, store, env, sink);
    }

    let betas: Vec<Vec<TermId>> = cover.keys().cloned().collect();
    for free_vals in betas {
        let covered = &cover[&free_vals];
        let mut qstack: Vec<TermId> = Vec::with_capacity(group.binders.len());
        if walk_covered(group, 0, store, env, covered, &mut qstack)? {
            let mark = env.mark();
            for (v, val) in unbound_free.iter().zip(&free_vals) {
                env.bind(*v, *val);
            }
            sink(store, env)?;
            env.undo_to(mark);
        }
    }
    Ok(())
}

/// Elements of the `level`-th domain under the current bindings. An
/// atomic value has no elements (ELPS §5) — vacuous subtree.
fn domain_elems(group: &QuantGroup, level: usize, store: &mut TermStore, env: &Env) -> Vec<TermId> {
    let id = group.binders[level]
        .1
        .build(store, env)
        .expect("walk binds earlier levels first");
    store.set_elems(id).map(<[_]>::to_vec).unwrap_or_default()
}

/// Dependent product walk, checking the inner literals at each leaf.
fn walk_check(
    group: &QuantGroup,
    level: usize,
    store: &mut TermStore,
    views: &RelViews<'_>,
    policy: SetUniverse,
    env: &mut Env,
) -> Result<bool, EngineError> {
    if level == group.binders.len() {
        return check_lits(&group.inner, store, views, policy, env);
    }
    let elems = domain_elems(group, level, store, env);
    for e in elems {
        let mark = env.mark();
        env.bind(group.binders[level].0, e);
        let ok = walk_check(group, level + 1, store, views, policy, env)?;
        env.undo_to(mark);
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Does the dependent product have at least one complete assignment?
fn walk_has_leaf(
    group: &QuantGroup,
    level: usize,
    store: &mut TermStore,
    env: &mut Env,
) -> Result<bool, EngineError> {
    if level == group.binders.len() {
        return Ok(true);
    }
    let elems = domain_elems(group, level, store, env);
    for e in elems {
        let mark = env.mark();
        env.bind(group.binders[level].0, e);
        let found = walk_has_leaf(group, level + 1, store, env)?;
        env.undo_to(mark);
        if found {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Dependent product walk against a coverage set: true iff every leaf
/// q-tuple is covered.
fn walk_covered(
    group: &QuantGroup,
    level: usize,
    store: &mut TermStore,
    env: &mut Env,
    covered: &FxHashSet<Vec<TermId>>,
    qstack: &mut Vec<TermId>,
) -> Result<bool, EngineError> {
    if level == group.binders.len() {
        return Ok(covered.contains(qstack));
    }
    let elems = domain_elems(group, level, store, env);
    for e in elems {
        let mark = env.mark();
        env.bind(group.binders[level].0, e);
        qstack.push(e);
        let ok = walk_covered(group, level + 1, store, env, covered, qstack)?;
        qstack.pop();
        env.undo_to(mark);
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The active terms of a given sort (`None` = every term).
fn universe_of_sort(store: &TermStore, sort: Option<Sort>) -> Vec<TermId> {
    match sort {
        Some(Sort::Set) => store.set_ids().to_vec(),
        Some(Sort::Atom) => store.ids().filter(|&id| store.is_atomic(id)).collect(),
        None => store.ids().collect(),
    }
}

/// Enumerate assignments of `vars` over the sort-filtered universe
/// (vacuous-truth case).
fn enum_free(
    vars: &[(VarId, Option<Sort>)],
    k: usize,
    store: &mut TermStore,
    env: &mut Env,
    sink: &mut dyn FnMut(&mut TermStore, &Env) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    if k == vars.len() {
        return sink(store, env);
    }
    let (var, sort) = vars[k];
    let universe = universe_of_sort(store, sort);
    for t in universe {
        let mark = env.mark();
        env.bind(var, t);
        enum_free(vars, k + 1, store, env, sink)?;
        env.undo_to(mark);
    }
    Ok(())
}

/// Check a fully-bound conjunction of literals.
fn check_lits(
    lits: &[BodyLit],
    store: &mut TermStore,
    views: &RelViews<'_>,
    policy: SetUniverse,
    env: &Env,
) -> Result<bool, EngineError> {
    for lit in lits {
        let ok = match lit {
            BodyLit::Pos(pred, args) => {
                let mut tuple = Vec::with_capacity(args.len());
                for a in args {
                    tuple.push(a.build(store, env).expect("check requires bound literals"));
                }
                views.full[pred.index()].contains(&tuple)
            }
            BodyLit::Neg(pred, args) => {
                let mut tuple = Vec::with_capacity(args.len());
                for a in args {
                    tuple.push(a.build(store, env).expect("check requires bound literals"));
                }
                !views.full[pred.index()].contains(&tuple)
            }
            BodyLit::Builtin(b, args) => {
                let known: Vec<Option<TermId>> = args.iter().map(|p| p.build(store, env)).collect();
                if known.iter().any(Option::is_none) {
                    return Err(EngineError::UnsupportedMode {
                        builtin: b.name(),
                        mode: "unbound argument in quantified check".to_owned(),
                    });
                }
                !builtin::enumerate(*b, &known, store, policy)?.is_empty()
            }
        };
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use crate::config::EvalConfig;
    use crate::engine::Engine;
    use crate::pattern::{Pattern, VarId};
    use crate::rule::{BodyLit, Builtin, Rule};

    use crate::pattern::Pattern as P;

    fn v(i: u32) -> Pattern {
        P::Var(VarId(i))
    }

    /// Dependent binders: (∀S∈F)(∀x∈S) over nested sets, driven through
    /// the public engine so planning and evaluation both run.
    #[test]
    fn dependent_binder_walk() {
        let mut e = Engine::new(EvalConfig::default());
        let fam = e.pred("fam", 1);
        let good = e.pred("good", 1);
        let all = e.pred("all", 1);
        let st = e.store_mut();
        let a = st.atom("a");
        let b = st.atom("b");
        let c = st.atom("c");
        let s_ab = st.set(vec![a, b]);
        let s_c = st.set(vec![c]);
        let f1 = st.set(vec![s_ab, s_c]);
        let s_b = st.set(vec![b]);
        let f2 = st.set(vec![s_b]);
        let empty = st.empty_set();
        let f3 = st.set(vec![empty]);
        e.fact(fam, vec![f1]).unwrap();
        e.fact(fam, vec![f2]).unwrap();
        e.fact(fam, vec![f3]).unwrap();
        e.fact(good, vec![a]).unwrap();
        e.fact(good, vec![c]).unwrap();
        // all(F) :- fam(F), (∀S∈F)(∀x∈S) good(x).
        e.rule(Rule {
            head: all,
            head_args: vec![v(0)],
            group: None,
            outer: vec![BodyLit::Pos(fam, vec![v(0)])],
            quant: Some(crate::rule::QuantGroup {
                binders: vec![(VarId(1), v(0)), (VarId(2), v(1))],
                inner: vec![BodyLit::Pos(good, vec![v(2)])],
            }),
            num_vars: 3,
            var_names: vec!["F".into(), "S".into(), "X".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(!e.holds(all, &[f1]), "b is not good");
        assert!(!e.holds(all, &[f2]), "b is not good");
        assert!(e.holds(all, &[f3]), "the empty member set is vacuous");
    }

    /// Post-group deferred negation: ¬C(X) where X is bound only by the
    /// quantifier group (the §4.2 shape), with the domain enumerated
    /// from the active universe.
    #[test]
    fn deferred_negation_after_group() {
        let mut e = Engine::new(EvalConfig {
            set_universe: crate::config::SetUniverse::ActiveSets,
            ..EvalConfig::default()
        });
        let a_pred = e.pred("a", 1);
        let blocked = e.pred("blocked", 1);
        let res = e.pred("res", 1);
        let st = e.store_mut();
        let c1 = st.atom("c1");
        let c2 = st.atom("c2");
        let s1 = st.set(vec![c1]);
        let s12 = st.set(vec![c1, c2]);
        let _ = st.empty_set();
        e.fact(a_pred, vec![c1]).unwrap();
        e.fact(a_pred, vec![c2]).unwrap();
        e.fact(blocked, vec![s12]).unwrap();
        // res(X) :- (∀u∈X) a(u), ¬blocked(X).
        e.rule(Rule {
            head: res,
            head_args: vec![v(0)],
            group: None,
            outer: vec![BodyLit::Neg(blocked, vec![v(0)])],
            quant: Some(crate::rule::QuantGroup {
                binders: vec![(VarId(1), v(0))],
                inner: vec![BodyLit::Pos(a_pred, vec![v(1)])],
            }),
            num_vars: 2,
            var_names: vec!["X".into(), "U".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(res, &[s1]));
        assert!(!e.holds(res, &[s12]), "blocked sets are excluded");
    }

    /// EnumUniverse with a Set sort restriction never binds atoms.
    #[test]
    fn enum_universe_respects_sorts() {
        let mut e = Engine::new(EvalConfig {
            set_universe: crate::config::SetUniverse::ActiveSets,
            ..EvalConfig::default()
        });
        let seed = e.pred("seed", 1);
        let pairs = e.pred("pairs", 2);
        let st = e.store_mut();
        let a = st.atom("a");
        let s1 = st.set(vec![a]);
        e.fact(seed, vec![a]).unwrap();
        e.fact(seed, vec![s1]).unwrap();
        // pairs(X, Y) :- seed(X).  — Y bound by nothing; sorted Set.
        e.rule(Rule {
            head: pairs,
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![BodyLit::Pos(seed, vec![v(0)])],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![None, Some(lps_term::Sort::Set)],
        })
        .unwrap();
        e.run().unwrap();
        // Y ranges over sets only: one set in the store → 2 seeds × 1.
        assert_eq!(e.tuples(pairs).count(), 2);
        for t in e.tuples(pairs) {
            assert!(e.store().is_set(t[1]), "Y must be a set");
        }
    }

    /// Builtin check inside a quantifier group (Path A) handles
    /// negated literals and builtins.
    #[test]
    fn quantified_check_with_builtin_and_negation() {
        let mut e = Engine::new(EvalConfig::default());
        let g = e.pred("g", 1);
        let bad = e.pred("bad", 1);
        let ok = e.pred("ok", 1);
        let st = e.store_mut();
        let i1 = st.int(1);
        let i2 = st.int(2);
        let i9 = st.int(9);
        let s12 = st.set(vec![i1, i2]);
        let s19 = st.set(vec![i1, i9]);
        e.fact(g, vec![s12]).unwrap();
        e.fact(g, vec![s19]).unwrap();
        e.fact(bad, vec![i9]).unwrap();
        let five = e.store_mut().int(5);
        // ok(S) :- g(S), (∀x∈S)(x < 5 ∧ ¬bad(x)).
        e.rule(Rule {
            head: ok,
            head_args: vec![v(0)],
            group: None,
            outer: vec![BodyLit::Pos(g, vec![v(0)])],
            quant: Some(crate::rule::QuantGroup {
                binders: vec![(VarId(1), v(0))],
                inner: vec![
                    BodyLit::Builtin(Builtin::Lt, vec![v(1), Pattern::Ground(five)]),
                    BodyLit::Neg(bad, vec![v(1)]),
                ],
            }),
            num_vars: 2,
            var_names: vec!["S".into(), "X".into()],
            var_sorts: vec![],
        })
        .unwrap();
        e.run().unwrap();
        assert!(e.holds(ok, &[s12]));
        assert!(!e.holds(ok, &[s19]), "9 fails both conditions");
    }
}
