//! Magic-set rewrite: demand-driven (goal-directed) evaluation of a
//! query over the lowered rule set.
//!
//! A bottom-up engine answers `?- tc(a, X)` by materializing *all* of
//! `tc` and filtering — wasted work proportional to the whole model.
//! The classic fix (Bancilhon–Maier–Sagiv–Ullman) specializes the
//! program to the query's *adornment* (which arguments are bound):
//! every IDB predicate `p` reached from the query gets an adorned copy
//! `p#α`, guarded by a *magic* predicate `m#p#α` holding the bound
//! argument tuples for which `p`'s extension is actually demanded.
//! Rules propagate demand sideways: in `t(X, Z) :- e(X, Y), t(Y, Z)`
//! with `X` bound, the recursive call is only demanded at the `Y`s the
//! `e`-join produces, giving
//!
//! ```text
//! m#t#bf(Y)    :- m#t#bf(X), e(X, Y).
//! t#bf(X, Z)   :- m#t#bf(X), e(X, Y), t#bf(Y, Z).
//! t#bf(X, Z)   :- m#t#bf(X), t(X, Z).          % EDB bridge
//! ```
//!
//! seeded by the single magic fact `m#t#bf(a)` — the fixpoint then
//! touches only the part of `tc` reachable from `a`.
//!
//! Scope and soundness:
//!
//! * The rewrite applies only when the subprogram reachable from the
//!   query is **monotone** ([`crate::strata::demand_obstruction`]):
//!   negation or LDL grouping reachable from a magic predicate would
//!   make the rewritten program unstratifiable in general, so the
//!   engine falls back to full materialization (the same discipline
//!   the incremental update path uses for non-monotone strata).
//! * Sideways information passing: a body argument counts as bound if
//!   all its variables occur in a bound head position or an earlier
//!   *visited* body literal. Which literal is visited next is chosen
//!   by the cost model when statistics are supplied ([`SipsCost`]):
//!   the greedy order prefers the literal with the smallest estimated
//!   result given the bindings so far, so a recursive subgoal sharing
//!   the query's bound column is visited *before* an unbound scan and
//!   keeps its demand restricted — the right-linear closure queried
//!   `fb` gets the same selective rewrite the left-linear one gets
//!   `bf`. Without statistics the visit order is textual, the
//!   classical SIPS. Any SIPS yields a sound and complete rewrite; if
//!   the chosen one leaves a magic rule unplannable (a builtin mode
//!   becomes unsatisfiable without the later literals), the engine
//!   likewise falls back rather than weakening the plan.
//! * Predicates referenced inside a `(∀x∈X)` group are demanded with
//!   the all-free adornment — fully evaluated — since their demand
//!   would depend on the quantified elements, not on rule-head
//!   bindings. The quantifier itself is monotone and stays in place.
//! * Every adorned predicate gets an *EDB bridge* rule reading the
//!   original predicate, so extensional facts loaded for an IDB
//!   predicate flow into its adorned copy.
//!
//! Adorned and magic predicates are registered in the engine's
//! ordinary [`PredRegistry`] under `#`-separated names (`t#bf`,
//! `m#t#bf`) that the surface lexer cannot produce, so they can never
//! collide with user predicates. [`crate::engine::Engine::query`]
//! drives this rewrite, caches the compiled plan per `(pred,
//! adornment)`, and seeds the magic fact per call.

use lps_term::{FxHashMap, TermId, TermStore};

use crate::builtin::mode_ok;
use crate::config::SetUniverse;
use crate::pattern::{Pattern, VarId};
use crate::pred::{PredId, PredRegistry};
use crate::relation::ColMask;
use crate::rule::{BodyLit, Rule};
use crate::stats::Stats;
use crate::strata::{demand_obstruction, DemandObstruction};

/// Binding pattern of a query or subgoal: bit *i* set ⇔ argument *i*
/// bound. Reuses the engine-wide column-mask convention.
pub type Adornment = ColMask;

/// The adornment of a query argument list: bound where a ground term
/// was supplied.
pub fn adornment_of(args: &[Option<TermId>]) -> Adornment {
    let mut mask = 0;
    for (i, a) in args.iter().enumerate() {
        if a.is_some() {
            mask |= 1 << i;
        }
    }
    mask
}

/// Render an adornment in the classical `b`/`f` notation, e.g. `bf`
/// for "first bound, second free".
pub fn adornment_string(mask: Adornment, arity: usize) -> String {
    (0..arity)
        .map(|i| if mask & (1 << i) != 0 { 'b' } else { 'f' })
        .collect()
}

/// The magic-rewritten program for one query pattern.
#[derive(Debug)]
pub struct MagicProgram {
    /// The rewritten rules: adorned copies of every reachable IDB
    /// rule, their magic (demand-propagation) rules, and the EDB
    /// bridges. References original predicates only as base relations.
    pub rules: Vec<Rule>,
    /// The adorned copy of the query predicate — where the answers
    /// accumulate.
    pub answer: PredId,
    /// The magic predicate of the query itself: seed it with the bound
    /// argument tuple before evaluating. `None` when the query has no
    /// bound arguments (pure demand-restricted materialization of the
    /// reachable subprogram).
    pub magic_seed: Option<PredId>,
    /// Every adorned and magic predicate of this rewrite — the
    /// relation *space* the evaluator clears before each derivation.
    pub space: Vec<PredId>,
    /// The subset of `space` holding demand tuples (for the
    /// `magic_facts_seeded` statistic when seeds arrive as ground
    /// fact rules rather than through [`MagicProgram::magic_seed`]).
    pub magic_preds: Vec<PredId>,
    /// Number of `(predicate, adornment)` pairs compiled.
    pub adornments: usize,
    /// Number of rule bodies whose cost-chosen sideways-passing order
    /// diverged from textual order (feeds
    /// [`crate::config::EvalStats::reorders_applied`]).
    pub reorders: usize,
}

/// Cost input for SIPS selection: the engine's statistics snapshot
/// plus the set-universe policy (deciding builtin evaluability while
/// scoring candidate orders uses the same mode table the planner
/// uses). `None` in [`magic_rewrite`] means classical textual SIPS.
#[derive(Clone, Copy, Debug)]
pub struct SipsCost<'a> {
    /// Per-predicate cardinalities backing the estimates.
    pub stats: &'a Stats,
    /// Builtin enumeration policy, as in [`crate::EvalConfig`].
    pub policy: SetUniverse,
}

/// Result of attempting the rewrite.
#[derive(Debug)]
pub enum MagicOutcome {
    /// The demand-specialized program.
    Rewritten(MagicProgram),
    /// A non-monotone construct is reachable from the query: evaluate
    /// by full materialization instead.
    Obstructed(DemandObstruction),
}

/// Rewrite `rules` for a query over `query` with the given bound
/// positions. Registers adorned and magic predicates in `preds`
/// (interning their names in `store`); the caller must extend its
/// relation vectors afterwards.
pub fn magic_rewrite(
    rules: &[Rule],
    query: PredId,
    bound: Adornment,
    store: &mut TermStore,
    preds: &mut PredRegistry,
    cost: Option<SipsCost<'_>>,
) -> MagicOutcome {
    if let Some(obs) = demand_obstruction(rules, [query]) {
        return MagicOutcome::Obstructed(obs);
    }
    let mut rw = Rewriter {
        rules,
        store,
        preds,
        cost,
        reorders: 0,
        adorned: FxHashMap::default(),
        magic: FxHashMap::default(),
        worklist: Vec::new(),
        out: Vec::new(),
        space: Vec::new(),
        magic_preds: Vec::new(),
    };
    let answer = rw.demand(query, bound);
    while let Some((pred, mask)) = rw.worklist.pop() {
        rw.rewrite_pred(pred, mask);
    }
    let magic_seed = rw.magic.get(&(query, bound)).copied();
    MagicOutcome::Rewritten(MagicProgram {
        adornments: rw.adorned.len(),
        rules: rw.out,
        answer,
        magic_seed,
        space: rw.space,
        magic_preds: rw.magic_preds,
        reorders: rw.reorders,
    })
}

struct Rewriter<'a> {
    rules: &'a [Rule],
    store: &'a mut TermStore,
    preds: &'a mut PredRegistry,
    /// Statistics for cost-scored SIPS; `None` = textual order.
    cost: Option<SipsCost<'a>>,
    /// Rule bodies whose chosen order diverged from textual.
    reorders: usize,
    /// `(pred, adornment)` → adorned predicate.
    adorned: FxHashMap<(PredId, Adornment), PredId>,
    /// `(pred, adornment)` → magic predicate (non-trivial adornments).
    magic: FxHashMap<(PredId, Adornment), PredId>,
    worklist: Vec<(PredId, Adornment)>,
    out: Vec<Rule>,
    space: Vec<PredId>,
    magic_preds: Vec<PredId>,
}

impl Rewriter<'_> {
    fn name(&self, p: PredId) -> String {
        self.store
            .symbols()
            .name(self.preds.info(p).name)
            .to_owned()
    }

    fn register(&mut self, name: &str, arity: usize) -> PredId {
        let sym = self.store.symbols_mut().intern(name);
        self.preds.register(sym, arity)
    }

    /// Whether `p` has defining rules (is intensional for the rewrite).
    fn is_idb(&self, p: PredId) -> bool {
        self.rules.iter().any(|r| r.head == p)
    }

    /// Demand `(pred, mask)`: get or create its adorned predicate,
    /// enqueueing the rewrite of its rules on first sight.
    fn demand(&mut self, pred: PredId, mask: Adornment) -> PredId {
        if let Some(&id) = self.adorned.get(&(pred, mask)) {
            return id;
        }
        let arity = self.preds.info(pred).arity;
        let base = self.name(pred);
        let adorn = adornment_string(mask, arity);
        let id = self.register(&format!("{base}#{adorn}"), arity);
        self.adorned.insert((pred, mask), id);
        self.space.push(id);
        if mask != 0 {
            let m = self.register(&format!("m#{base}#{adorn}"), mask.count_ones() as usize);
            self.magic.insert((pred, mask), m);
            self.space.push(m);
            self.magic_preds.push(m);
        }
        self.worklist.push((pred, mask));
        id
    }

    /// Choose the sideways-information-passing visit order for one
    /// rule body. Textual (identity) without cost input. With
    /// statistics: greedy over `(tier, -estimate)` — repeatedly pick
    /// the best evaluable literal given the variables bound so far.
    /// The tiers encode the structural rules that matter for demand
    /// propagation regardless of cardinalities:
    ///
    /// 1. ground builtins (free filter), then ground negations, then
    ///    fully-bound atoms (existence checks);
    /// 2. **connected** atoms — sharing at least one bound variable —
    ///    ranked by estimated matches per probe (`rows /
    ///    distinct(bound cols)`; a bound subgoal without statistics is
    ///    presumed demand-sized);
    /// 3. evaluable generative builtins (deterministic binders);
    /// 4. **disconnected** atoms, smallest extension first — a scan
    ///    that shares no binding multiplies the demand frontier by its
    ///    whole extension and turns downstream subgoal demand into a
    ///    cross product, so it is deferred no matter how small (this,
    ///    not the estimates, is what keeps the right-linear closure's
    ///    `fb` demand selective);
    /// 5. builtins needing active-universe enumeration.
    ///
    /// Ties resolve to the lowest textual index, so the choice is
    /// deterministic and degenerates to the classical textual SIPS
    /// when the model does not discriminate. Stuck negations/builtins
    /// (modes unsatisfiable under any remaining prefix) are appended
    /// textually; the plan compiler decides their fate, same as in
    /// the textual rewrite.
    fn sips_order(&self, outer: &[BodyLit], bound_vars: &[VarId]) -> Vec<usize> {
        let Some(SipsCost { stats, policy }) = self.cost else {
            return (0..outer.len()).collect();
        };
        let mut bound: Vec<VarId> = bound_vars.to_vec();
        let mut remaining: Vec<usize> = (0..outer.len()).collect();
        let mut order = Vec::with_capacity(outer.len());
        while !remaining.is_empty() {
            let mut best: Option<((i64, i64), usize)> = None;
            for &i in &remaining {
                let score: (i64, i64) = match &outer[i] {
                    BodyLit::Builtin(b, args) => {
                        let flags: Vec<bool> =
                            args.iter().map(|p| pattern_bound(p, &bound)).collect();
                        if !mode_ok(*b, &flags, policy) {
                            continue; // not evaluable yet
                        }
                        if flags.iter().all(|&f| f) {
                            (1000, 0) // ground check: free filter
                        } else if mode_ok(*b, &flags, SetUniverse::Reject) {
                            (500, 0) // deterministic binder
                        } else {
                            (30, 0) // set-universe enumeration: last
                        }
                    }
                    BodyLit::Neg(_, args) => {
                        if !args.iter().all(|p| pattern_bound(p, &bound)) {
                            continue; // unsafe until its vars are bound
                        }
                        (900, 0)
                    }
                    BodyLit::Pos(q, args) => {
                        let beta = bound_positions(args, &bound);
                        if !args.is_empty() && beta.count_ones() as usize == args.len() {
                            (800, 0) // existence check
                        } else {
                            let connected = outer[i].vars().into_iter().any(|v| bound.contains(&v));
                            let est = match stats.estimate(*q, beta) {
                                Some(est) => est.min(1 << 40) as i64,
                                // No data: empty now, or registered
                                // after the snapshot. A *connected*
                                // subgoal stays demand-sized; a
                                // disconnected IDB call would force
                                // full materialization of its
                                // subtree — the very last resort.
                                None if connected => 8,
                                None if self.is_idb(*q) => 1 << 40,
                                None => 50,
                            };
                            (if connected { 600 } else { 400 }, -est)
                        }
                    }
                };
                if best.is_none_or(|(s, _)| score > s) {
                    best = Some((score, i));
                }
            }
            let Some((_, pick)) = best else {
                // Only stuck negations/builtins remain.
                order.extend(remaining.iter().copied());
                break;
            };
            remaining.retain(|&i| i != pick);
            order.push(pick);
            for v in outer[pick].vars() {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
        }
        order
    }

    /// Emit the adorned rules, magic rules, and EDB bridge for one
    /// demanded `(pred, adornment)` pair.
    fn rewrite_pred(&mut self, pred: PredId, mask: Adornment) {
        let adorned_head = self.adorned[&(pred, mask)];
        let magic_head = self.magic.get(&(pred, mask)).copied();
        self.out.push(bridge_rule(
            pred,
            adorned_head,
            magic_head,
            mask,
            self.preds.info(pred).arity,
        ));
        for ri in 0..self.rules.len() {
            if self.rules[ri].head != pred {
                continue;
            }
            let rule = &self.rules[ri];
            let (head_args, num_vars, var_names, var_sorts) = (
                rule.head_args.clone(),
                rule.num_vars,
                rule.var_names.clone(),
                rule.var_sorts.clone(),
            );

            // Bound variables so far: those of the bound head
            // positions (the magic literal, when present, grounds
            // them at evaluation time).
            let mut bound_vars: Vec<VarId> = Vec::new();
            let mut new_outer: Vec<BodyLit> = Vec::new();
            if let Some(m) = magic_head {
                let margs: Vec<Pattern> = masked_args(&head_args, mask);
                for a in &margs {
                    a.collect_vars(&mut bound_vars);
                }
                new_outer.push(BodyLit::Pos(m, margs));
            }

            // Sideways pass over the outer literals: cost-chosen
            // visit order when statistics are available, textual
            // otherwise (and exactly textual on ties).
            let order = self.sips_order(&self.rules[ri].outer, &bound_vars);
            if order.iter().copied().ne(0..self.rules[ri].outer.len()) {
                self.reorders += 1;
            }
            for li in order {
                let lit = self.rules[ri].outer[li].clone();
                match &lit {
                    BodyLit::Pos(q, args) if self.is_idb(*q) => {
                        let beta = bound_positions(args, &bound_vars);
                        let adorned_q = self.demand(*q, beta);
                        if beta != 0 {
                            // Demand propagation: the subgoal's bound
                            // arguments, derivable from the demand on
                            // this rule's head plus the preceding
                            // (already adorned) literals.
                            let magic_q = self.magic[&(*q, beta)];
                            self.out.push(Rule {
                                head: magic_q,
                                head_args: masked_args(args, beta),
                                group: None,
                                outer: new_outer.clone(),
                                quant: None,
                                num_vars,
                                var_names: var_names.clone(),
                                var_sorts: var_sorts.clone(),
                            });
                        }
                        new_outer.push(BodyLit::Pos(adorned_q, args.clone()));
                    }
                    _ => new_outer.push(lit.clone()),
                }
                for v in lit.vars() {
                    if !bound_vars.contains(&v) {
                        bound_vars.push(v);
                    }
                }
            }

            // Quantifier-inner IDB predicates: demanded all-free (their
            // demand depends on quantified elements, not head
            // bindings), so the subtree below them fully materializes.
            let quant = self.rules[ri].quant.clone().map(|mut q| {
                for lit in &mut q.inner {
                    if let BodyLit::Pos(p, _) = lit {
                        if self.is_idb(*p) {
                            *p = self.demand(*p, 0);
                        }
                    }
                }
                q
            });

            self.out.push(Rule {
                head: adorned_head,
                head_args,
                group: None, // obstruction check excluded grouping
                outer: new_outer,
                quant,
                num_vars,
                var_names,
                var_sorts,
            });
        }
    }
}

/// `p#α(X₁…Xₙ) :- m#p#α(bound Xᵢ), p(X₁…Xₙ)` — extensional facts
/// loaded for an IDB predicate flow into its adorned copy. Without a
/// magic guard (all-free) the bridge is a plain copy rule.
fn bridge_rule(
    pred: PredId,
    adorned: PredId,
    magic: Option<PredId>,
    mask: Adornment,
    arity: usize,
) -> Rule {
    let vars: Vec<Pattern> = (0..arity).map(|i| Pattern::Var(VarId(i as u32))).collect();
    let mut outer = Vec::with_capacity(2);
    if let Some(m) = magic {
        outer.push(BodyLit::Pos(m, masked_args(&vars, mask)));
    }
    outer.push(BodyLit::Pos(pred, vars.clone()));
    Rule {
        head: adorned,
        head_args: vars,
        group: None,
        outer,
        quant: None,
        num_vars: arity,
        var_names: (0..arity).map(|i| format!("B{i}")).collect(),
        var_sorts: vec![],
    }
}

/// The argument patterns at the bound positions of `mask`, in
/// ascending position order (the magic predicate's column layout).
fn masked_args(args: &[Pattern], mask: Adornment) -> Vec<Pattern> {
    args.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, p)| p.clone())
        .collect()
}

/// A conjunctive goal lifted to its *shape*: every top-level ground
/// argument of a positive outer literal is replaced by a fresh
/// variable, and those variables are prepended to the head as bound
/// answer columns — so two goals that differ only in such constants
/// share one canonical rule, one magic-set rewrite, and one compiled
/// plan. The lifted constants become the magic seed tuple of the
/// shared plan: `?- t(a, X), e(X, Y)` and `?- t(b, X), e(X, Y)` both
/// canonicalize to `shape(C, X, Y) :- t(C, X), e(X, Y)` queried with
/// the first column bound, seeded by `(a)` resp. `(b)`.
///
/// Only top-level `Ground` arguments of positive outer literals are
/// lifted: constants nested inside set/function patterns, inside
/// builtins or negation, or under the quantifier group stay in place
/// and remain part of the shape key (lifting them would not improve
/// demand propagation — the textual SIPS counts a nested ground
/// pattern as bound either way only at the top level).
#[derive(Debug)]
pub struct LiftedGoal {
    /// The canonical rule. Its `head` is still the original goal-head
    /// predicate — the caller grafts the dedicated shape predicate
    /// (whose arity is `consts.len() + original head arity`) before
    /// compiling.
    pub rule: Rule,
    /// The lifted constants in lift order: the bound values of the
    /// prepended head columns, i.e. the magic seed tuple.
    pub consts: Vec<TermId>,
    /// Structural shape key: two goals get equal keys iff their
    /// canonical rules are identical (same predicates, same literal
    /// sequence, same variable topology, same *non-lifted* ground
    /// terms) — the cache key of the conjunctive plan cache.
    pub key: String,
}

/// Canonicalize a conjunctive goal rule for the shape-keyed plan
/// cache. See [`LiftedGoal`].
pub fn lift_goal(rule: &Rule) -> LiftedGoal {
    let mut canonical = rule.clone();
    let mut consts: Vec<TermId> = Vec::new();
    let base = rule.num_vars as u32;
    for lit in &mut canonical.outer {
        if let BodyLit::Pos(_, args) = lit {
            for a in args.iter_mut() {
                if let Pattern::Ground(id) = a {
                    consts.push(*id);
                    *a = Pattern::Var(VarId(base + consts.len() as u32 - 1));
                }
            }
        }
    }
    let mut head_args: Vec<Pattern> = (0..consts.len())
        .map(|i| Pattern::Var(VarId(base + i as u32)))
        .collect();
    head_args.extend(canonical.head_args.iter().cloned());
    canonical.head_args = head_args;
    canonical.num_vars = rule.num_vars + consts.len();
    canonical
        .var_names
        .extend((0..consts.len()).map(|i| format!("$c{i}")));
    if !canonical.var_sorts.is_empty() {
        canonical.var_sorts.extend((0..consts.len()).map(|_| None));
    }
    let key = goal_shape_key(&canonical);
    LiftedGoal {
        rule: canonical,
        consts,
        key,
    }
}

/// Serialize the structure of a canonical goal rule into a stable
/// cache key. Variables appear by slot index, predicates and symbols
/// by registry index, residual ground terms by interned id — all
/// stable for the lifetime of one engine session, which is exactly the
/// lifetime of the cache.
pub fn goal_shape_key(rule: &Rule) -> String {
    use std::fmt::Write as _;
    let mut key = String::new();
    push_patterns(&mut key, &rule.head_args);
    for lit in &rule.outer {
        match lit {
            BodyLit::Pos(p, args) => {
                let _ = write!(key, "+{}", p.index());
                push_patterns(&mut key, args);
            }
            BodyLit::Neg(p, args) => {
                let _ = write!(key, "-{}", p.index());
                push_patterns(&mut key, args);
            }
            BodyLit::Builtin(b, args) => {
                let _ = write!(key, "%{}", b.name());
                push_patterns(&mut key, args);
            }
        }
    }
    if let Some(g) = &rule.group {
        let _ = write!(key, "<{}:{}>", g.arg_pos, g.var.0);
    }
    if let Some(q) = &rule.quant {
        key.push('A');
        for (v, dom) in &q.binders {
            let _ = write!(key, "{}@", v.0);
            push_pattern(&mut key, dom);
        }
        key.push(':');
        for lit in &q.inner {
            match lit {
                BodyLit::Pos(p, args) => {
                    let _ = write!(key, "+{}", p.index());
                    push_patterns(&mut key, args);
                }
                BodyLit::Neg(p, args) => {
                    let _ = write!(key, "-{}", p.index());
                    push_patterns(&mut key, args);
                }
                BodyLit::Builtin(b, args) => {
                    let _ = write!(key, "%{}", b.name());
                    push_patterns(&mut key, args);
                }
            }
        }
    }
    key
}

fn push_patterns(key: &mut String, args: &[Pattern]) {
    key.push('(');
    for a in args {
        push_pattern(key, a);
        key.push(',');
    }
    key.push(')');
}

fn push_pattern(key: &mut String, p: &Pattern) {
    use std::fmt::Write as _;
    match p {
        Pattern::Var(v) => {
            let _ = write!(key, "v{}", v.0);
        }
        Pattern::Ground(id) => {
            let _ = write!(key, "g{}", id.index());
        }
        Pattern::App(f, ps) => {
            let _ = write!(key, "f{}", f.index());
            push_patterns(key, ps);
        }
        Pattern::Set(ps) => {
            key.push('s');
            push_patterns(key, ps);
        }
    }
}

/// Whether every variable of `p` occurs in `bound_vars`.
fn pattern_bound(p: &Pattern, bound_vars: &[VarId]) -> bool {
    let mut vs = Vec::new();
    p.collect_vars(&mut vs);
    vs.iter().all(|v| bound_vars.contains(v))
}

/// Positions whose pattern is fully bound given `bound_vars`.
fn bound_positions(args: &[Pattern], bound_vars: &[VarId]) -> Adornment {
    let mut mask = 0;
    for (i, p) in args.iter().enumerate() {
        let mut vs = Vec::new();
        p.collect_vars(&mut vs);
        if vs.iter().all(|v| bound_vars.contains(v)) {
            mask |= 1 << i;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_term::TermStore;

    fn v(i: u32) -> Pattern {
        Pattern::Var(VarId(i))
    }

    struct Fixture {
        store: TermStore,
        preds: PredRegistry,
        e: PredId,
        t: PredId,
    }

    /// edge/path transitive closure over a fresh registry.
    fn tc_fixture() -> (Fixture, Vec<Rule>) {
        let mut store = TermStore::new();
        let mut preds = PredRegistry::new();
        let e = preds.register(store.symbols_mut().intern("e"), 2);
        let t = preds.register(store.symbols_mut().intern("t"), 2);
        let mk = |head, head_args, outer, nv: usize| Rule {
            head,
            head_args,
            group: None,
            outer,
            quant: None,
            num_vars: nv,
            var_names: (0..nv).map(|i| format!("V{i}")).collect(),
            var_sorts: vec![],
        };
        let rules = vec![
            mk(
                t,
                vec![v(0), v(1)],
                vec![BodyLit::Pos(e, vec![v(0), v(1)])],
                2,
            ),
            mk(
                t,
                vec![v(0), v(2)],
                vec![
                    BodyLit::Pos(e, vec![v(0), v(1)]),
                    BodyLit::Pos(t, vec![v(1), v(2)]),
                ],
                3,
            ),
        ];
        (Fixture { store, preds, e, t }, rules)
    }

    #[test]
    fn adornment_notation_roundtrips() {
        let a = TermStore::new().atom("a");
        assert_eq!(adornment_of(&[Some(a), None]), 0b01);
        assert_eq!(adornment_string(0b01, 2), "bf");
        assert_eq!(adornment_string(0b10, 2), "fb");
        assert_eq!(adornment_string(0, 3), "fff");
        assert_eq!(adornment_of(&[None, None]), 0);
    }

    #[test]
    fn tc_bf_rewrite_has_magic_recursion() {
        let (mut fx, rules) = tc_fixture();
        let MagicOutcome::Rewritten(mp) =
            magic_rewrite(&rules, fx.t, 0b01, &mut fx.store, &mut fx.preds, None)
        else {
            panic!("monotone program must rewrite");
        };
        // One adornment (t, bf): magic seed + answer pred exist.
        assert_eq!(mp.adornments, 1);
        let seed = mp.magic_seed.expect("bf query has a magic seed");
        assert_eq!(fx.preds.info(seed).arity, 1);
        assert_eq!(fx.preds.info(mp.answer).arity, 2);
        // Bridge + 2 adorned rules + 1 magic-propagation rule.
        assert_eq!(mp.rules.len(), 4);
        let magic_rules: Vec<&Rule> = mp.rules.iter().filter(|r| r.head == seed).collect();
        assert_eq!(magic_rules.len(), 1, "m#t#bf(Y) :- m#t#bf(X), e(X, Y)");
        assert!(magic_rules[0]
            .outer
            .iter()
            .any(|l| matches!(l, BodyLit::Pos(p, _) if *p == fx.e)));
        // Every adorned rule is guarded by the magic literal first.
        for r in mp.rules.iter().filter(|r| r.head == mp.answer) {
            assert!(
                matches!(r.outer.first(), Some(BodyLit::Pos(p, _)) if *p == seed),
                "adorned rule must open with its magic guard: {r:?}"
            );
        }
        // The rewrite space covers exactly the new predicates.
        assert_eq!(mp.space.len(), 2);
        assert_eq!(mp.magic_preds, vec![seed]);
    }

    #[test]
    fn all_free_rewrite_seeds_nothing_but_still_restricts_subgoals() {
        let (mut fx, rules) = tc_fixture();
        let MagicOutcome::Rewritten(mp) =
            magic_rewrite(&rules, fx.t, 0, &mut fx.store, &mut fx.preds, None)
        else {
            panic!("monotone program must rewrite");
        };
        // No bound argument ⇒ nothing to seed at the root…
        assert!(mp.magic_seed.is_none());
        // …but sideways information passing still adorns the recursive
        // subgoal `t(Y, Z)` as bound-free (Y is bound by the e-join),
        // so two adornments are compiled, with one magic predicate.
        assert_eq!(mp.adornments, 2);
        assert_eq!(mp.magic_preds.len(), 1);
        // Per adornment: bridge + 2 rule copies; plus 2 magic rules
        // (demand from the ff rule body and from the bf recursion).
        assert_eq!(mp.rules.len(), 8);
    }

    #[test]
    fn lift_goal_shares_shape_across_constants() {
        let (mut fx, _rules) = tc_fixture();
        let a = fx.store.atom("a");
        let b = fx.store.atom("b");
        let mk_goal = |c: TermId| Rule {
            head: fx.t, // placeholder head; the engine grafts the shape pred
            head_args: vec![v(0), v(1)],
            group: None,
            outer: vec![
                BodyLit::Pos(fx.t, vec![Pattern::Ground(c), v(0)]),
                BodyLit::Pos(fx.e, vec![v(0), v(1)]),
            ],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![],
        };
        let la = lift_goal(&mk_goal(a));
        let lb = lift_goal(&mk_goal(b));
        // Same shape, different seeds.
        assert_eq!(la.key, lb.key);
        assert_eq!(la.consts, vec![a]);
        assert_eq!(lb.consts, vec![b]);
        // The constant became a fresh variable prepended to the head.
        assert_eq!(la.rule.num_vars, 3);
        assert_eq!(la.rule.head_args.len(), 3);
        assert_eq!(la.rule.head_args[0], v(2));
        assert!(matches!(&la.rule.outer[0],
            BodyLit::Pos(p, args) if *p == fx.t && args[0] == v(2)));
        // A structurally different goal gets a different key.
        let mut swapped = mk_goal(a);
        swapped.outer.swap(0, 1);
        assert_ne!(lift_goal(&swapped).key, la.key);
        // A constant in a *set pattern* is part of the shape, not a seed.
        let mut nested = mk_goal(a);
        nested.outer.push(BodyLit::Builtin(
            crate::rule::Builtin::In,
            vec![v(1), Pattern::Set(Box::new([Pattern::Ground(b)]))],
        ));
        let ln = lift_goal(&nested);
        assert_eq!(ln.consts, vec![a], "nested ground stays in place");
        assert_ne!(ln.key, la.key);
    }

    #[test]
    fn cost_sips_keeps_right_linear_fb_demand_selective() {
        let (mut fx, rules) = tc_fixture();
        // A 20-edge chain: scanning e (20 rows) is costlier than
        // probing the recursive subgoal on its bound column.
        let mut e_rel = crate::relation::Relation::new(2);
        let ids: Vec<TermId> = (0..21).map(|i| fx.store.atom(&format!("n{i}"))).collect();
        for w in ids.windows(2) {
            e_rel.insert(&[w[0], w[1]]);
        }
        let stats = Stats::snapshot(&[e_rel, crate::relation::Relation::new(2)], &[]);

        // Textual SIPS visits e(X, Y) first, so the recursive call
        // sees both arguments bound: a second (bb) adornment whose
        // magic rule crosses every edge with every demand tuple.
        let MagicOutcome::Rewritten(textual) =
            magic_rewrite(&rules, fx.t, 0b10, &mut fx.store, &mut fx.preds, None)
        else {
            panic!("monotone program must rewrite");
        };
        assert_eq!(textual.adornments, 2, "textual fb demand degrades to bb");
        assert_eq!(textual.reorders, 0);

        // Cost-scored SIPS visits t(Y, Z) first (Z bound: demand
        // stays demand-sized) and probes e(X, Y) on its now-bound
        // column second — the fb rewrite mirrors the bf one.
        let cost = SipsCost {
            stats: &stats,
            policy: SetUniverse::Reject,
        };
        let MagicOutcome::Rewritten(scored) =
            magic_rewrite(&rules, fx.t, 0b10, &mut fx.store, &mut fx.preds, Some(cost))
        else {
            panic!("monotone program must rewrite");
        };
        assert_eq!(scored.adornments, 1, "demand stays at the bound column");
        assert_eq!(scored.reorders, 1, "one body reordered (the recursion)");
        let seed = scored.magic_seed.expect("fb query has a magic seed");
        assert_eq!(fx.preds.info(seed).arity, 1);
    }

    #[test]
    fn negation_obstructs() {
        let (mut fx, mut rules) = tc_fixture();
        let iso = fx.preds.register(fx.store.symbols_mut().intern("iso"), 1);
        rules.push(Rule {
            head: iso,
            head_args: vec![v(0)],
            group: None,
            outer: vec![
                BodyLit::Pos(fx.e, vec![v(0), v(1)]),
                BodyLit::Neg(fx.t, vec![v(0), v(0)]),
            ],
            quant: None,
            num_vars: 2,
            var_names: vec!["X".into(), "Y".into()],
            var_sorts: vec![],
        });
        assert!(matches!(
            magic_rewrite(&rules, iso, 0b1, &mut fx.store, &mut fx.preds, None),
            MagicOutcome::Obstructed(DemandObstruction::Negation(p)) if p == fx.t
        ));
        // The closure itself is still rewritable — the negation is not
        // reachable from t.
        assert!(matches!(
            magic_rewrite(&rules, fx.t, 0b01, &mut fx.store, &mut fx.preds, None),
            MagicOutcome::Rewritten(_)
        ));
    }
}
