//! Per-predicate planner statistics: the cheap cardinality snapshot
//! behind cost-based join ordering ([`crate::plan`]) and cost-scored
//! sideways information passing ([`crate::magic`]).
//!
//! A [`Stats`] snapshot records, for every registered predicate, its
//! row count and a per-column distinct-value estimate, read straight
//! out of the arena-backed relations via
//! [`Relation::distinct_estimate`] — exact where a secondary index
//! already exists (its bucket count is the distinct-key count), a
//! strided in-place hash sample otherwise. Nothing is persisted and
//! nothing is maintained per insert: the engine keeps one snapshot in
//! a [`StatsCache`] that is *invalidated* (not recomputed) whenever
//! facts move — at stratum boundaries, after `update()` splices, after
//! demand derivations — and refreshed lazily the next time a compile
//! actually asks for it ([`EvalStats::stats_refreshes`] counts those
//! refreshes).
//!
//! The cost model is deliberately coarse: for a probe of predicate `p`
//! with bound-column mask `B`, the estimated matching rows are
//! `rows(p) / Π distinct(col)` over the bound columns (independence
//! assumption, clamped to `[1, rows]`); an unbound literal estimates a
//! full scan. The planner only needs *relative* magnitudes — which
//! literal shrinks the frontier most — so sampling error and the
//! independence assumption are acceptable, and answers are unaffected
//! either way (ordering never changes semantics, only work).
//!
//! [`EvalStats::stats_refreshes`]: crate::config::EvalStats::stats_refreshes

use crate::pred::PredId;
use crate::relation::{ColMask, Relation};

/// Statistics for one predicate's extension.
#[derive(Clone, Debug, Default)]
pub struct PredStat {
    /// Tuple count at the snapshot.
    pub rows: usize,
    /// Distinct-value estimate per column (length = arity).
    pub col_distinct: Vec<usize>,
}

/// A point-in-time cardinality snapshot over every registered
/// predicate. Indexable by [`PredId`]; predicates registered *after*
/// the snapshot (e.g. adorned/magic predicates created by a rewrite in
/// progress) simply report no data, which the consumers treat as
/// "unknown IDB" and score heuristically.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    preds: Vec<PredStat>,
}

impl Stats {
    /// Snapshot `relations` (typically the engine's `full` vector,
    /// with `edb` as the fallback source for predicates whose facts
    /// have not been synced into `full` yet — whichever holds more
    /// rows wins).
    pub fn snapshot(edb: &[Relation], full: &[Relation]) -> Stats {
        let n = edb.len().max(full.len());
        let empty = Relation::new(0);
        let mut preds = Vec::with_capacity(n);
        for i in 0..n {
            let e = edb.get(i).unwrap_or(&empty);
            let f = full.get(i).unwrap_or(&empty);
            let rel = if e.len() > f.len() { e } else { f };
            // Columns past the mask width are never probed; skip them.
            let arity = rel.arity().min(ColMask::BITS as usize);
            let col_distinct = (0..arity).map(|c| rel.distinct_estimate(1 << c)).collect();
            preds.push(PredStat {
                rows: rel.len(),
                col_distinct,
            });
        }
        Stats { preds }
    }

    /// The snapshot for `p`, if `p` was registered when it was taken.
    pub fn pred(&self, p: PredId) -> Option<&PredStat> {
        self.preds.get(p.index())
    }

    /// Row count of `p` at the snapshot (`None` = no data).
    pub fn rows(&self, p: PredId) -> Option<usize> {
        self.pred(p).map(|s| s.rows)
    }

    /// Distinct-value estimate for the `mask` columns of `p`: the
    /// product of the per-column estimates (independence assumption),
    /// clamped to `[1, rows]`. `None` when there is no data for `p` or
    /// the mask reaches past the recorded arity — and `None` when `p`
    /// was *empty* at the snapshot: an empty relation is
    /// indistinguishable from a not-yet-derived IDB predicate, and
    /// guessing "empty" would sink full scans of soon-to-be-huge
    /// derived relations to the front of every join order.
    pub fn distinct(&self, p: PredId, mask: ColMask) -> Option<usize> {
        let s = self.pred(p)?;
        if s.rows == 0 {
            return None;
        }
        let mut d: usize = 1;
        let mut m = mask;
        while m != 0 {
            let col = m.trailing_zeros() as usize;
            d = d.saturating_mul(*s.col_distinct.get(col)?);
            m &= m - 1;
        }
        Some(d.clamp(1, s.rows))
    }

    /// Estimated rows a probe of `p` yields with the `bound` columns
    /// fixed: `rows / distinct(bound)`, at least 1; the full row count
    /// when nothing is bound. `None` = no usable data: an unknown
    /// predicate, or one that was empty at the snapshot (see
    /// [`Stats::distinct`] for why empty means unknown).
    pub fn estimate(&self, p: PredId, bound: ColMask) -> Option<usize> {
        let rows = self.rows(p)?;
        if rows == 0 {
            return None;
        }
        if bound == 0 {
            return Some(rows);
        }
        let d = self.distinct(p, bound)?;
        Some((rows / d.max(1)).max(1))
    }

    /// Number of predicates covered by the snapshot.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the snapshot covers no predicates.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

/// The engine's lazily refreshed statistics slot: a [`Stats`] snapshot
/// plus a dirty flag. Fact movement marks it dirty (cheap); the next
/// compile that needs statistics pays one [`Stats::snapshot`] pass.
#[derive(Debug, Default)]
pub struct StatsCache {
    snapshot: Stats,
    dirty: bool,
    ever_refreshed: bool,
}

impl StatsCache {
    /// Mark the snapshot stale. Called at stratum boundaries, after
    /// incremental-update splices, after demand derivations, and when
    /// facts are loaded or reset.
    pub fn invalidate(&mut self) {
        self.dirty = true;
    }

    /// The current snapshot, refreshed from the relations if stale.
    /// Returns the snapshot and whether a refresh pass ran (the
    /// `stats_refreshes` accounting).
    pub fn refreshed(&mut self, edb: &[Relation], full: &[Relation]) -> (&Stats, bool) {
        if self.dirty || !self.ever_refreshed {
            self.snapshot = Stats::snapshot(edb, full);
            self.dirty = false;
            self.ever_refreshed = true;
            (&self.snapshot, true)
        } else {
            (&self.snapshot, false)
        }
    }

    /// The current snapshot without refreshing (possibly stale).
    pub fn current(&self) -> &Stats {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_term::TermStore;

    #[test]
    fn snapshot_reads_rows_and_distincts() {
        let mut st = TermStore::new();
        let ids: Vec<_> = (0..10).map(|i| st.atom(&format!("n{i}"))).collect();
        let mut e = Relation::new(2);
        // 10 rows, 5 distinct first columns, 10 distinct second.
        for i in 0..10 {
            e.insert(&[ids[i / 2], ids[i]]);
        }
        let stats = Stats::snapshot(&[e], &[Relation::new(2)]);
        let p = PredId::from_index(0);
        assert_eq!(stats.rows(p), Some(10));
        assert_eq!(stats.distinct(p, 0b01), Some(5));
        assert_eq!(stats.distinct(p, 0b10), Some(10));
        // rows / distinct(col 0) = 2 expected matches per probe.
        assert_eq!(stats.estimate(p, 0b01), Some(2));
        assert_eq!(stats.estimate(p, 0), Some(10));
        // Both columns bound: distinct product 50 clamps to rows.
        assert_eq!(stats.estimate(p, 0b11), Some(1));
        // Unknown predicate: no data.
        assert_eq!(stats.estimate(PredId::from_index(7), 0b01), None);
    }

    #[test]
    fn cache_refreshes_lazily() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut e = Relation::new(1);
        e.insert(&[a]);
        let mut cache = StatsCache::default();
        let (s, refreshed) = cache.refreshed(std::slice::from_ref(&e), &[]);
        assert!(refreshed, "first read always snapshots");
        assert_eq!(s.rows(PredId::from_index(0)), Some(1));
        let (_, refreshed) = cache.refreshed(std::slice::from_ref(&e), &[]);
        assert!(!refreshed, "clean cache re-reads the snapshot");
        e.insert(&[b]);
        let (s, refreshed) = cache.refreshed(std::slice::from_ref(&e), &[]);
        assert!(
            !refreshed,
            "fact movement without invalidate is invisible (lazy)"
        );
        assert_eq!(s.rows(PredId::from_index(0)), Some(1), "stale by design");
        cache.invalidate();
        let (s, refreshed) = cache.refreshed(std::slice::from_ref(&e), &[]);
        assert!(refreshed);
        assert_eq!(s.rows(PredId::from_index(0)), Some(2));
    }
}
