//! Patterns: terms with variables, matched against ground terms.
//!
//! A [`Pattern`] appears in rule heads and body-literal argument
//! positions. During evaluation, patterns are matched against ground
//! [`TermId`]s under a partial variable binding ([`Env`]), extending
//! the binding; or *built* into ground terms once all their variables
//! are bound.
//!
//! Set-literal patterns deserve a note: `{X, Y}` denotes the set
//! `{Xθ, Yθ}` which may have *fewer* elements than the pattern has
//! slots (if `Xθ = Yθ`), and matching `{X, Y}` against a ground set
//! may succeed in several ways. [`match_pattern`] therefore enumerates
//! all solutions via a callback. This is the operational face of the
//! paper's remark (§3.2) that LPS needs "arbitrary unifiers, rather
//! than the most specific one".

use lps_term::{Symbol, TermData, TermId, TermStore};

/// Variable slot index within a rule (dense, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term with variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// A rule variable.
    Var(VarId),
    /// A ground term (constants and fully-ground subterms are
    /// pre-interned at compile time).
    Ground(TermId),
    /// Function application with at least one variable below.
    App(Symbol, Box<[Pattern]>),
    /// Set literal with at least one variable below.
    Set(Box<[Pattern]>),
}

impl Pattern {
    /// Collect the variables in this pattern into `out` (deduplicated).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Pattern::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Pattern::Ground(_) => {}
            Pattern::App(_, ps) | Pattern::Set(ps) => {
                for p in ps.iter() {
                    p.collect_vars(out);
                }
            }
        }
    }

    /// Whether every variable in the pattern is bound in `env`.
    pub fn is_bound(&self, env: &Env) -> bool {
        match self {
            Pattern::Var(v) => env.get(*v).is_some(),
            Pattern::Ground(_) => true,
            Pattern::App(_, ps) | Pattern::Set(ps) => ps.iter().all(|p| p.is_bound(env)),
        }
    }

    /// Build the ground term denoted by this pattern under `env`.
    /// Returns `None` if some variable is unbound.
    pub fn build(&self, store: &mut TermStore, env: &Env) -> Option<TermId> {
        match self {
            Pattern::Var(v) => env.get(*v),
            Pattern::Ground(id) => Some(*id),
            Pattern::App(f, ps) => {
                let mut args = Vec::with_capacity(ps.len());
                for p in ps.iter() {
                    args.push(p.build(store, env)?);
                }
                Some(store.app_sym(*f, args))
            }
            Pattern::Set(ps) => {
                let mut elems = Vec::with_capacity(ps.len());
                for p in ps.iter() {
                    elems.push(p.build(store, env)?);
                }
                Some(store.set(elems))
            }
        }
    }
}

/// A partial assignment of rule variables to ground terms, with an
/// undo trail for backtracking joins.
#[derive(Clone, Debug)]
pub struct Env {
    slots: Vec<Option<TermId>>,
    trail: Vec<VarId>,
}

impl Env {
    /// Fresh environment with `num_vars` unbound slots.
    pub fn new(num_vars: usize) -> Self {
        Env {
            slots: vec![None; num_vars],
            trail: Vec::new(),
        }
    }

    /// Current binding of `v`.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<TermId> {
        self.slots[v.index()]
    }

    /// Bind `v` (must be unbound) and record it on the trail.
    #[inline]
    pub fn bind(&mut self, v: VarId, t: TermId) {
        debug_assert!(self.slots[v.index()].is_none(), "rebinding {v:?}");
        self.slots[v.index()] = Some(t);
        self.trail.push(v);
    }

    /// Trail length — capture before speculative work.
    #[inline]
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Undo all bindings made after `mark`.
    #[inline]
    pub fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail length checked");
            self.slots[v.index()] = None;
        }
    }

    /// The `(var, value)` pairs bound after `mark`, in binding order.
    /// Used to capture a match solution so it can be re-applied after
    /// the matcher's own backtracking has undone it.
    pub fn bindings_since(&self, mark: usize) -> Vec<(VarId, TermId)> {
        self.trail[mark..]
            .iter()
            .map(|&v| (v, self.slots[v.index()].expect("trailed var is bound")))
            .collect()
    }

    /// Re-apply bindings captured by [`Env::bindings_since`].
    pub fn apply(&mut self, bindings: &[(VarId, TermId)]) {
        for &(v, t) in bindings {
            self.bind(v, t);
        }
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Match `pattern` against ground `term` under `env`, invoking `found`
/// once per solution (with `env` extended for the duration of the
/// call). Returns `true` if `found` requested an early stop.
///
/// Most patterns have at most one solution; set-literal patterns may
/// have several (see module docs).
pub fn match_pattern(
    store: &TermStore,
    pattern: &Pattern,
    term: TermId,
    env: &mut Env,
    found: &mut dyn FnMut(&mut Env) -> bool,
) -> bool {
    match pattern {
        Pattern::Var(v) => match env.get(*v) {
            Some(bound) => {
                if bound == term {
                    found(env)
                } else {
                    false
                }
            }
            None => {
                let mark = env.mark();
                env.bind(*v, term);
                let stop = found(env);
                env.undo_to(mark);
                stop
            }
        },
        Pattern::Ground(id) => {
            if *id == term {
                found(env)
            } else {
                false
            }
        }
        Pattern::App(f, ps) => match store.data(term) {
            TermData::App(g, args) if g == f && args.len() == ps.len() => {
                let args = args.clone();
                match_seq(store, ps, &args, 0, env, found)
            }
            _ => false,
        },
        Pattern::Set(ps) => match store.data(term) {
            TermData::Set(elems) => {
                let elems = elems.clone();
                match_set(store, ps, &elems, env, found)
            }
            _ => false,
        },
    }
}

/// Match a tuple of patterns against a tuple of ground terms position
/// by position, invoking `found` per complete solution. This is the
/// entry point used for relation tuples and builtin candidate tuples.
pub fn match_tuple(
    store: &TermStore,
    patterns: &[Pattern],
    terms: &[TermId],
    env: &mut Env,
    found: &mut dyn FnMut(&mut Env) -> bool,
) -> bool {
    debug_assert_eq!(patterns.len(), terms.len());
    match_seq(store, patterns, terms, 0, env, found)
}

/// Match a sequence of patterns against a sequence of ground terms,
/// position by position (function arguments).
fn match_seq(
    store: &TermStore,
    patterns: &[Pattern],
    terms: &[TermId],
    idx: usize,
    env: &mut Env,
    found: &mut dyn FnMut(&mut Env) -> bool,
) -> bool {
    if idx == patterns.len() {
        return found(env);
    }
    let mut stop = false;
    match_pattern(store, &patterns[idx], terms[idx], env, &mut |env| {
        stop = match_seq(store, patterns, terms, idx + 1, env, found);
        stop
    });
    stop
}

/// Match a set-literal pattern `{p₁, …, pₙ}` against a ground set with
/// elements `elems`: enumerate assignments where every pattern element
/// matches *some* set element and every set element is matched by
/// *some* pattern element (so the denoted set equals the ground set).
fn match_set(
    store: &TermStore,
    patterns: &[Pattern],
    elems: &[TermId],
    env: &mut Env,
    found: &mut dyn FnMut(&mut Env) -> bool,
) -> bool {
    // Quick pruning: n patterns can denote at most n elements.
    if elems.len() > patterns.len() {
        return false;
    }
    let mut covered = vec![false; elems.len()];
    match_set_rec(store, patterns, elems, 0, &mut covered, env, found)
}

#[allow(clippy::too_many_arguments)]
fn match_set_rec(
    store: &TermStore,
    patterns: &[Pattern],
    elems: &[TermId],
    idx: usize,
    covered: &mut Vec<bool>,
    env: &mut Env,
    found: &mut dyn FnMut(&mut Env) -> bool,
) -> bool {
    if idx == patterns.len() {
        if covered.iter().all(|&c| c) {
            return found(env);
        }
        return false;
    }
    let mut stop = false;
    for (ei, &elem) in elems.iter().enumerate() {
        let was_covered = covered[ei];
        covered[ei] = true;
        match_pattern(store, &patterns[idx], elem, env, &mut |env| {
            stop = match_set_rec(store, patterns, elems, idx + 1, covered, env, found);
            stop
        });
        covered[ei] = was_covered;
        if stop {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_solutions(
        store: &TermStore,
        pattern: &Pattern,
        term: TermId,
        num_vars: usize,
    ) -> Vec<Vec<Option<TermId>>> {
        let mut env = Env::new(num_vars);
        let mut out = Vec::new();
        match_pattern(store, pattern, term, &mut env, &mut |env| {
            out.push((0..num_vars as u32).map(|i| env.get(VarId(i))).collect());
            false
        });
        out
    }

    #[test]
    fn var_binds_and_backtracks() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let sols = all_solutions(&st, &Pattern::Var(VarId(0)), a, 1);
        assert_eq!(sols, vec![vec![Some(a)]]);
    }

    #[test]
    fn bound_var_must_agree() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let mut env = Env::new(1);
        env.bind(VarId(0), b);
        let mut hits = 0;
        match_pattern(&st, &Pattern::Var(VarId(0)), a, &mut env, &mut |_| {
            hits += 1;
            false
        });
        assert_eq!(hits, 0);
        match_pattern(&st, &Pattern::Var(VarId(0)), b, &mut env, &mut |_| {
            hits += 1;
            false
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn app_matches_structurally() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let f = st.symbols_mut().intern("f");
        let fab = st.app_sym(f, vec![a, b]);
        let pat = Pattern::App(f, Box::new([Pattern::Var(VarId(0)), Pattern::Ground(b)]));
        let sols = all_solutions(&st, &pat, fab, 1);
        assert_eq!(sols, vec![vec![Some(a)]]);
        // Wrong function symbol: no match.
        let g = st.symbols_mut().intern("g");
        let pat_g = Pattern::App(g, Box::new([Pattern::Var(VarId(0)), Pattern::Ground(b)]));
        assert!(all_solutions(&st, &pat_g, fab, 1).is_empty());
    }

    #[test]
    fn singleton_set_pattern_binds_element() {
        // X = {N} from Example 5's base case.
        let mut st = TermStore::new();
        let n = st.int(7);
        let set = st.set(vec![n]);
        let pat = Pattern::Set(Box::new([Pattern::Var(VarId(0))]));
        let sols = all_solutions(&st, &pat, set, 1);
        assert_eq!(sols, vec![vec![Some(n)]]);
        // Fails against a 2-element set.
        let m = st.int(8);
        let set2 = st.set(vec![n, m]);
        assert!(all_solutions(&st, &pat, set2, 1).is_empty());
    }

    #[test]
    fn two_var_set_pattern_enumerates_assignments() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let ab = st.set(vec![a, b]);
        let pat = Pattern::Set(Box::new([Pattern::Var(VarId(0)), Pattern::Var(VarId(1))]));
        let sols = all_solutions(&st, &pat, ab, 2);
        // (X=a, Y=b) and (X=b, Y=a).
        assert_eq!(sols.len(), 2);
        assert!(sols.contains(&vec![Some(a), Some(b)]));
        assert!(sols.contains(&vec![Some(b), Some(a)]));
    }

    #[test]
    fn set_pattern_collapses_onto_singleton() {
        // {X, Y} matches {a} with X = Y = a.
        let mut st = TermStore::new();
        let a = st.atom("a");
        let sa = st.set(vec![a]);
        let pat = Pattern::Set(Box::new([Pattern::Var(VarId(0)), Pattern::Var(VarId(1))]));
        let sols = all_solutions(&st, &pat, sa, 2);
        assert_eq!(sols, vec![vec![Some(a), Some(a)]]);
    }

    #[test]
    fn set_pattern_requires_coverage() {
        // {a} must NOT match {a, b} — the denoted set would be smaller.
        let mut st = TermStore::new();
        let a = st.atom("a");
        let b = st.atom("b");
        let ab = st.set(vec![a, b]);
        let pat = Pattern::Set(Box::new([Pattern::Ground(a)]));
        assert!(all_solutions(&st, &pat, ab, 0).is_empty());
    }

    #[test]
    fn build_constructs_and_interns() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let f = st.symbols_mut().intern("f");
        let mut env = Env::new(1);
        env.bind(VarId(0), a);
        let pat = Pattern::Set(Box::new([
            Pattern::Var(VarId(0)),
            Pattern::App(f, Box::new([Pattern::Var(VarId(0))])),
        ]));
        let built = pat.build(&mut st, &env).unwrap();
        let fa = st.app_sym(f, vec![a]);
        let expected = st.set(vec![a, fa]);
        assert_eq!(built, expected);
    }

    #[test]
    fn build_fails_on_unbound() {
        let mut st = TermStore::new();
        let env = Env::new(1);
        assert_eq!(Pattern::Var(VarId(0)).build(&mut st, &env), None);
    }

    #[test]
    fn env_trail_undoes_bindings() {
        let mut st = TermStore::new();
        let a = st.atom("a");
        let mut env = Env::new(2);
        let mark = env.mark();
        env.bind(VarId(0), a);
        env.bind(VarId(1), a);
        assert!(env.get(VarId(0)).is_some());
        env.undo_to(mark);
        assert!(env.get(VarId(0)).is_none());
        assert!(env.get(VarId(1)).is_none());
    }

    #[test]
    fn empty_set_pattern_matches_only_empty_set() {
        let mut st = TermStore::new();
        let e = st.empty_set();
        let a = st.atom("a");
        let sa = st.set(vec![a]);
        let pat = Pattern::Set(Box::new([]));
        assert_eq!(all_solutions(&st, &pat, e, 0).len(), 1);
        assert!(all_solutions(&st, &pat, sa, 0).is_empty());
    }
}
