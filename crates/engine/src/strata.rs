//! Stratification of programs with negation and grouping.
//!
//! Following §4.2 and §6.2 of the paper (and the stratified-program
//! framework of \[ABW86\] it cites), a program is *stratified* when no
//! recursive cycle passes through a negated literal or a grouping
//! head. This module builds the predicate dependency graph, condenses
//! it with Tarjan's SCC algorithm, and assigns stratum numbers such
//! that:
//!
//! * positive dependencies satisfy `stratum(head) ≥ stratum(body)`,
//! * negative/grouping dependencies satisfy `stratum(head) > stratum(body)`.

use lps_term::{FxHashMap, FxHashSet};

use crate::error::EngineError;
use crate::pred::PredId;
use crate::rule::{BodyLit, Rule};

/// Dependency polarity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Polarity {
    Positive,
    /// Negated literal, or any body literal of a grouping rule
    /// (grouping must see its body's *final* extension, exactly like
    /// negation).
    Negative,
}

/// Result of stratification.
#[derive(Clone, Debug, PartialEq)]
pub struct Stratification {
    /// Stratum index per predicate (`PredId::index()`-indexed);
    /// predicates not mentioned by any rule get stratum 0.
    pub stratum_of: Vec<usize>,
    /// Total number of strata.
    pub num_strata: usize,
    /// Per stratum: the predicates read (positively, negatively, or
    /// inside a quantifier group) by rules whose heads live in that
    /// stratum — sorted and deduplicated. This is the dependency
    /// information the incremental engine uses to find the lowest
    /// stratum a batch of new facts can affect.
    reads_of: Vec<Vec<PredId>>,
}

impl Stratification {
    /// Stratum of a predicate.
    pub fn stratum(&self, p: PredId) -> usize {
        self.stratum_of.get(p.index()).copied().unwrap_or(0)
    }

    /// Predicates read by rules whose heads live in `stratum`.
    pub fn reads(&self, stratum: usize) -> &[PredId] {
        self.reads_of.get(stratum).map_or(&[], Vec::as_slice)
    }

    /// The lowest stratum whose rules read any of `changed` — the
    /// point from which an incremental update (or a retained demand
    /// space's seeded continuation) must re-run the fixpoint when
    /// those predicates gain facts. `None` means no rule reads any
    /// changed predicate, so the materialized model is already the
    /// least model of the enlarged database.
    pub fn lowest_affected<I>(&self, changed: I) -> Option<usize>
    where
        I: IntoIterator<Item = PredId>,
    {
        let changed: FxHashSet<PredId> = changed.into_iter().collect();
        if changed.is_empty() {
            return None;
        }
        (0..self.num_strata).find(|&s| self.reads(s).iter().any(|p| changed.contains(p)))
    }
}

/// Why a demand (magic-set) rewrite cannot be applied to a query: a
/// non-monotone construct is reachable from the query predicate in the
/// rule dependency graph. The rewritten program would interleave magic
/// predicates with negation or grouping — in general unstratifiable,
/// and never evaluable by the monotone demand pipeline — so the engine
/// falls back to full materialization (the same discipline the
/// incremental update path applies to non-monotone strata).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemandObstruction {
    /// A reachable rule negates this predicate: stratified negation
    /// needs the negated predicate's *complete* extension, which a
    /// demand-restricted derivation cannot promise.
    Negation(PredId),
    /// A reachable rule collects this head predicate with an LDL
    /// grouping slot, which likewise reads a completed body stratum.
    Grouping(PredId),
}

impl DemandObstruction {
    /// The predicate at the obstruction.
    pub fn pred(self) -> PredId {
        match self {
            DemandObstruction::Negation(p) | DemandObstruction::Grouping(p) => p,
        }
    }
}

/// Scan the rules reachable from `roots` (following positive,
/// negative, and quantifier-inner body atoms of every rule whose head
/// is reachable) for a construct that blocks the magic-set rewrite.
/// `None` means the reachable subprogram is monotone: negation-free
/// and grouping-free, hence trivially stratifiable after the rewrite.
pub fn demand_obstruction<I>(rules: &[Rule], roots: I) -> Option<DemandObstruction>
where
    I: IntoIterator<Item = PredId>,
{
    let mut reachable: FxHashSet<PredId> = FxHashSet::default();
    let mut frontier: Vec<PredId> = roots.into_iter().collect();
    reachable.extend(frontier.iter().copied());
    while let Some(p) = frontier.pop() {
        for rule in rules.iter().filter(|r| r.head == p) {
            if rule.group.is_some() {
                return Some(DemandObstruction::Grouping(rule.head));
            }
            for lit in rule.all_body_lits() {
                match lit {
                    BodyLit::Neg(q, _) => return Some(DemandObstruction::Negation(*q)),
                    BodyLit::Pos(q, _) => {
                        if reachable.insert(*q) {
                            frontier.push(*q);
                        }
                    }
                    BodyLit::Builtin(..) => {}
                }
            }
        }
    }
    None
}

/// Compute a stratification for `rules` over `num_preds` predicates,
/// or report the offending cycle.
pub fn stratify(
    rules: &[Rule],
    num_preds: usize,
    pred_name: &dyn Fn(PredId) -> String,
) -> Result<Stratification, EngineError> {
    // Build the dependency edge list head → body-pred.
    let mut edges: FxHashMap<usize, Vec<(usize, Polarity)>> = FxHashMap::default();
    for rule in rules {
        let head = rule.head.index();
        let rule_negative = rule.group.is_some();
        for lit in rule.all_body_lits() {
            let (dep, pol) = match lit {
                BodyLit::Pos(p, _) => (
                    *p,
                    if rule_negative {
                        Polarity::Negative
                    } else {
                        Polarity::Positive
                    },
                ),
                BodyLit::Neg(p, _) => (*p, Polarity::Negative),
                BodyLit::Builtin(..) => continue,
            };
            edges.entry(head).or_default().push((dep.index(), pol));
        }
    }

    // Tarjan SCC (iterative).
    let sccs = tarjan(num_preds, &edges);
    let mut scc_of = vec![0usize; num_preds];
    for (i, scc) in sccs.iter().enumerate() {
        for &n in scc {
            scc_of[n] = i;
        }
    }

    // Negative edges within one SCC ⇒ not stratifiable.
    for (&head, deps) in &edges {
        for &(dep, pol) in deps {
            if pol == Polarity::Negative && scc_of[head] == scc_of[dep] {
                return Err(EngineError::NotStratified {
                    pred: pred_name(pred_from_index(head)),
                    through: pred_name(pred_from_index(dep)),
                });
            }
        }
    }

    // Tarjan emits SCCs in reverse topological order (dependencies
    // before dependents), so a single pass assigns strata.
    let mut scc_stratum = vec![0usize; sccs.len()];
    for (i, scc) in sccs.iter().enumerate() {
        let mut s = 0;
        for &n in scc {
            if let Some(deps) = edges.get(&n) {
                for &(dep, pol) in deps {
                    if scc_of[dep] == i {
                        continue;
                    }
                    let d = scc_stratum[scc_of[dep]];
                    s = s.max(match pol {
                        Polarity::Positive => d,
                        Polarity::Negative => d + 1,
                    });
                }
            }
        }
        scc_stratum[i] = s;
    }

    let mut stratum_of = vec![0usize; num_preds];
    for n in 0..num_preds {
        stratum_of[n] = scc_stratum[scc_of[n]];
    }
    let num_strata = stratum_of.iter().max().map_or(1, |m| m + 1);

    // Stratum → read-predicate sets, for incremental restarts.
    let mut reads_of: Vec<Vec<PredId>> = vec![Vec::new(); num_strata];
    for rule in rules {
        let s = stratum_of[rule.head.index()];
        for lit in rule.all_body_lits() {
            match lit {
                BodyLit::Pos(p, _) | BodyLit::Neg(p, _) => reads_of[s].push(*p),
                BodyLit::Builtin(..) => {}
            }
        }
    }
    for reads in &mut reads_of {
        reads.sort_unstable();
        reads.dedup();
    }

    Ok(Stratification {
        stratum_of,
        num_strata,
        reads_of,
    })
}

fn pred_from_index(i: usize) -> PredId {
    PredId::from_index(i)
}

/// Iterative Tarjan SCC. Returns SCCs in reverse topological order.
fn tarjan(n: usize, edges: &FxHashMap<usize, Vec<(usize, Polarity)>>) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS state: (node, child-iterator position).
    let empty: Vec<(usize, Polarity)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call_stack.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let children = edges.get(&v).unwrap_or(&empty);
            if *ci < children.len() {
                let (w, _) = children[*ci];
                *ci += 1;
                if index[w] == UNSET {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // v is done.
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, VarId};
    use crate::pred::PredRegistry;
    use crate::rule::GroupSpec;
    use lps_term::SymbolTable;

    struct Fixture {
        reg: PredRegistry,
        names: Vec<String>,
    }

    impl Fixture {
        fn new(names: &[&str]) -> (Self, Vec<PredId>) {
            let mut syms = SymbolTable::new();
            let mut reg = PredRegistry::new();
            let ids: Vec<PredId> = names
                .iter()
                .map(|n| reg.register(syms.intern(n), 1))
                .collect();
            (
                Fixture {
                    reg,
                    names: names.iter().map(|s| s.to_string()).collect(),
                },
                ids,
            )
        }

        fn name_fn(&self) -> impl Fn(PredId) -> String + '_ {
            |p| self.names[p.index()].clone()
        }
    }

    fn rule(head: PredId, body: Vec<BodyLit>) -> Rule {
        Rule {
            head,
            head_args: vec![Pattern::Var(VarId(0))],
            group: None,
            outer: body,
            quant: None,
            num_vars: 1,
            var_names: vec!["X".into()],
            var_sorts: vec![],
        }
    }

    fn pos(p: PredId) -> BodyLit {
        BodyLit::Pos(p, vec![Pattern::Var(VarId(0))])
    }

    fn neg(p: PredId) -> BodyLit {
        BodyLit::Neg(p, vec![Pattern::Var(VarId(0))])
    }

    #[test]
    fn positive_recursion_is_one_stratum() {
        let (fx, ids) = Fixture::new(&["p", "q"]);
        // p :- q. q :- p.
        let rules = vec![
            rule(ids[0], vec![pos(ids[1])]),
            rule(ids[1], vec![pos(ids[0])]),
        ];
        let s = stratify(&rules, fx.reg.len(), &fx.name_fn()).unwrap();
        assert_eq!(s.num_strata, 1);
        assert_eq!(s.stratum(ids[0]), s.stratum(ids[1]));
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let (fx, ids) = Fixture::new(&["edb", "p", "q"]);
        // p :- edb, not q. q :- edb.
        let rules = vec![
            rule(ids[1], vec![pos(ids[0]), neg(ids[2])]),
            rule(ids[2], vec![pos(ids[0])]),
        ];
        let s = stratify(&rules, fx.reg.len(), &fx.name_fn()).unwrap();
        assert_eq!(s.stratum(ids[0]), 0);
        assert_eq!(s.stratum(ids[2]), 0);
        assert_eq!(s.stratum(ids[1]), 1);
        assert_eq!(s.num_strata, 2);
    }

    #[test]
    fn negative_cycle_is_rejected() {
        let (fx, ids) = Fixture::new(&["p", "q"]);
        // p :- not q. q :- not p.  (the classic even/odd paradox)
        let rules = vec![
            rule(ids[0], vec![neg(ids[1])]),
            rule(ids[1], vec![neg(ids[0])]),
        ];
        let err = stratify(&rules, fx.reg.len(), &fx.name_fn()).unwrap_err();
        assert!(matches!(err, EngineError::NotStratified { .. }));
    }

    #[test]
    fn self_negation_is_rejected() {
        let (fx, ids) = Fixture::new(&["p"]);
        let rules = vec![rule(ids[0], vec![neg(ids[0])])];
        assert!(stratify(&rules, fx.reg.len(), &fx.name_fn()).is_err());
    }

    #[test]
    fn grouping_acts_like_negation() {
        let (fx, ids) = Fixture::new(&["obs", "grp"]);
        // grp(X, <Y>) :- obs(X, Y): grouping body must be lower.
        let mut r = rule(ids[1], vec![pos(ids[0])]);
        r.group = Some(GroupSpec {
            arg_pos: 0,
            var: VarId(0),
        });
        let s = stratify(&[r], fx.reg.len(), &fx.name_fn()).unwrap();
        assert_eq!(s.stratum(ids[0]), 0);
        assert_eq!(s.stratum(ids[1]), 1);
    }

    #[test]
    fn grouping_through_recursion_is_rejected() {
        let (fx, ids) = Fixture::new(&["p", "grp"]);
        // grp(X, <Y>) :- p(X); p(X) :- grp(X, S). Cycle through grouping.
        let mut r1 = rule(ids[1], vec![pos(ids[0])]);
        r1.group = Some(GroupSpec {
            arg_pos: 0,
            var: VarId(0),
        });
        let r2 = rule(ids[0], vec![pos(ids[1])]);
        assert!(stratify(&[r1, r2], fx.reg.len(), &fx.name_fn()).is_err());
    }

    #[test]
    fn chain_of_negations_builds_chain_of_strata() {
        let (fx, ids) = Fixture::new(&["a", "b", "c", "d"]);
        // b :- not a. c :- not b. d :- not c.
        let rules = vec![
            rule(ids[1], vec![neg(ids[0])]),
            rule(ids[2], vec![neg(ids[1])]),
            rule(ids[3], vec![neg(ids[2])]),
        ];
        let s = stratify(&rules, fx.reg.len(), &fx.name_fn()).unwrap();
        assert_eq!(s.num_strata, 4);
        assert_eq!(s.stratum(ids[3]), 3);
    }

    #[test]
    fn reads_and_lowest_affected_track_stratum_dependencies() {
        let (fx, ids) = Fixture::new(&["edb", "p", "q", "island"]);
        // p :- edb, not q. q :- edb.  (edb read at strata 0 and 1)
        let rules = vec![
            rule(ids[1], vec![pos(ids[0]), neg(ids[2])]),
            rule(ids[2], vec![pos(ids[0])]),
        ];
        let s = stratify(&rules, fx.reg.len(), &fx.name_fn()).unwrap();
        assert_eq!(s.reads(0), &[ids[0]]);
        assert_eq!(s.reads(1), &[ids[0], ids[2]]);
        // New edb facts hit stratum 0 first; new q facts only stratum 1.
        assert_eq!(s.lowest_affected([ids[0]]), Some(0));
        assert_eq!(s.lowest_affected([ids[2]]), Some(1));
        // Nothing reads p or the island predicate.
        assert_eq!(s.lowest_affected([ids[1]]), None);
        assert_eq!(s.lowest_affected([ids[3]]), None);
        assert_eq!(s.lowest_affected([]), None);
        // Quantifier-inner literals count as reads too.
        let mut r = rule(ids[1], vec![pos(ids[0])]);
        r.quant = Some(crate::rule::QuantGroup {
            binders: vec![(VarId(1), Pattern::Var(VarId(0)))],
            inner: vec![pos(ids[2])],
        });
        let s = stratify(&[r], fx.reg.len(), &fx.name_fn()).unwrap();
        assert_eq!(s.lowest_affected([ids[2]]), Some(0));
    }

    #[test]
    fn demand_obstruction_sees_through_the_rule_graph() {
        let (fx, ids) = Fixture::new(&["edb", "t", "iso", "grp"]);
        // t :- edb. t :- edb, t.          (monotone closure)
        // iso :- edb, not t.              (negation above t)
        // grp(<X>) :- t.                  (grouping above t)
        let closure = vec![
            rule(ids[1], vec![pos(ids[0])]),
            rule(ids[1], vec![pos(ids[0]), pos(ids[1])]),
        ];
        assert_eq!(demand_obstruction(&closure, [ids[1]]), None);

        let mut with_neg = closure.clone();
        with_neg.push(rule(ids[2], vec![pos(ids[0]), neg(ids[1])]));
        // Querying t never reaches the negation…
        assert_eq!(demand_obstruction(&with_neg, [ids[1]]), None);
        // …but querying iso does.
        assert_eq!(
            demand_obstruction(&with_neg, [ids[2]]),
            Some(DemandObstruction::Negation(ids[1]))
        );

        let mut with_grp = closure.clone();
        let mut g = rule(ids[3], vec![pos(ids[1])]);
        g.group = Some(GroupSpec {
            arg_pos: 0,
            var: VarId(0),
        });
        with_grp.push(g);
        assert_eq!(demand_obstruction(&with_grp, [ids[1]]), None);
        assert_eq!(
            demand_obstruction(&with_grp, [ids[3]]),
            Some(DemandObstruction::Grouping(ids[3]))
        );
        let _ = fx;
    }

    #[test]
    fn demand_obstruction_follows_quantifier_inner_literals() {
        let (_fx, ids) = Fixture::new(&["dom", "p", "q", "r"]);
        // p :- dom, (∀u∈X) q(u).  q :- dom, not r.
        let mut top = rule(ids[1], vec![pos(ids[0])]);
        top.quant = Some(crate::rule::QuantGroup {
            binders: vec![(VarId(1), Pattern::Var(VarId(0)))],
            inner: vec![BodyLit::Pos(ids[2], vec![Pattern::Var(VarId(1))])],
        });
        let rules = vec![top, rule(ids[2], vec![pos(ids[0]), neg(ids[3])])];
        assert_eq!(
            demand_obstruction(&rules, [ids[1]]),
            Some(DemandObstruction::Negation(ids[3]))
        );
        assert_eq!(demand_obstruction(&rules, [ids[0]]), None);
    }

    #[test]
    fn disconnected_predicates_default_to_stratum_zero() {
        let (fx, ids) = Fixture::new(&["p", "island"]);
        let rules = vec![rule(ids[0], vec![pos(ids[0])])];
        let s = stratify(&rules, fx.reg.len(), &fx.name_fn()).unwrap();
        assert_eq!(s.stratum(ids[1]), 0);
    }
}
