//! Fixpoint drivers: naive and semi-naive evaluation of one stratum.
//!
//! The naive driver is the literal `T_P ↑ ω` of Theorem 5: every rule
//! is applied to the full relations each round until nothing new is
//! derived. The semi-naive driver runs delta variants (each rule
//! re-joined from last round's new tuples) plus a *quantifier trigger*
//! pass: a rule whose `(∀x∈X)` group reads recursive predicates is
//! re-evaluated when those predicates grow, restricted — when the
//! element→set inverted index applies — to domain sets containing a
//! newly derived element (experiment E9).

use lps_term::{FxHashSet, TermId, TermStore};

use crate::config::{EvalConfig, EvalStats, FixpointStrategy};
use crate::error::EngineError;
use crate::eval::{eval_rule_variant, ProbeCounters, QuantTrigger, RelViews, StepProfiler};
use crate::parallel::{self, ParExec};
use crate::pattern::Pattern;
use crate::plan::CompiledRule;
use crate::pred::PredId;
use crate::relation::Relation;
use crate::rule::BodyLit;

/// Reusable buffer of derived head tuples: one flat `TermId` pool plus
/// per-tuple `(pred, start, len)` records. The drivers clear it between
/// fixpoint rounds (capacities retained), so a round allocates nothing
/// once the buffer has reached its working size — no per-tuple boxes,
/// no per-round vectors.
#[derive(Debug, Default)]
struct DerivedBuf {
    heads: Vec<(PredId, u32, u32)>,
    pool: Vec<TermId>,
}

impl DerivedBuf {
    /// Forget all tuples, keeping capacity.
    fn clear(&mut self) {
        self.heads.clear();
        self.pool.clear();
    }

    /// Number of buffered tuples.
    fn len(&self) -> usize {
        self.heads.len()
    }

    /// Start a tuple: returns the pool offset to record.
    fn begin(&self) -> u32 {
        u32::try_from(self.pool.len()).expect("derived pool overflow")
    }

    /// Finish the tuple started at `start` for `pred`.
    fn commit(&mut self, pred: PredId, start: u32) {
        let len = self.pool.len() as u32 - start;
        self.heads.push((pred, start, len));
    }

    /// Buffered `(pred, tuple)` pairs in derivation order.
    fn iter(&self) -> impl Iterator<Item = (PredId, &[TermId])> {
        self.heads
            .iter()
            .map(move |&(p, start, len)| (p, &self.pool[start as usize..(start + len) as usize]))
    }
}

/// How a stratum run starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StratumStart {
    /// Batch evaluation: grouping rules run first, then the fixpoint
    /// opens with a full round over the complete relations.
    Batch,
    /// Incremental continuation: the full relations already hold a
    /// completed fixpoint plus newly inserted facts, and the delta
    /// relations are pre-seeded with exactly those new tuples. The
    /// grouping pass and the full round 0 are skipped; the semi-naive
    /// driver drains the seeded deltas to the new fixpoint. Sound only
    /// for monotone rules — the engine falls back to a batch run when
    /// negation or grouping sits at or above the restart stratum.
    /// Driven both by `Engine::update` (E12) and by the retained
    /// demand spaces, whose magic-rewritten programs are monotone by
    /// construction (E14).
    Seeded {
        /// Interned-set count at the last completed materialization,
        /// so universe-enumerating rules re-fire when the update
        /// interned new sets.
        sets_baseline: usize,
    },
}

/// Run one stratum to fixpoint. `regular` are ordinary rules whose
/// heads live in this stratum; `grouping` are LDL grouping rules
/// (evaluated once, first — their bodies are complete lower strata;
/// must be empty for a [`StratumStart::Seeded`] run). `exec` carries
/// the session's worker pool for the parallel semi-naive join phase
/// (E15); with `exec.threads() == 1` every path below is the exact
/// sequential legacy code. `profiler` (when `config.profile` runs a
/// query) receives per-literal probe attribution; profiled strata stay
/// sequential so attribution is complete.
#[allow(clippy::too_many_arguments)]
pub fn run_stratum(
    store: &mut TermStore,
    full: &mut [Relation],
    delta: &mut [Relation],
    regular: &[&CompiledRule],
    grouping: &[&CompiledRule],
    config: &EvalConfig,
    start: StratumStart,
    exec: &mut ParExec,
    profiler: Option<&StepProfiler>,
) -> Result<EvalStats, EngineError> {
    let _stratum_span = config.trace.then(|| {
        lps_trace::span("stratum")
            .arg("rules", regular.len())
            .arg("grouping", grouping.len())
            .arg(
                "start",
                match start {
                    StratumStart::Batch => "batch",
                    StratumStart::Seeded { .. } => "seeded",
                },
            )
    });
    let mut stats = EvalStats {
        strata: 1,
        ..EvalStats::default()
    };
    let counters = ProbeCounters::default();

    // Grouping rules first (Definition 14): body strata are final.
    debug_assert!(
        grouping.is_empty() || start == StratumStart::Batch,
        "seeded continuations never re-run grouping rules"
    );
    let mut derived = DerivedBuf::default();
    for cr in grouping {
        derived.clear();
        eval_grouping(
            cr,
            store,
            full,
            delta,
            config,
            &counters,
            profiler,
            &mut derived,
        )?;
        stats.rule_evaluations += 1;
        stats.tuples_considered += derived.len();
        for (pred, tuple) in derived.iter() {
            if full[pred.index()].insert(tuple) {
                stats.facts_derived += 1;
            }
        }
    }

    match config.strategy {
        FixpointStrategy::Naive => {
            // The naive driver re-applies every rule to the full
            // relations until quiescent, so a seeded continuation needs
            // no delta plumbing: resuming from the retained model is
            // already its semantics (`T_P` is monotone on this path).
            naive(
                store, full, delta, regular, config, &counters, profiler, &mut stats,
            )?
        }
        FixpointStrategy::SemiNaive => seminaive(
            store, full, delta, regular, config, start, &counters, profiler, &mut stats, exec,
        )?,
    }
    stats.index_probes = counters.probes.get() as usize;
    stats.probe_rows = counters.rows.get() as usize;
    stats.probe_allocs = counters.allocs.get() as usize;
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn collect_variant(
    cr: &CompiledRule,
    variant_idx: usize,
    store: &mut TermStore,
    full: &[Relation],
    delta: &[Relation],
    config: &EvalConfig,
    trigger: Option<&QuantTrigger<'_>>,
    counters: &ProbeCounters,
    profiler: Option<&StepProfiler>,
    out: &mut DerivedBuf,
) -> Result<(), EngineError> {
    let views = RelViews {
        full,
        delta,
        counters,
        profile: profiler.map(|p| (p, cr.id)),
    };
    let rule = &cr.rule;
    eval_rule_variant(
        rule,
        &cr.variants[variant_idx],
        cr.quant_plan.as_ref(),
        store,
        &views,
        config.set_universe,
        trigger,
        &mut |store, env| {
            let start = out.begin();
            for arg in &rule.head_args {
                let id = arg
                    .build(store, env)
                    .expect("planner guarantees head vars are bound");
                out.pool.push(id);
            }
            out.commit(rule.head, start);
            Ok(())
        },
    )
}

/// Evaluate one grouping rule: join the body, then collect the set of
/// grouping-variable values per binding of the remaining head
/// arguments (Definition 14).
#[allow(clippy::too_many_arguments)]
fn eval_grouping(
    cr: &CompiledRule,
    store: &mut TermStore,
    full: &[Relation],
    delta: &[Relation],
    config: &EvalConfig,
    counters: &ProbeCounters,
    profiler: Option<&StepProfiler>,
    out: &mut DerivedBuf,
) -> Result<(), EngineError> {
    let rule = &cr.rule;
    let group = rule.group.as_ref().expect("grouping rule");
    let views = RelViews {
        full,
        delta,
        counters,
        profile: profiler.map(|p| (p, cr.id)),
    };
    // key (non-group head args) → collected group values.
    let mut groups: lps_term::FxHashMap<Vec<TermId>, Vec<TermId>> = lps_term::FxHashMap::default();
    eval_rule_variant(
        rule,
        &cr.variants[0],
        cr.quant_plan.as_ref(),
        store,
        &views,
        config.set_universe,
        None,
        &mut |store, env| {
            let mut key = Vec::with_capacity(rule.head_args.len() - 1);
            for (pos, arg) in rule.head_args.iter().enumerate() {
                if pos == group.arg_pos {
                    continue;
                }
                key.push(
                    arg.build(store, env)
                        .expect("planner guarantees head vars are bound"),
                );
            }
            let val = env.get(group.var).expect("grouping var bound");
            groups.entry(key).or_default().push(val);
            Ok(())
        },
    )?;

    for (key, vals) in groups {
        let set = store.set(vals);
        let start = out.begin();
        let mut key_iter = key.into_iter();
        for pos in 0..rule.head_args.len() {
            if pos == group.arg_pos {
                out.pool.push(set);
            } else {
                out.pool.push(key_iter.next().expect("key arity"));
            }
        }
        out.commit(rule.head, start);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn naive(
    store: &mut TermStore,
    full: &mut [Relation],
    delta: &mut [Relation],
    regular: &[&CompiledRule],
    config: &EvalConfig,
    counters: &ProbeCounters,
    profiler: Option<&StepProfiler>,
    stats: &mut EvalStats,
) -> Result<(), EngineError> {
    // One derivation buffer for the whole fixpoint, cleared per round.
    let mut derived = DerivedBuf::default();
    loop {
        if stats.iterations >= config.max_iterations {
            return Err(EngineError::IterationLimit {
                limit: config.max_iterations,
            });
        }
        let _round_span = config
            .trace
            .then(|| lps_trace::span("round").arg("round", stats.iterations));
        let sets_at_round_start = store.set_ids().len();
        derived.clear();
        for cr in regular {
            collect_variant(
                cr,
                0,
                store,
                full,
                delta,
                config,
                None,
                counters,
                profiler,
                &mut derived,
            )?;
            stats.rule_evaluations += 1;
        }
        stats.iterations += 1;
        stats.tuples_considered += derived.len();
        let mut changed = false;
        for (pred, tuple) in derived.iter() {
            if full[pred.index()].insert(tuple) {
                stats.facts_derived += 1;
                changed = true;
            }
        }
        // Rules that enumerate the active set universe may fire on sets
        // interned during this round even when no fact was new yet.
        let universe_grew = store.set_ids().len() > sets_at_round_start;
        if !changed && !universe_grew {
            return Ok(());
        }
    }
}

/// A binder variable is *trigger-safe* when it appears as a top-level
/// argument of some positive inner literal: new inner tuples then carry
/// the element values directly, so the inverted index gives a sound
/// candidate-set restriction.
fn quant_trigger_safe(cr: &CompiledRule) -> bool {
    let Some(group) = &cr.rule.quant else {
        return false;
    };
    group.binders.iter().all(|(qvar, _)| {
        group.inner.iter().any(|lit| match lit {
            BodyLit::Pos(_, args) => args
                .iter()
                .any(|a| matches!(a, Pattern::Var(v) if v == qvar)),
            _ => false,
        })
    })
}

#[allow(clippy::too_many_arguments)]
fn seminaive(
    store: &mut TermStore,
    full: &mut [Relation],
    delta: &mut [Relation],
    regular: &[&CompiledRule],
    config: &EvalConfig,
    start: StratumStart,
    counters: &ProbeCounters,
    profiler: Option<&StepProfiler>,
    stats: &mut EvalStats,
    exec: &mut ParExec,
) -> Result<(), EngineError> {
    // Round-persistent buffers: the derivation buffer and the
    // ∀-trigger candidate set are cleared per round, not reallocated.
    let mut derived = DerivedBuf::default();
    let mut candidate_sets: FxHashSet<TermId> = FxHashSet::default();

    let mut sets_seen = match start {
        StratumStart::Batch => {
            // Round 0: all rules, full relations.
            let _round_span = config
                .trace
                .then(|| lps_trace::span("round").arg("round", 0));
            let sets_seen = store.set_ids().len();
            for cr in regular {
                collect_variant(
                    cr,
                    0,
                    store,
                    full,
                    delta,
                    config,
                    None,
                    counters,
                    profiler,
                    &mut derived,
                )?;
                stats.rule_evaluations += 1;
            }
            stats.iterations += 1;
            stats.tuples_considered += derived.len();
            for d in delta.iter_mut() {
                d.clear();
            }
            for (pred, tuple) in derived.iter() {
                if full[pred.index()].insert(tuple) {
                    stats.facts_derived += 1;
                    delta[pred.index()].insert(tuple);
                }
            }
            sets_seen
        }
        // Seeded continuation: the caller pre-filled the deltas with the
        // newly inserted facts; go straight to the delta rounds. The
        // universe baseline is the set count at the last completed
        // materialization, so growth since then re-triggers
        // universe-enumerating rules.
        StratumStart::Seeded { sets_baseline } => sets_baseline,
    };

    loop {
        let universe_grew = store.set_ids().len() > sets_seen;
        sets_seen = store.set_ids().len();
        if delta.iter().all(Relation::is_empty) && !universe_grew {
            return Ok(());
        }
        if stats.iterations >= config.max_iterations {
            return Err(EngineError::IterationLimit {
                limit: config.max_iterations,
            });
        }
        let _round_span = config
            .trace
            .then(|| lps_trace::span("round").arg("round", stats.iterations));

        // Candidate sets for the ∀-trigger: sets containing any newly
        // derived component.
        candidate_sets.clear();
        if config.forall_trigger_index {
            for d in delta.iter() {
                for tuple in d.iter() {
                    for &component in tuple {
                        candidate_sets.extend(store.sets_containing(component));
                        // A newly derived set value can also *be* a
                        // domain (e.g. the domain variable is an
                        // argument of the inner literal).
                        if store.is_set(component) {
                            candidate_sets.insert(component);
                        }
                    }
                }
            }
        }

        derived.clear();
        // Profiled runs stay sequential: worker arenas never feed the
        // profiler, so dispatching them would silently under-attribute.
        let par_tasks = if exec.threads() > 1 && profiler.is_none() {
            parallel::collect_tasks(regular, delta)
        } else {
            Vec::new()
        };
        let mut changed = false;
        if par_tasks.is_empty() {
            // Sequential round — the exact legacy path.
            round_passes(
                regular,
                &par_tasks,
                universe_grew,
                store,
                full,
                delta,
                config,
                &candidate_sets,
                counters,
                profiler,
                &mut derived,
                stats,
            )?;
            stats.iterations += 1;
            stats.tuples_considered += derived.len();
            for d in delta.iter_mut() {
                d.clear();
            }
            for (pred, tuple) in derived.iter() {
                if full[pred.index()].insert(tuple) {
                    stats.facts_derived += 1;
                    delta[pred.index()].insert(tuple);
                    changed = true;
                }
            }
        } else {
            // Parallel round: the pool-eligible delta joins fan out
            // across the workers while the remaining passes run on the
            // main thread inside the same scope; relations stay frozen
            // until everyone is done.
            let (seq, outcome) = exec.join_round(
                &par_tasks,
                regular,
                full,
                delta,
                counters,
                config.trace,
                |full_s, delta_s| {
                    round_passes(
                        regular,
                        &par_tasks,
                        universe_grew,
                        store,
                        full_s,
                        delta_s,
                        config,
                        &candidate_sets,
                        counters,
                        None,
                        &mut derived,
                        stats,
                    )
                },
            );
            seq?;
            stats.parallel_rounds += 1;
            stats.worker_imbalance = stats.worker_imbalance.max(outcome.imbalance);
            stats.partitions_rebalanced += outcome.rebalanced;
            stats.iterations += 1;
            stats.tuples_considered += derived.len() + outcome.produced;
            for d in delta.iter_mut() {
                d.clear();
            }
            // Sequentially derived tuples first (the legacy loop), then
            // the worker arenas in deterministic (task, worker, row)
            // order. Parallel-safe rules intern nothing, so insertion
            // order only affects row order within a relation — the
            // model and every TermId match the sequential run.
            for (pred, tuple) in derived.iter() {
                if full[pred.index()].insert(tuple) {
                    stats.facts_derived += 1;
                    delta[pred.index()].insert(tuple);
                    changed = true;
                }
            }
            changed |= exec.merge(&par_tasks, regular, full, delta, stats, config.trace);
        }
        // No new facts: done — unless this round interned new sets, in
        // which case the top-of-loop universe trigger must get a look
        // (the naive driver already rechecks growth before exiting).
        if !changed && store.set_ids().len() <= sets_seen {
            return Ok(());
        }
    }
}

/// One round's sequential rule passes: the universe-growth pass, the
/// delta variants — minus any in `par_tasks`, which are running on the
/// worker pool concurrently — and the quantifier-trigger pass.
/// `par_tasks` holds ascending `(rule, variant)` index pairs.
#[allow(clippy::too_many_arguments)]
fn round_passes(
    regular: &[&CompiledRule],
    par_tasks: &[(usize, usize)],
    universe_grew: bool,
    store: &mut TermStore,
    full: &[Relation],
    delta: &[Relation],
    config: &EvalConfig,
    candidate_sets: &FxHashSet<TermId>,
    counters: &ProbeCounters,
    profiler: Option<&StepProfiler>,
    derived: &mut DerivedBuf,
    stats: &mut EvalStats,
) -> Result<(), EngineError> {
    for (ri, cr) in regular.iter().enumerate() {
        // Universe-growth trigger: rules that enumerate the active
        // set universe must re-run against the enlarged universe.
        if universe_grew && cr.uses_active_universe {
            collect_variant(
                cr, 0, store, full, delta, config, None, counters, profiler, derived,
            )?;
            stats.rule_evaluations += 1;
        }
        // Delta variants: re-join from each recursive literal.
        for (vi, variant) in cr.variants.iter().enumerate().skip(1) {
            if par_tasks.binary_search(&(ri, vi)).is_ok() {
                // Running on the pool right now.
                stats.rule_evaluations += 1;
                continue;
            }
            let dlit = variant.delta_lit.expect("non-full variants have a delta");
            let BodyLit::Pos(p, _) = &cr.rule.outer[dlit] else {
                unreachable!("delta literal is positive");
            };
            if delta[p.index()].is_empty() {
                continue;
            }
            collect_variant(
                cr, vi, store, full, delta, config, None, counters, profiler, derived,
            )?;
            stats.rule_evaluations += 1;
        }
        // Quantifier trigger: inner predicates grew.
        if !cr.inner_preds.is_empty() && cr.inner_preds.iter().any(|p| !delta[p.index()].is_empty())
        {
            let trig = QuantTrigger { candidate_sets };
            let trigger = if config.forall_trigger_index && quant_trigger_safe(cr) {
                Some(&trig)
            } else {
                None
            };
            collect_variant(
                cr, 0, store, full, delta, config, trigger, counters, profiler, derived,
            )?;
            stats.rule_evaluations += 1;
        }
    }
    Ok(())
}
