//! The parallel semi-naive join phase (experiment E15).
//!
//! Each fixpoint round's delta-variant joins for *parallel-safe* rules
//! ([`CompiledRule::parallel_safe`]: the flat fragment whose evaluation
//! never interns a term) are fanned across a scoped worker pool
//! (`lps_pool`, the vendored offline stand-in for a rayon-style
//! scoped-threads crate):
//!
//! 1. **Partition.** Worker *w* of *W* scans the variant's delta
//!    relation and keeps the rows whose [`Variant::part_mask`] columns
//!    hash to *w* mod *W* — rows sharing a probe key stay on one
//!    worker, and skew becomes observable as
//!    [`EvalStats::worker_imbalance`]. When that home split is badly
//!    skewed (one worker's share above 1.5× the fair share), the
//!    driver precomputes a per-row assignment that caps every worker
//!    at the fair share and spills the overflow cyclically
//!    (`compute_assignments`); such tasks are counted in
//!    [`EvalStats::partitions_rebalanced`].
//! 2. **Join.** Each worker runs the store-free flat executor
//!    (`eval::eval_flat_partition`) over its share, deriving
//!    head tuples into a thread-local `WorkerBuf` arena. The worker
//!    precomputes each tuple's dedup hash and pre-filters against the
//!    frozen full relation, so the big cache misses happen off the
//!    sequential merge path.
//! 3. **Merge.** After the scope joins, the main thread folds worker
//!    arenas into the shared relations in deterministic (task,
//!    worker-index, row) order via [`Relation::insert_hashed`].
//!
//! Determinism: parallel-safe rules intern nothing, so the term store
//! is untouched by the fan-out and every `TermId` a parallel run
//! assigns is assigned by the sequential run too — the resulting model
//! is bit-identical (`prop_parallel.rs` asserts this at 2/4/8
//! workers). `threads = 1` bypasses this module entirely and takes the
//! exact legacy sequential path.
//!
//! [`Variant::part_mask`]: crate::plan::Variant::part_mask
//! [`EvalStats::worker_imbalance`]: crate::config::EvalStats::worker_imbalance

use lps_term::TermId;

use crate::config::EvalStats;
use crate::eval::{eval_flat_partition, flat_head_tuple, FlatCounters, ProbeCounters};
use crate::plan::CompiledRule;
use crate::relation::{hash_masked_tuple, Relation};
use crate::rule::BodyLit;

/// Minimum delta-relation size before a variant's join is dispatched to
/// the pool: below this, partitioning overhead dwarfs the join. Small
/// on purpose so the property tests exercise the parallel path on
/// modest random programs.
pub(crate) const PAR_CUTOFF: usize = 16;

/// One worker's round-local derivation arena: a flat tuple pool plus
/// the per-tuple dedup hashes, segmented per task so the merge pass can
/// walk `(task, worker, row)` in deterministic order. Cleared (capacity
/// retained) between rounds.
#[derive(Debug, Default)]
struct WorkerBuf {
    /// Derived head tuples, task-major, arity-strided per task.
    pool: Vec<TermId>,
    /// `Relation::hash_tuple` of each buffered tuple, precomputed on
    /// the worker so the merge pass never rehashes.
    hashes: Vec<u64>,
    /// Per-task cumulative `(tuple count, pool length)` watermarks.
    task_ends: Vec<(u32, u32)>,
    /// Store-free probe counters, folded into the shared
    /// [`ProbeCounters`] after the scope joins.
    counters: FlatCounters,
    /// Sink invocations before the full-relation pre-filter
    /// (`tuples_considered` parity with the sequential path).
    produced: u64,
    /// Delta rows this worker owned across all tasks this round (the
    /// imbalance statistic).
    owned: u64,
}

impl WorkerBuf {
    fn clear(&mut self) {
        self.pool.clear();
        self.hashes.clear();
        self.task_ends.clear();
        self.counters = FlatCounters::default();
        self.produced = 0;
        self.owned = 0;
    }

    /// The `(tuple, pool)` range of task `t`, as
    /// `(tuple_lo, pool_lo, tuple_hi)`.
    fn task_range(&self, t: usize) -> (u32, u32, u32) {
        let (tup_lo, pool_lo) = if t == 0 {
            (0, 0)
        } else {
            self.task_ends[t - 1]
        };
        (tup_lo, pool_lo, self.task_ends[t].0)
    }
}

/// Aggregate outcome of one parallel join pass, folded into
/// [`EvalStats`] by the driver.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JoinOutcome {
    /// Partition skew this round: `max worker share × workers × 100 /
    /// total rows` (100 ≈ balanced). 0 when no rows were owned.
    pub imbalance: usize,
    /// Head tuples produced by the workers before any filtering.
    pub produced: usize,
    /// Tasks whose skewed hash split was replaced by a quota-capped
    /// per-row assignment this round.
    pub rebalanced: usize,
}

/// The session's parallel executor: the resolved worker count, the
/// lazily started pool, and the reusable per-worker arenas. Owned by
/// the [`Engine`](crate::engine::Engine) so pool threads and arena
/// capacity persist across rounds, strata, and update/demand
/// continuations.
#[derive(Debug)]
pub struct ParExec {
    requested: usize,
    threads: usize,
    pool: Option<lps_pool::Pool>,
    bufs: Vec<WorkerBuf>,
}

impl ParExec {
    /// Build an executor for `threads` workers: `1` means sequential
    /// (the pool is never started), `0` means auto — one worker per
    /// available core. The pool itself starts lazily on the first
    /// parallel round, so sequential sessions never spawn a thread.
    pub fn new(threads: usize) -> Self {
        let resolved = match threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        ParExec {
            requested: threads,
            threads: resolved,
            pool: None,
            bufs: Vec::new(),
        }
    }

    /// The thread count this executor was built for, unresolved (`0` =
    /// auto) — lets the engine detect configuration changes.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// Resolved worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run the parallel join for `tasks` (pairs of indices `(rule,
    /// variant)` into `regular`) while executing `seq` — the round's
    /// sequential passes — on the main thread inside the same scope.
    /// Worker 0 is the main thread, workers `1..threads` run on the
    /// pool; the relations stay frozen (shared borrows) until both the
    /// fan-out and `seq` complete. Worker probe counters are folded
    /// into `shared` before returning.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn join_round<R>(
        &mut self,
        tasks: &[(usize, usize)],
        regular: &[&CompiledRule],
        full: &[Relation],
        delta: &[Relation],
        shared: &ProbeCounters,
        trace: bool,
        seq: impl FnOnce(&[Relation], &[Relation]) -> R,
    ) -> (R, JoinOutcome) {
        let _fan_span = trace.then(|| {
            lps_trace::span("par_fanout")
                .arg("tasks", tasks.len())
                .arg("workers", self.threads)
        });
        let w = self.threads;
        debug_assert!(w > 1, "the driver dispatches only when threads > 1");
        self.bufs.resize_with(w, WorkerBuf::default);
        for buf in &mut self.bufs {
            buf.clear();
        }
        let (assignments, rebalanced) = compute_assignments(tasks, regular, delta, w);
        let pool = self.pool.get_or_insert_with(|| lps_pool::Pool::new(w - 1));
        let (buf0, rest) = self
            .bufs
            .split_first_mut()
            .expect("threads > 1 implies at least one buffer");
        let assigns: &[Option<Vec<u8>>] = &assignments;
        let result = pool.scoped(|scope| {
            for (i, buf) in rest.iter_mut().enumerate() {
                let wi = i + 1;
                scope.execute(move || {
                    run_worker(buf, tasks, regular, full, delta, assigns, wi, w, trace)
                });
            }
            run_worker(buf0, tasks, regular, full, delta, assigns, 0, w, trace);
            seq(full, delta)
        });
        let mut produced = 0u64;
        let mut total = 0u64;
        let mut peak = 0u64;
        for buf in &self.bufs {
            shared.probes.set(shared.probes.get() + buf.counters.probes);
            shared.rows.set(shared.rows.get() + buf.counters.rows);
            produced += buf.produced;
            total += buf.owned;
            peak = peak.max(buf.owned);
        }
        let imbalance = (peak * w as u64 * 100).checked_div(total).unwrap_or(0) as usize;
        (
            result,
            JoinOutcome {
                imbalance,
                produced: produced as usize,
                rebalanced,
            },
        )
    }

    /// Fold the worker arenas of the last [`ParExec::join_round`] into
    /// the shared relations, in deterministic `(task, worker, row)`
    /// order: for each task, worker segments are applied in worker
    /// index order. Pre-reserves each head relation for the task's
    /// candidate count (the reserve/commit pattern — no mid-merge
    /// rehash). Returns whether any genuinely new tuple was inserted;
    /// `stats.merge_rows` and `stats.facts_derived` are bumped per
    /// candidate / per new row.
    pub(crate) fn merge(
        &self,
        tasks: &[(usize, usize)],
        regular: &[&CompiledRule],
        full: &mut [Relation],
        delta: &mut [Relation],
        stats: &mut EvalStats,
        trace: bool,
    ) -> bool {
        let _merge_span = trace.then(|| lps_trace::span("par_merge").arg("tasks", tasks.len()));
        let mut changed = false;
        for (t, &(ri, _vi)) in tasks.iter().enumerate() {
            let rule = &regular[ri].rule;
            let head = rule.head.index();
            let arity = rule.head_args.len();
            let candidates: usize = self
                .bufs
                .iter()
                .map(|buf| {
                    let (lo, _, hi) = buf.task_range(t);
                    (hi - lo) as usize
                })
                .sum();
            if candidates == 0 {
                continue;
            }
            full[head].reserve(candidates);
            delta[head].reserve(candidates);
            for buf in &self.bufs {
                let (tup_lo, pool_lo, tup_hi) = buf.task_range(t);
                let mut off = pool_lo as usize;
                for i in tup_lo..tup_hi {
                    let tuple = &buf.pool[off..off + arity];
                    off += arity;
                    stats.merge_rows += 1;
                    if full[head].insert_hashed(buf.hashes[i as usize], tuple) {
                        stats.facts_derived += 1;
                        delta[head].insert(tuple);
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

/// The pool-eligible delta variants of this round: parallel-safe rules
/// whose delta relation is at least [`PAR_CUTOFF`] rows. Returned in
/// ascending `(rule, variant)` order (the merge order, and sorted for
/// the driver's skip check).
pub(crate) fn collect_tasks(regular: &[&CompiledRule], delta: &[Relation]) -> Vec<(usize, usize)> {
    let mut tasks = Vec::new();
    for (ri, cr) in regular.iter().enumerate() {
        if !cr.parallel_safe {
            continue;
        }
        for (vi, variant) in cr.variants.iter().enumerate().skip(1) {
            let d = variant.delta_lit.expect("non-full variants have a delta");
            let BodyLit::Pos(p, _) = &cr.rule.outer[d] else {
                unreachable!("delta literal is positive");
            };
            if delta[p.index()].len() >= PAR_CUTOFF {
                tasks.push((ri, vi));
            }
        }
    }
    tasks
}

/// Rebalance trigger, in percent of the fair share: a task's hash
/// split is replaced only when the most loaded worker's home share
/// exceeds `fair × 150 / 100`, so mild skew keeps the cheap
/// assignment-free modulo path.
const REBALANCE_PCT: u64 = 150;

/// Precompute per-row worker assignments for this round's skewed
/// tasks. A row's *home* worker is its partition-hash modulo `w`
/// (exactly the legacy split). When the largest home share exceeds
/// [`REBALANCE_PCT`]% of the fair share `ceil(n / w)`, the task is
/// rebalanced: every worker keeps at most the fair share of its home
/// rows, and overflow rows walk cyclically to the next worker with
/// quota left. The result depends only on row order and the hash
/// split, so reassignment preserves the deterministic merge. Balanced
/// tasks — and worker counts that don't fit the `u8` assignment
/// array — stay `None` and take the modulo path. Also returns how
/// many tasks were rebalanced.
fn compute_assignments(
    tasks: &[(usize, usize)],
    regular: &[&CompiledRule],
    delta: &[Relation],
    w: usize,
) -> (Vec<Option<Vec<u8>>>, usize) {
    let mut out = Vec::with_capacity(tasks.len());
    let mut rebalanced = 0usize;
    for &(ri, vi) in tasks {
        let cr = regular[ri];
        let variant = &cr.variants[vi];
        let d = variant.delta_lit.expect("non-full variants have a delta");
        let BodyLit::Pos(p, _) = &cr.rule.outer[d] else {
            unreachable!("delta literal is positive");
        };
        let drel = &delta[p.index()];
        let n = drel.len();
        if n == 0 || w > u8::MAX as usize + 1 {
            out.push(None);
            continue;
        }
        let mut homes = vec![0u8; n];
        let mut counts = vec![0u64; w];
        for (row, home) in homes.iter_mut().enumerate() {
            let h = hash_masked_tuple(drel.row(row as u32), variant.part_mask) as usize % w;
            *home = h as u8;
            counts[h] += 1;
        }
        let fair = n.div_ceil(w) as u64;
        let peak = counts.iter().copied().max().unwrap_or(0);
        if peak * 100 <= REBALANCE_PCT * fair {
            out.push(None);
            continue;
        }
        // Quota-cap each worker at the fair share. Total quota is
        // `fair × w ≥ n`, so the cyclic walk always finds a slot.
        let mut quota = vec![fair; w];
        for home in homes.iter_mut() {
            let mut wk = *home as usize;
            while quota[wk] == 0 {
                wk = (wk + 1) % w;
            }
            quota[wk] -= 1;
            *home = wk as u8;
        }
        rebalanced += 1;
        out.push(Some(homes));
    }
    (out, rebalanced)
}

/// One worker's round: run every task's join over this worker's
/// partition, deriving (pre-hashed, pre-filtered) head tuples into
/// `buf` and recording the per-task segment watermarks.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    buf: &mut WorkerBuf,
    tasks: &[(usize, usize)],
    regular: &[&CompiledRule],
    full: &[Relation],
    delta: &[Relation],
    assigns: &[Option<Vec<u8>>],
    worker: usize,
    nworkers: usize,
    trace: bool,
) {
    let _worker_span = trace.then(|| {
        lps_trace::span("par_worker")
            .arg("worker", worker)
            .arg("tasks", tasks.len())
    });
    for (t, &(ri, vi)) in tasks.iter().enumerate() {
        let cr = regular[ri];
        let rule = &cr.rule;
        let head_full = &full[rule.head.index()];
        let WorkerBuf {
            pool,
            hashes,
            counters,
            produced,
            ..
        } = buf;
        let owned = eval_flat_partition(
            rule,
            &cr.variants[vi],
            full,
            delta,
            worker,
            nworkers,
            assigns[t].as_deref(),
            counters,
            &mut |env| {
                *produced += 1;
                let start = pool.len();
                flat_head_tuple(&rule.head_args, env, pool);
                let tuple = &pool[start..];
                let h = Relation::hash_tuple(tuple);
                // Pre-filter against the frozen full relation: known
                // tuples die here, on the worker, instead of costing
                // the merge pass a cache miss each.
                if head_full.contains_hashed(h, tuple) {
                    pool.truncate(start);
                } else {
                    hashes.push(h);
                }
            },
        );
        buf.owned += owned;
        buf.task_ends
            .push((buf.hashes.len() as u32, buf.pool.len() as u32));
    }
}
