//! End-to-end checks for the Theorem-10/11 translations: source and
//! translated programs are evaluated and compared on their common
//! predicates — §6's notion of equivalence.

use lps_core::equiv::{assert_equivalent, compare_on};
use lps_core::transform::translations::{
    elps_to_horn_scons, elps_to_horn_union, grouping_to_elps, horn_scons_to_elps,
    horn_union_to_elps, union_via_grouping,
};
use lps_core::{Database, Dialect, Value};
use lps_engine::{EvalConfig, SetUniverse};
use lps_syntax::parse_program;

fn db_from(src: &str, dialect: Dialect, universe: SetUniverse) -> Database {
    let mut db = Database::with_config(
        dialect,
        EvalConfig {
            set_universe: universe,
            ..EvalConfig::default()
        },
    );
    db.load_str(src).unwrap();
    db
}

const DISJ_SRC: &str = "\
    pair({a, b}, {c}). pair({a, b}, {b, c}). pair({}, {a}). pair({c}, {}).\n\
    disj(X, Y) :- pair(X, Y), forall U in X: forall V in Y: U != V.";

#[test]
fn theorem_10_disj_direct_vs_horn_union() {
    let direct = db_from(DISJ_SRC, Dialect::Elps, SetUniverse::Reject);
    let source = parse_program(DISJ_SRC).unwrap();
    let translated = elps_to_horn_union(&source).unwrap();
    let mut tdb = Database::new(Dialect::Elps);
    tdb.load_program(translated);
    let reports = assert_equivalent(&direct, &tdb, &[("disj", 2)]).unwrap();
    assert_eq!(reports[0].common, 3, "three disjoint pairs");
}

#[test]
fn theorem_10_disj_direct_vs_horn_scons() {
    let direct = db_from(DISJ_SRC, Dialect::Elps, SetUniverse::Reject);
    let source = parse_program(DISJ_SRC).unwrap();
    let translated = elps_to_horn_scons(&source).unwrap();
    let mut tdb = Database::new(Dialect::Elps);
    tdb.load_program(translated);
    assert_equivalent(&direct, &tdb, &[("disj", 2)]).unwrap();
}

const SUBSET_SRC: &str = "\
    pair({a}, {a, b}). pair({a, b}, {a}). pair({}, {b}). pair({a, b}, {a, b}).\n\
    sub(X, Y) :- pair(X, Y), forall U in X: U in Y.";

#[test]
fn theorem_10_subset_all_three_languages() {
    let direct = db_from(SUBSET_SRC, Dialect::Elps, SetUniverse::Reject);
    let source = parse_program(SUBSET_SRC).unwrap();
    for translated in [
        elps_to_horn_union(&source).unwrap(),
        elps_to_horn_scons(&source).unwrap(),
    ] {
        let mut tdb = Database::new(Dialect::Elps);
        tdb.load_program(translated);
        let reports = assert_equivalent(&direct, &tdb, &[("sub", 2)]).unwrap();
        assert_eq!(
            reports[0].common, 3,
            "{{a}}⊆{{a,b}}, ∅⊆{{b}}, {{a,b}}⊆{{a,b}}"
        );
    }
}

#[test]
fn theorem_10_union_call_to_elps() {
    // A Horn + union program: r drives union/3 in computation mode.
    let horn_src = "\
        r({a}, {b}). r({a, b}, {c}). r({}, {}).\n\
        joined(X, Y, Z) :- r(X, Y), union(X, Y, Z).";
    let direct = db_from(horn_src, Dialect::Elps, SetUniverse::Reject);
    let source = parse_program(horn_src).unwrap();
    let translated = horn_union_to_elps(&source).unwrap();
    // The defined predicate ranges over active sets: needs the policy.
    let mut tdb = Database::with_config(
        Dialect::Elps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 3 },
            ..EvalConfig::default()
        },
    );
    tdb.load_program(translated);
    let reports = assert_equivalent(&direct, &tdb, &[("joined", 3)]).unwrap();
    assert_eq!(reports[0].common, 3);
}

#[test]
fn theorem_10_scons_call_to_elps() {
    let horn_src = "\
        r(a, {b}). r(b, {}). r(c, {a, c}).\n\
        built(X, Y, Z) :- r(X, Y), scons(X, Y, Z).";
    let direct = db_from(horn_src, Dialect::Elps, SetUniverse::Reject);
    let source = parse_program(horn_src).unwrap();
    let translated = horn_scons_to_elps(&source).unwrap();
    let mut tdb = Database::with_config(
        Dialect::Elps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 3 },
            ..EvalConfig::default()
        },
    );
    tdb.load_program(translated);
    let reports = assert_equivalent(&direct, &tdb, &[("built", 3)]).unwrap();
    assert_eq!(reports[0].common, 3);
}

#[test]
fn theorem_11_union_via_grouping_matches_builtin() {
    // Ground-truth: union over the sets in the facts, paired with the
    // grouping-program's output. Grouping cannot produce ∅ (no body
    // tuples), so compare on pairs with nonempty union.
    let facts = "seed({a}). seed({b, c}). seed({a, c}).";
    let parsed = parse_program(facts).unwrap();
    let grouped = union_via_grouping(&parsed, "gunion").unwrap();
    let mut gdb = Database::with_config(
        Dialect::StratifiedElps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSets,
            ..EvalConfig::default()
        },
    );
    gdb.load_program(grouped);
    let gm = gdb.evaluate().unwrap();
    let rows = gm.extension_n("gunion", 3);
    assert!(!rows.is_empty());
    // Every produced triple satisfies Z = X ∪ Y.
    for row in &rows {
        let (x, y, z) = (&row[0], &row[1], &row[2]);
        let (Value::Set(xs), Value::Set(ys), Value::Set(zs)) = (x, y, z) else {
            panic!("non-set row {row:?}");
        };
        let expected: std::collections::BTreeSet<_> = xs.union(ys).cloned().collect();
        assert_eq!(&expected, zs, "Z = X ∪ Y for {row:?}");
    }
    // And it covers all pairs of the active sets from the facts
    // (3 seeds + ∅ interned by adom; unions of the seeds with each
    // other and themselves — every pair with nonempty union).
    let gm_pairs: std::collections::BTreeSet<(Value, Value)> =
        rows.iter().map(|r| (r[0].clone(), r[1].clone())).collect();
    assert!(gm_pairs.len() >= 15, "got {}", gm_pairs.len());
}

#[test]
fn theorem_11_grouping_to_negation() {
    // owns(P, <C>) :- car(P, C). translated to stratified ELPS.
    let src = "car(alice, c1). car(alice, c2). car(bob, c3).\n\
               owns(P, <C>) :- car(P, C).";
    let direct = db_from(src, Dialect::StratifiedElps, SetUniverse::Reject);
    let source = parse_program(src).unwrap();
    let translated = grouping_to_elps(&source).unwrap();
    let mut tdb = Database::with_config(
        Dialect::StratifiedElps,
        EvalConfig {
            set_universe: SetUniverse::ActiveSubsets { max_card: 3 },
            ..EvalConfig::default()
        },
    );
    tdb.load_program(translated);

    // The negation construction also derives groups for *source
    // values absent from the body* (empty maximal sets) only when the
    // grouped variable ranges over them — restrict the comparison to
    // the P values present in `car`, as the paper's grouping
    // semantics prescribes.
    let reports = compare_on(&direct, &tdb, &[("owns", 2)]).unwrap();
    let r = &reports[0];
    assert!(
        r.left_only.is_empty(),
        "direct ⊆ translated: {:?}",
        r.left_only
    );
    // Translated side may have extra empty-set rows for non-owners;
    // none here since every person owns something.
    assert!(
        r.right_only.iter().all(|row| row[1] == Value::empty_set()),
        "only empty-group extras allowed: {:?}",
        r.right_only
    );
    assert_eq!(r.common, 2, "alice and bob groups agree");
}

#[test]
fn unnest_example_4_is_translation_stable() {
    // Quantifier-free programs are untouched by the peeling
    // translations (modulo the adom block).
    let src = "r(x1, {p, q}). s(X, Y) :- r(X, Ys), Y in Ys.";
    let direct = db_from(src, Dialect::Elps, SetUniverse::Reject);
    let source = parse_program(src).unwrap();
    let translated = elps_to_horn_union(&source).unwrap();
    let mut tdb = Database::new(Dialect::Elps);
    tdb.load_program(translated);
    let reports = assert_equivalent(&direct, &tdb, &[("s", 2)]).unwrap();
    assert_eq!(reports[0].common, 2);
}
