//! Collision-free fresh-name generation for auxiliary predicates and
//! renamed variables.

use std::collections::HashSet;

use lps_syntax::{Formula, HeadArg, Literal, Program, Term};

/// Generates predicate and variable names guaranteed not to collide
/// with anything in the source program (or previously generated).
#[derive(Debug, Default, Clone)]
pub struct FreshNames {
    used_preds: HashSet<String>,
    used_vars: HashSet<String>,
    pred_counter: usize,
    var_counter: usize,
}

impl FreshNames {
    /// Seed from a program: collect every predicate, constant,
    /// function, and variable name in use.
    pub fn for_program(program: &Program) -> Self {
        let mut fresh = FreshNames::default();
        for decl in program.decls() {
            fresh.used_preds.insert(decl.name.clone());
        }
        for clause in program.clauses() {
            fresh.used_preds.insert(clause.head.pred.clone());
            for arg in &clause.head.args {
                match arg {
                    HeadArg::Term(t) => fresh.scan_term(t),
                    HeadArg::Group(v, _) => {
                        fresh.used_vars.insert(v.clone());
                    }
                }
            }
            if let Some(body) = &clause.body {
                fresh.scan_formula(body);
            }
        }
        fresh
    }

    fn scan_formula(&mut self, f: &Formula) {
        match f {
            Formula::Lit(Literal::Pred(name, args, _)) => {
                self.used_preds.insert(name.clone());
                for a in args {
                    self.scan_term(a);
                }
            }
            Formula::Lit(Literal::Cmp(_, l, r, _)) => {
                self.scan_term(l);
                self.scan_term(r);
            }
            Formula::Not(inner, _) => self.scan_formula(inner),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    self.scan_formula(f);
                }
            }
            Formula::Forall { var, set, body, .. } | Formula::Exists { var, set, body, .. } => {
                self.used_vars.insert(var.clone());
                self.scan_term(set);
                self.scan_formula(body);
            }
        }
    }

    fn scan_term(&mut self, t: &Term) {
        match t {
            Term::Var(v, _) => {
                self.used_vars.insert(v.clone());
            }
            Term::Const(c, _) => {
                // Constants share the lowercase namespace with
                // predicates in the surface syntax; avoid both.
                self.used_preds.insert(c.clone());
            }
            Term::Int(..) => {}
            Term::App(f, args, _) => {
                self.used_preds.insert(f.clone());
                for a in args {
                    self.scan_term(a);
                }
            }
            Term::SetLit(elems, _) => {
                for e in elems {
                    self.scan_term(e);
                }
            }
            Term::BinOp(_, l, r, _) => {
                self.scan_term(l);
                self.scan_term(r);
            }
        }
    }

    /// A fresh predicate name with the given stem (e.g. `aux`).
    pub fn pred(&mut self, stem: &str) -> String {
        loop {
            let candidate = format!("{stem}_{}", self.pred_counter);
            self.pred_counter += 1;
            if self.used_preds.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// A fresh variable name (uppercase, parser-compatible).
    pub fn var(&mut self, stem: &str) -> String {
        loop {
            let candidate = format!("{stem}{}", self.var_counter);
            self.var_counter += 1;
            if self.used_vars.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_syntax::parse_program;

    #[test]
    fn avoids_existing_names() {
        let p = parse_program("aux_0(X) :- q(X, Vq0).").unwrap();
        let mut f = FreshNames::for_program(&p);
        assert_ne!(f.pred("aux"), "aux_0");
        assert_ne!(f.var("Vq"), "Vq0");
    }

    #[test]
    fn generated_names_are_distinct() {
        let p = parse_program("p.").unwrap();
        let mut f = FreshNames::for_program(&p);
        let a = f.pred("aux");
        let b = f.pred("aux");
        assert_ne!(a, b);
        let x = f.var("V");
        let y = f.var("V");
        assert_ne!(x, y);
    }

    #[test]
    fn avoids_constants_too() {
        // A constant `aux_0` would collide with a generated predicate
        // name in the shared lowercase namespace.
        let p = parse_program("p(aux_0).").unwrap();
        let mut f = FreshNames::for_program(&p);
        assert_ne!(f.pred("aux"), "aux_0");
    }
}
