//! Sort inference and checking for the two-sorted logic of §2.1.
//!
//! The paper distinguishes sort *a* (individuals) from sort *s* (sets)
//! lexically (`x` vs `X`). Our surface syntax uses capitalization for
//! *variables* instead, so sorts are recovered by unification-based
//! inference:
//!
//! * set literals and quantifier domains force sort *s*;
//! * constants, integers, and function applications force sort *a*;
//! * membership `x in S` forces `S : s` (and, in LPS mode, `x : a`);
//! * `pred p(atom, set)` declarations pin predicate signatures.
//!
//! In **LPS mode** conflicts are errors, as are nested sets and
//! set-sorted function arguments (Definition 1 allows functions only
//! on sort *a*; Example 8 shows why). In **ELPS mode** (§5, untyped)
//! inference still runs — the results feed documentation and the
//! builtin type checks — but a position used at both sorts simply
//! stays `any`.

use std::collections::HashMap;

use lps_syntax::{CmpOp, Formula, HeadArg, Literal, Program, SortAnn, Span, Term};

use crate::dialect::Dialect;
use crate::error::CoreError;

/// Inferred signatures: predicate name → per-argument sort.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SortTable {
    sigs: HashMap<String, Vec<SortAnn>>,
}

impl SortTable {
    /// Signature of a predicate, if seen.
    pub fn signature(&self, pred: &str) -> Option<&[SortAnn]> {
        self.sigs.get(pred).map(Vec::as_slice)
    }

    /// Iterate over all signatures.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[SortAnn])> {
        self.sigs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// Internal sort terms for unification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum S {
    Atom,
    Set,
    Var(usize),
}

#[derive(Default)]
struct Unifier {
    /// Union-find parent / resolved sort per inference variable.
    vars: Vec<Option<SConst>>,
    links: Vec<Option<usize>>,
    /// Set in ELPS mode: conflicts resolve to `any` instead of erroring.
    lenient: bool,
    conflict: Option<(Span, String)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SConst {
    Atom,
    Set,
    Any, // lenient conflict
}

impl Unifier {
    fn fresh(&mut self) -> usize {
        self.vars.push(None);
        self.links.push(None);
        self.vars.len() - 1
    }

    fn find(&self, mut v: usize) -> usize {
        while let Some(p) = self.links[v] {
            v = p;
        }
        v
    }

    fn assign(&mut self, v: usize, c: SConst, span: Span, what: &str) {
        let r = self.find(v);
        match self.vars[r] {
            None => self.vars[r] = Some(c),
            Some(existing) if existing == c || existing == SConst::Any => {}
            Some(existing) => {
                if self.lenient {
                    self.vars[r] = Some(SConst::Any);
                } else if self.conflict.is_none() {
                    self.conflict = Some((
                        span,
                        format!(
                            "{what} is used at sort `{}` but was inferred as `{}`",
                            sort_name(c),
                            sort_name(existing)
                        ),
                    ));
                }
            }
        }
    }

    fn unify(&mut self, a: S, b: S, span: Span, what: &str) {
        match (a, b) {
            (S::Var(x), S::Var(y)) => {
                let (rx, ry) = (self.find(x), self.find(y));
                if rx == ry {
                    return;
                }
                match (self.vars[rx], self.vars[ry]) {
                    (Some(c), None) => {
                        self.links[ry] = Some(rx);
                        let _ = c;
                    }
                    (None, _) => self.links[rx] = Some(ry),
                    (Some(cx), Some(cy)) => {
                        self.links[rx] = Some(ry);
                        if cx != cy {
                            if self.lenient {
                                self.vars[ry] = Some(SConst::Any);
                            } else if self.conflict.is_none() {
                                self.conflict = Some((
                                    span,
                                    format!(
                                        "{what}: sort `{}` conflicts with `{}`",
                                        sort_name(cx),
                                        sort_name(cy)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            (S::Var(x), S::Atom) | (S::Atom, S::Var(x)) => self.assign(x, SConst::Atom, span, what),
            (S::Var(x), S::Set) | (S::Set, S::Var(x)) => self.assign(x, SConst::Set, span, what),
            (S::Atom, S::Atom) | (S::Set, S::Set) => {}
            (S::Atom, S::Set) | (S::Set, S::Atom) => {
                if !self.lenient && self.conflict.is_none() {
                    self.conflict =
                        Some((span, format!("{what}: sort `a` conflicts with sort `s`")));
                }
            }
        }
    }

    fn resolve(&self, v: usize) -> SortAnn {
        match self.vars[self.find(v)] {
            Some(SConst::Atom) => SortAnn::Atom,
            Some(SConst::Set) => SortAnn::Set,
            Some(SConst::Any) | None => SortAnn::Any,
        }
    }
}

fn sort_name(c: SConst) -> &'static str {
    match c {
        SConst::Atom => "a",
        SConst::Set => "s",
        SConst::Any => "any",
    }
}

/// Per-clause variable sort environment.
type VarEnv = HashMap<String, usize>;

struct Inference {
    u: Unifier,
    /// predicate name → inference vars per position.
    preds: HashMap<String, Vec<usize>>,
    dialect: Dialect,
}

/// Infer (and in LPS mode, check) sorts for a program.
pub fn infer_sorts(program: &Program, dialect: Dialect) -> Result<SortTable, CoreError> {
    let mut inf = Inference {
        u: Unifier {
            lenient: dialect.allows_nesting(),
            ..Unifier::default()
        },
        preds: HashMap::new(),
        dialect,
    };

    // Declarations pin signatures.
    for decl in program.decls() {
        let vars = inf.pred_vars(&decl.name, decl.sorts.len());
        for (i, s) in decl.sorts.iter().enumerate() {
            let v = vars[i];
            match s {
                SortAnn::Atom => inf.u.assign(v, SConst::Atom, decl.span, &decl.name),
                SortAnn::Set => inf.u.assign(v, SConst::Set, decl.span, &decl.name),
                SortAnn::Any => {}
            }
        }
    }

    for clause in program.clauses() {
        let mut env: VarEnv = HashMap::new();
        // Head.
        let head_vars = inf.pred_vars(&clause.head.pred, clause.head.args.len());
        for (i, arg) in clause.head.args.iter().enumerate() {
            let slot = head_vars[i];
            match arg {
                HeadArg::Term(t) => {
                    let s = inf.term_sort(t, &mut env)?;
                    inf.u.unify(S::Var(slot), s, t.span(), &clause.head.pred);
                }
                HeadArg::Group(_, span) => {
                    // A grouping slot produces a set.
                    inf.u.assign(slot, SConst::Set, *span, &clause.head.pred);
                }
            }
        }
        if let Some(body) = &clause.body {
            inf.formula(body, &mut env)?;
        }
        // Grouping variable is collected from body bindings; its own
        // sort is whatever the body gives it (checked above via env).
        if let Some(err) = inf.u.conflict.take() {
            return Err(CoreError::sort(err.0, err.1));
        }
    }

    if let Some(err) = inf.u.conflict.take() {
        return Err(CoreError::sort(err.0, err.1));
    }

    let mut table = SortTable::default();
    for (name, vars) in &inf.preds {
        table.sigs.insert(
            name.clone(),
            vars.iter().map(|&v| inf.u.resolve(v)).collect(),
        );
    }
    Ok(table)
}

impl Inference {
    fn pred_vars(&mut self, name: &str, arity: usize) -> Vec<usize> {
        if !self.preds.contains_key(name) {
            let vars: Vec<usize> = (0..arity).map(|_| self.u.fresh()).collect();
            self.preds.insert(name.to_owned(), vars);
        }
        self.preds[name].clone()
    }

    fn var_slot(&mut self, env: &mut VarEnv, name: &str) -> usize {
        if let Some(&v) = env.get(name) {
            return v;
        }
        let v = self.u.fresh();
        env.insert(name.to_owned(), v);
        v
    }

    fn term_sort(&mut self, t: &Term, env: &mut VarEnv) -> Result<S, CoreError> {
        match t {
            Term::Var(v, _) => Ok(S::Var(self.var_slot(env, v))),
            Term::Const(..) | Term::Int(..) => Ok(S::Atom),
            Term::App(f, args, span) => {
                for a in args {
                    let s = self.term_sort(a, env)?;
                    if !self.dialect.allows_nesting() {
                        // Definition 1: function symbols take sort a.
                        self.u
                            .unify(s, S::Atom, a.span(), &format!("argument of `{f}`"));
                    }
                }
                let _ = span;
                Ok(S::Atom)
            }
            Term::SetLit(elems, span) => {
                for e in elems {
                    let s = self.term_sort(e, env)?;
                    if !self.dialect.allows_nesting() {
                        // One level of nesting only (§2.1).
                        self.u
                            .unify(s, S::Atom, e.span(), "set element in LPS mode");
                    }
                }
                let _ = span;
                Ok(S::Set)
            }
            Term::BinOp(_, l, r, _) => {
                let ls = self.term_sort(l, env)?;
                let rs = self.term_sort(r, env)?;
                self.u.unify(ls, S::Atom, l.span(), "arithmetic operand");
                self.u.unify(rs, S::Atom, r.span(), "arithmetic operand");
                Ok(S::Atom)
            }
        }
    }

    fn formula(&mut self, f: &Formula, env: &mut VarEnv) -> Result<(), CoreError> {
        match f {
            Formula::Lit(lit) => self.literal(lit, env),
            Formula::Not(inner, _) => self.formula(inner, env),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    self.formula(f, env)?;
                }
                Ok(())
            }
            Formula::Forall {
                var,
                set,
                body,
                span,
            }
            | Formula::Exists {
                var,
                set,
                body,
                span,
            } => {
                let ds = self.term_sort(set, env)?;
                self.u.unify(ds, S::Set, set.span(), "quantifier domain");
                // The bound variable shadows; give it a fresh slot.
                let saved = env.remove(var);
                let slot = self.var_slot(env, var);
                if !self.dialect.allows_nesting() {
                    // LPS: elements of sets are individuals.
                    self.u.assign(slot, SConst::Atom, *span, var);
                }
                self.formula(body, env)?;
                env.remove(var);
                if let Some(old) = saved {
                    env.insert(var.clone(), old);
                }
                Ok(())
            }
        }
    }

    fn literal(&mut self, lit: &Literal, env: &mut VarEnv) -> Result<(), CoreError> {
        match lit {
            Literal::Pred(name, args, span) => {
                let vars = self.pred_vars(name, args.len());
                if vars.len() != args.len() {
                    return Err(CoreError::invalid(
                        *span,
                        format!(
                            "`{name}` used with {} arguments but declared/used elsewhere with {}",
                            args.len(),
                            vars.len()
                        ),
                    ));
                }
                for (i, a) in args.iter().enumerate() {
                    let s = self.term_sort(a, env)?;
                    self.u.unify(S::Var(vars[i]), s, a.span(), name);
                }
                Ok(())
            }
            Literal::Cmp(op, lhs, rhs, span) => {
                let ls = self.term_sort(lhs, env)?;
                let rs = self.term_sort(rhs, env)?;
                match op {
                    CmpOp::Eq | CmpOp::Ne => {
                        self.u.unify(ls, rs, *span, "equality operands");
                    }
                    CmpOp::In | CmpOp::NotIn => {
                        self.u
                            .unify(rs, S::Set, rhs.span(), "membership right-hand side");
                        if !self.dialect.allows_nesting() {
                            self.u
                                .unify(ls, S::Atom, lhs.span(), "membership left-hand side");
                        }
                    }
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                        self.u.unify(ls, S::Atom, lhs.span(), "comparison operand");
                        self.u.unify(rs, S::Atom, rhs.span(), "comparison operand");
                    }
                }
                Ok(())
            }
        }
    }
}

/// Ensure the program is within LPS's one-level set discipline (used
/// by validation when the dialect forbids nesting): no nested set
/// literals anywhere.
pub fn check_flat_sets(program: &Program) -> Result<(), CoreError> {
    fn check_term(t: &Term, inside_set: bool) -> Result<(), CoreError> {
        match t {
            Term::SetLit(elems, span) => {
                if inside_set {
                    return Err(CoreError::sort(
                        *span,
                        "nested set literal: LPS allows one level of nesting (use the ELPS dialect)",
                    ));
                }
                for e in elems {
                    check_term(e, true)?;
                }
                Ok(())
            }
            Term::App(_, args, _) => {
                for a in args {
                    check_term(a, inside_set)?;
                }
                Ok(())
            }
            Term::BinOp(_, l, r, _) => {
                check_term(l, inside_set)?;
                check_term(r, inside_set)
            }
            _ => Ok(()),
        }
    }
    fn check_formula(f: &Formula) -> Result<(), CoreError> {
        match f {
            Formula::Lit(Literal::Pred(_, args, _)) => {
                args.iter().try_for_each(|t| check_term(t, false))
            }
            Formula::Lit(Literal::Cmp(_, l, r, _)) => {
                check_term(l, false)?;
                check_term(r, false)
            }
            Formula::Not(inner, _) => check_formula(inner),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().try_for_each(check_formula),
            Formula::Forall { set, body, .. } | Formula::Exists { set, body, .. } => {
                check_term(set, false)?;
                check_formula(body)
            }
        }
    }
    for clause in program.clauses() {
        for arg in &clause.head.args {
            if let HeadArg::Term(t) = arg {
                check_term(t, false)?;
            }
        }
        if let Some(body) = &clause.body {
            check_formula(body)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_syntax::parse_program;

    fn infer(src: &str, dialect: Dialect) -> Result<SortTable, CoreError> {
        infer_sorts(&parse_program(src).unwrap(), dialect)
    }

    #[test]
    fn infers_example_2_subset() {
        let t = infer("subset(X, Y) :- forall U in X: U in Y.", Dialect::Lps).unwrap();
        assert_eq!(
            t.signature("subset"),
            Some(&[SortAnn::Set, SortAnn::Set][..])
        );
    }

    #[test]
    fn infers_mixed_signature_from_unnest() {
        // s(X, Y) :- r(X, Ys), Y in Ys.  — r : (any, set), s : (any, any)
        let t = infer("s(X, Y) :- r(X, Ys), Y in Ys.", Dialect::Lps).unwrap();
        let r = t.signature("r").unwrap();
        assert_eq!(r[1], SortAnn::Set);
        // In LPS mode membership LHS is an atom.
        let s = t.signature("s").unwrap();
        assert_eq!(s[1], SortAnn::Atom);
    }

    #[test]
    fn declaration_pins_signature() {
        let t = infer("pred cost(atom, atom).\ncost(bolt, 2).", Dialect::Lps).unwrap();
        assert_eq!(
            t.signature("cost"),
            Some(&[SortAnn::Atom, SortAnn::Atom][..])
        );
    }

    #[test]
    fn conflict_is_error_in_lps_mode() {
        // p used at sort s (quantifier domain) and sort a (arith).
        let err = infer(
            "q(X) :- p(X), forall U in X: U = U.\nr(X) :- p(X), X < 3.",
            Dialect::Lps,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Sort { .. }), "{err}");
    }

    #[test]
    fn conflict_is_any_in_elps_mode() {
        let t = infer(
            "q(X) :- p(X), forall U in X: U = U.\nr(X) :- p(X), X < 3.",
            Dialect::Elps,
        )
        .unwrap();
        assert_eq!(t.signature("p"), Some(&[SortAnn::Any][..]));
    }

    #[test]
    fn set_literal_elements_must_be_atoms_in_lps() {
        let err = infer("p({{a}}).", Dialect::Lps).unwrap_err();
        assert!(matches!(err, CoreError::Sort { .. }));
        // Fine in ELPS.
        assert!(infer("p({{a}}).", Dialect::Elps).is_ok());
    }

    #[test]
    fn function_args_must_be_atoms_in_lps() {
        // f(X) with X a set (from the quantifier domain) — Example 8.
        let err = infer("p(Y) :- q(X), Y = f(X), forall U in X: r(U).", Dialect::Lps).unwrap_err();
        assert!(matches!(err, CoreError::Sort { .. }));
    }

    #[test]
    fn quantifier_binder_shadows_outer_variable() {
        // Outer U is an atom via cost; inner U ranges over X's elements.
        let t = infer("p(U, X) :- cost(U), forall U in X: q(U).", Dialect::Lps).unwrap();
        assert_eq!(t.signature("p").unwrap()[1], SortAnn::Set);
    }

    #[test]
    fn grouping_slot_is_a_set() {
        let t = infer("owns(P, <C>) :- car(P, C).", Dialect::StratifiedElps).unwrap();
        assert_eq!(t.signature("owns").unwrap()[1], SortAnn::Set);
    }

    #[test]
    fn arity_mismatch_reported() {
        let err = infer("p(a). q(X) :- p(X, X).", Dialect::Elps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
    }

    #[test]
    fn flat_set_check() {
        let ok = parse_program("p({a, b}).").unwrap();
        assert!(check_flat_sets(&ok).is_ok());
        let nested = parse_program("p({{a}}).").unwrap();
        assert!(check_flat_sets(&nested).is_err());
    }
}
