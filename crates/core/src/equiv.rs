//! Equivalence harness for the §6 translation theorems.
//!
//! §6 defines equivalence "relative only to the predicates that the
//! languages have in common". This module evaluates two databases and
//! compares the least models restricted to a chosen predicate list,
//! reporting any one-sided facts.

use lps_term::Value;

use crate::database::Database;
use crate::error::CoreError;

/// Disagreement report for one predicate.
#[derive(Clone, Debug, PartialEq)]
pub struct EquivReport {
    /// Predicate name.
    pub pred: String,
    /// Arity compared.
    pub arity: usize,
    /// Rows only in the left model.
    pub left_only: Vec<Vec<Value>>,
    /// Rows only in the right model.
    pub right_only: Vec<Vec<Value>>,
    /// Rows in both.
    pub common: usize,
}

impl EquivReport {
    /// Whether the two models agree on this predicate.
    pub fn agrees(&self) -> bool {
        self.left_only.is_empty() && self.right_only.is_empty()
    }
}

/// Evaluate both databases and compare them on `preds`
/// (`(name, arity)` pairs).
pub fn compare_on(
    left: &Database,
    right: &Database,
    preds: &[(&str, usize)],
) -> Result<Vec<EquivReport>, CoreError> {
    let lm = left.evaluate()?;
    let rm = right.evaluate()?;
    let mut reports = Vec::with_capacity(preds.len());
    for &(name, arity) in preds {
        let lrows = lm.extension_n(name, arity);
        let rrows = rm.extension_n(name, arity);
        let mut left_only = Vec::new();
        let mut right_only = Vec::new();
        let mut common = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        // Both sides are sorted (Model::extension_n sorts).
        while i < lrows.len() || j < rrows.len() {
            match (lrows.get(i), rrows.get(j)) {
                (Some(l), Some(r)) => match l.cmp(r) {
                    std::cmp::Ordering::Equal => {
                        common += 1;
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => {
                        left_only.push(l.clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        right_only.push(r.clone());
                        j += 1;
                    }
                },
                (Some(l), None) => {
                    left_only.push(l.clone());
                    i += 1;
                }
                (None, Some(r)) => {
                    right_only.push(r.clone());
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        reports.push(EquivReport {
            pred: name.to_owned(),
            arity,
            left_only,
            right_only,
            common,
        });
    }
    Ok(reports)
}

/// Assert-style helper: `Ok(())` if the models agree on every listed
/// predicate, otherwise an error naming the first disagreement.
pub fn assert_equivalent(
    left: &Database,
    right: &Database,
    preds: &[(&str, usize)],
) -> Result<Vec<EquivReport>, CoreError> {
    let reports = compare_on(left, right, preds)?;
    for r in &reports {
        if !r.agrees() {
            let detail = format!(
                "models disagree on `{}/{}`: {} left-only (e.g. {:?}), {} right-only (e.g. {:?})",
                r.pred,
                r.arity,
                r.left_only.len(),
                r.left_only.first(),
                r.right_only.len(),
                r.right_only.first(),
            );
            return Err(CoreError::invalid(lps_syntax::Span::default(), detail));
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;

    #[test]
    fn identical_programs_agree() {
        let mut a = Database::new(Dialect::Elps);
        a.load_str("e(x, y). t(A, B) :- e(A, B).").unwrap();
        let b = a.clone();
        let reports = assert_equivalent(&a, &b, &[("t", 2)]).unwrap();
        assert_eq!(reports[0].common, 1);
    }

    #[test]
    fn disagreement_is_reported() {
        let mut a = Database::new(Dialect::Elps);
        a.load_str("t(x, y).").unwrap();
        let mut b = Database::new(Dialect::Elps);
        b.load_str("t(x, z).").unwrap();
        let reports = compare_on(&a, &b, &[("t", 2)]).unwrap();
        assert!(!reports[0].agrees());
        assert_eq!(reports[0].left_only.len(), 1);
        assert_eq!(reports[0].right_only.len(), 1);
        assert!(assert_equivalent(&a, &b, &[("t", 2)]).is_err());
    }

    #[test]
    fn missing_predicate_counts_as_empty() {
        let mut a = Database::new(Dialect::Elps);
        a.load_str("t(x).").unwrap();
        let b = Database::new(Dialect::Elps);
        let reports = compare_on(&a, &b, &[("t", 1)]).unwrap();
        assert_eq!(reports[0].left_only.len(), 1);
        assert!(reports[0].right_only.is_empty());
    }
}
