//! Lowering: normalized surface clauses → engine rule IR.
//!
//! Expects clauses in the shape produced by
//! [`crate::transform::positive::normalize_program`]: bodies are
//! conjunctions of (possibly negated) literals plus at most one
//! restricted-universal group whose inner part is again literals.
//! Arithmetic expressions are flattened here into `add`/`sub`/`mul`
//! builtin literals with temporary variables.

use std::collections::HashMap;

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::{BodyLit, Builtin, Engine, GroupSpec, QuantGroup, Rule};
use lps_syntax::{ArithOp, Clause, CmpOp, Formula, HeadArg, Literal, Program, Term};

use crate::error::CoreError;
use crate::sorts::SortTable;
use crate::validate::is_special_pred;

/// Lower a normalized program into `engine`, registering predicates
/// and adding rules/facts.
pub fn load_program(engine: &mut Engine, program: &Program) -> Result<(), CoreError> {
    load_program_sorted(engine, program, None)
}

/// Lower with sort annotations from the two-sorted inference (§2.1):
/// engine-level universe enumeration then respects variable sorts.
///
/// Ground facts load through [`Engine::fact`] — the engine's EDB layer
/// — rather than as bodyless rules, so an engine session can reset or
/// extend its fact base without touching the compiled rule plans.
pub fn load_program_sorted(
    engine: &mut Engine,
    program: &Program,
    sorts: Option<&SortTable>,
) -> Result<(), CoreError> {
    for decl in program.decls() {
        engine.pred(&decl.name, decl.sorts.len());
    }
    for clause in program.clauses() {
        let rule = lower_clause_sorted(engine, clause, sorts)?;
        if rule.is_fact() {
            let tuple = rule
                .head_args
                .iter()
                .map(|p| match p {
                    Pattern::Ground(id) => *id,
                    _ => unreachable!("is_fact guarantees a ground head"),
                })
                .collect();
            engine.fact(rule.head, tuple)?;
        } else {
            engine.rule(rule)?;
        }
    }
    Ok(())
}

struct Lowering<'e> {
    engine: &'e mut Engine,
    vars: HashMap<String, VarId>,
    var_names: Vec<String>,
    temp_counter: usize,
}

impl Lowering<'_> {
    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = VarId(u32::try_from(self.var_names.len()).expect("too many variables"));
        self.vars.insert(name.to_owned(), v);
        self.var_names.push(name.to_owned());
        v
    }

    fn temp(&mut self) -> VarId {
        let name = format!("$t{}", self.temp_counter);
        self.temp_counter += 1;
        self.var(&name)
    }

    /// Lower a term to a pattern. Ground subterms intern eagerly.
    fn term(&mut self, t: &Term) -> Result<Pattern, CoreError> {
        match t {
            Term::Var(v, _) => Ok(Pattern::Var(self.var(v))),
            Term::Const(c, _) => Ok(Pattern::Ground(self.engine.store_mut().atom(c))),
            Term::Int(i, _) => Ok(Pattern::Ground(self.engine.store_mut().int(*i))),
            Term::App(f, args, _) => {
                let ps: Vec<Pattern> = args
                    .iter()
                    .map(|a| self.term(a))
                    .collect::<Result<_, _>>()?;
                if ps.iter().all(|p| matches!(p, Pattern::Ground(_))) {
                    let ids: Vec<_> = ps
                        .iter()
                        .map(|p| match p {
                            Pattern::Ground(id) => *id,
                            _ => unreachable!(),
                        })
                        .collect();
                    Ok(Pattern::Ground(self.engine.store_mut().app(f, ids)))
                } else {
                    let sym = self.engine.store_mut().symbols_mut().intern(f);
                    Ok(Pattern::App(sym, ps.into_boxed_slice()))
                }
            }
            Term::SetLit(elems, _) => {
                let ps: Vec<Pattern> = elems
                    .iter()
                    .map(|e| self.term(e))
                    .collect::<Result<_, _>>()?;
                if ps.iter().all(|p| matches!(p, Pattern::Ground(_))) {
                    let ids: Vec<_> = ps
                        .iter()
                        .map(|p| match p {
                            Pattern::Ground(id) => *id,
                            _ => unreachable!(),
                        })
                        .collect();
                    Ok(Pattern::Ground(self.engine.store_mut().set(ids)))
                } else {
                    Ok(Pattern::Set(ps.into_boxed_slice()))
                }
            }
            Term::BinOp(_, _, _, span) => Err(CoreError::invalid(
                *span,
                "arithmetic expression outside a comparison (internal: should have been \
                 rejected by validation)",
            )),
        }
    }

    /// Flatten an arithmetic expression into builtin literals plus a
    /// result pattern.
    fn arith(&mut self, t: &Term, lits: &mut Vec<BodyLit>) -> Result<Pattern, CoreError> {
        match t {
            Term::BinOp(op, l, r, _) => {
                let pl = self.arith(l, lits)?;
                let pr = self.arith(r, lits)?;
                let out = Pattern::Var(self.temp());
                let b = match op {
                    ArithOp::Add => Builtin::Add,
                    ArithOp::Sub => Builtin::Sub,
                    ArithOp::Mul => Builtin::Mul,
                };
                lits.push(BodyLit::Builtin(b, vec![pl, pr, out.clone()]));
                Ok(out)
            }
            other => self.term(other),
        }
    }

    /// Lower a comparison literal (possibly containing arithmetic).
    fn cmp(
        &mut self,
        op: CmpOp,
        lhs: &Term,
        rhs: &Term,
        negated: bool,
        lits: &mut Vec<BodyLit>,
    ) -> Result<(), CoreError> {
        // Negation folds into the operator.
        let op = if negated {
            match op {
                CmpOp::Eq => CmpOp::Ne,
                CmpOp::Ne => CmpOp::Eq,
                CmpOp::In => CmpOp::NotIn,
                CmpOp::NotIn => CmpOp::In,
                CmpOp::Lt => CmpOp::Ge,
                CmpOp::Le => CmpOp::Gt,
                CmpOp::Gt => CmpOp::Le,
                CmpOp::Ge => CmpOp::Lt,
            }
        } else {
            op
        };

        // Direct three-address form for `a ⊕ b = c` / `c = a ⊕ b`
        // where the other operands are arithmetic-free.
        if op == CmpOp::Eq {
            if let Term::BinOp(aop, a, b, _) = lhs {
                if !a.has_arith() && !b.has_arith() && !rhs.has_arith() {
                    let (pa, pb, pc) = (self.term(a)?, self.term(b)?, self.term(rhs)?);
                    lits.push(BodyLit::Builtin(arith_builtin(*aop), vec![pa, pb, pc]));
                    return Ok(());
                }
            }
            if let Term::BinOp(aop, a, b, _) = rhs {
                if !a.has_arith() && !b.has_arith() && !lhs.has_arith() {
                    let (pa, pb, pc) = (self.term(a)?, self.term(b)?, self.term(lhs)?);
                    lits.push(BodyLit::Builtin(arith_builtin(*aop), vec![pa, pb, pc]));
                    return Ok(());
                }
            }
        }

        let pl = self.arith(lhs, lits)?;
        let pr = self.arith(rhs, lits)?;
        let lit = match op {
            CmpOp::Eq => BodyLit::Builtin(Builtin::Eq, vec![pl, pr]),
            CmpOp::Ne => BodyLit::Builtin(Builtin::Ne, vec![pl, pr]),
            CmpOp::In => BodyLit::Builtin(Builtin::In, vec![pl, pr]),
            CmpOp::NotIn => BodyLit::Builtin(Builtin::NotIn, vec![pl, pr]),
            CmpOp::Lt => BodyLit::Builtin(Builtin::Lt, vec![pl, pr]),
            CmpOp::Le => BodyLit::Builtin(Builtin::Le, vec![pl, pr]),
            CmpOp::Gt => BodyLit::Builtin(Builtin::Lt, vec![pr, pl]),
            CmpOp::Ge => BodyLit::Builtin(Builtin::Le, vec![pr, pl]),
        };
        lits.push(lit);
        Ok(())
    }

    /// Lower one literal-shaped formula into body literals.
    fn literal(
        &mut self,
        f: &Formula,
        negated: bool,
        lits: &mut Vec<BodyLit>,
    ) -> Result<(), CoreError> {
        match f {
            Formula::Lit(Literal::Pred(name, args, span)) => {
                let ps: Vec<Pattern> = args
                    .iter()
                    .map(|a| self.term(a))
                    .collect::<Result<_, _>>()?;
                if let Some(b) = Builtin::from_pred_name(name, args.len()) {
                    if negated {
                        return Err(CoreError::invalid(
                            *span,
                            format!(
                                "negating builtin `{name}` is not supported; \
                                 express the complement directly"
                            ),
                        ));
                    }
                    lits.push(BodyLit::Builtin(b, ps));
                } else {
                    let pred = self.engine.pred(name, args.len());
                    lits.push(if negated {
                        BodyLit::Neg(pred, ps)
                    } else {
                        BodyLit::Pos(pred, ps)
                    });
                }
                Ok(())
            }
            Formula::Lit(Literal::Cmp(op, l, r, _)) => self.cmp(*op, l, r, negated, lits),
            Formula::Not(inner, span) => {
                if negated {
                    return Err(CoreError::invalid(*span, "double negation (internal)"));
                }
                self.literal(inner, true, lits)
            }
            other => Err(CoreError::invalid(
                span_of(other),
                "body not in normalized form (internal: run normalize_program first)",
            )),
        }
    }
}

fn arith_builtin(op: ArithOp) -> Builtin {
    match op {
        ArithOp::Add => Builtin::Add,
        ArithOp::Sub => Builtin::Sub,
        ArithOp::Mul => Builtin::Mul,
    }
}

fn span_of(f: &Formula) -> lps_syntax::Span {
    match f {
        Formula::Lit(l) => l.span(),
        Formula::Not(_, s) => *s,
        Formula::Forall { span, .. } | Formula::Exists { span, .. } => *span,
        Formula::And(fs) | Formula::Or(fs) => fs.first().map(span_of).unwrap_or_default(),
    }
}

/// Lower one normalized clause to a rule (untyped).
pub fn lower_clause(engine: &mut Engine, clause: &Clause) -> Result<Rule, CoreError> {
    lower_clause_sorted(engine, clause, None)
}

/// Lower one normalized clause, annotating variable sorts from the
/// predicate signature table when available.
pub fn lower_clause_sorted(
    engine: &mut Engine,
    clause: &Clause,
    sorts: Option<&SortTable>,
) -> Result<Rule, CoreError> {
    let mut lw = Lowering {
        engine,
        vars: HashMap::new(),
        var_names: Vec::new(),
        temp_counter: 0,
    };

    if is_special_pred(&clause.head.pred, clause.head.args.len()) {
        return Err(CoreError::invalid(
            clause.head.span,
            format!("cannot define special predicate `{}`", clause.head.pred),
        ));
    }

    // Head.
    let mut head_args = Vec::with_capacity(clause.head.args.len());
    let mut group = None;
    for (pos, arg) in clause.head.args.iter().enumerate() {
        match arg {
            HeadArg::Term(t) => head_args.push(lw.term(t)?),
            HeadArg::Group(v, span) => {
                if group.is_some() {
                    return Err(CoreError::invalid(*span, "multiple grouping slots"));
                }
                let var = lw.var(v);
                head_args.push(Pattern::Var(var));
                group = Some(GroupSpec { arg_pos: pos, var });
            }
        }
    }
    let head = lw.engine.pred(&clause.head.pred, clause.head.args.len());

    // Body.
    let mut outer: Vec<BodyLit> = Vec::new();
    let mut quant: Option<QuantGroup> = None;
    if let Some(body) = &clause.body {
        let conjuncts: Vec<&Formula> = match body {
            Formula::And(fs) => fs.iter().collect(),
            other => vec![other],
        };
        for f in conjuncts {
            match f {
                Formula::Forall { .. } => {
                    if quant.is_some() {
                        return Err(CoreError::invalid(
                            span_of(f),
                            "multiple quantifier groups (internal: normalize first)",
                        ));
                    }
                    // Collect the chain.
                    let mut binders = Vec::new();
                    let mut cur = f;
                    while let Formula::Forall { var, set, body, .. } = cur {
                        let slot = lw.var(var);
                        let dom = lw.term(set)?;
                        binders.push((slot, dom));
                        cur = body;
                    }
                    let inner_fs: Vec<&Formula> = match cur {
                        Formula::And(fs) => fs.iter().collect(),
                        other => vec![other],
                    };
                    let mut inner = Vec::new();
                    for g in inner_fs {
                        lw.literal(g, false, &mut inner)?;
                    }
                    quant = Some(QuantGroup { binders, inner });
                }
                other => lw.literal(other, false, &mut outer)?,
            }
        }
    }

    let num_vars = lw.var_names.len();
    let var_names = lw.var_names;
    let vars_map = lw.vars;
    let mut rule = Rule {
        head,
        head_args,
        group,
        outer,
        quant,
        num_vars,
        var_names,
        var_sorts: vec![None; num_vars],
    };
    annotate_var_sorts(&mut rule, clause, &vars_map, sorts);
    Ok(rule)
}

/// Fill `rule.var_sorts` from the clause's variable occurrences: a
/// variable used at a predicate position whose inferred signature is
/// `atom`/`set`, as a quantifier domain or membership right-hand side
/// (sort *s*), or as an integer-comparison operand (sort *a*) gets its
/// sort recorded. Conflicts (possible under lenient ELPS inference)
/// resolve to untyped.
fn annotate_var_sorts(
    rule: &mut Rule,
    clause: &Clause,
    vars_map: &HashMap<String, VarId>,
    sorts: Option<&SortTable>,
) {
    use lps_syntax::SortAnn;
    use lps_term::Sort;
    let Some(table) = sorts else { return };

    let mut pairs: Vec<(String, SortAnn)> = Vec::new();
    if let Some(sig) = table.signature(&clause.head.pred) {
        for (arg, s) in clause.head.args.iter().zip(sig) {
            if let HeadArg::Term(Term::Var(v, _)) = arg {
                pairs.push((v.clone(), *s));
            }
        }
    }
    if let Some(body) = &clause.body {
        collect_sort_pairs(body, table, &mut pairs);
    }

    for (name, ann) in pairs {
        let sort = match ann {
            SortAnn::Atom => Sort::Atom,
            SortAnn::Set => Sort::Set,
            SortAnn::Any => continue,
        };
        if let Some(&v) = vars_map.get(&name) {
            match &mut rule.var_sorts[v.index()] {
                slot @ None => *slot = Some(sort),
                Some(existing) if *existing == sort => {}
                slot => *slot = None, // conflict: untyped
            }
        }
    }
}

fn collect_sort_pairs(
    f: &Formula,
    table: &SortTable,
    out: &mut Vec<(String, lps_syntax::SortAnn)>,
) {
    use lps_syntax::SortAnn;
    match f {
        Formula::Lit(Literal::Pred(name, args, _)) => {
            if let Some(sig) = table.signature(name) {
                for (arg, s) in args.iter().zip(sig) {
                    if let Term::Var(v, _) = arg {
                        out.push((v.clone(), *s));
                    }
                }
            }
        }
        Formula::Lit(Literal::Cmp(op, l, r, _)) => {
            if matches!(op, CmpOp::In | CmpOp::NotIn) {
                if let Term::Var(v, _) = r {
                    out.push((v.clone(), SortAnn::Set));
                }
            }
            if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                for t in [l, r] {
                    if let Term::Var(v, _) = t {
                        out.push((v.clone(), SortAnn::Atom));
                    }
                }
            }
        }
        Formula::Not(inner, _) => collect_sort_pairs(inner, table, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for f in fs {
                collect_sort_pairs(f, table, out);
            }
        }
        Formula::Forall { set, body, .. } | Formula::Exists { set, body, .. } => {
            if let Term::Var(v, _) = set {
                out.push((v.clone(), SortAnn::Set));
            }
            collect_sort_pairs(body, table, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_engine::EvalConfig;
    use lps_syntax::parse_program;

    fn lower_src(src: &str) -> (Engine, Vec<Rule>) {
        let program = parse_program(src).unwrap();
        let mut engine = Engine::new(EvalConfig::default());
        let rules: Vec<Rule> = program
            .clauses()
            .map(|c| lower_clause(&mut engine, c).unwrap())
            .collect();
        (engine, rules)
    }

    #[test]
    fn lowers_fact_with_ground_set() {
        let (engine, rules) = lower_src("parts(widget, {bolt, nut}).");
        assert_eq!(rules.len(), 1);
        assert!(rules[0].is_fact());
        let _ = engine;
    }

    #[test]
    fn lowers_builtin_call_position() {
        let (_, rules) = lower_src("p(Z) :- q(X, Y), union(X, Y, Z).");
        match &rules[0].outer[1] {
            BodyLit::Builtin(Builtin::Union, args) => assert_eq!(args.len(), 3),
            other => panic!("expected union builtin, got {other:?}"),
        }
    }

    #[test]
    fn lowers_quantifier_chain_into_one_group() {
        let (_, rules) =
            lower_src("disj(X, Y) :- pair(X, Y), forall U in X: forall V in Y: U != V.");
        let q = rules[0].quant.as_ref().expect("quant group");
        assert_eq!(q.binders.len(), 2);
        assert_eq!(q.inner.len(), 1);
        assert_eq!(rules[0].outer.len(), 1);
    }

    #[test]
    fn lowers_arithmetic_three_address_form() {
        let (_, rules) = lower_src("s(K) :- a(M), b(N), M + N = K.");
        // The comparison lowers to a single add builtin, no temps.
        let adds: Vec<_> = rules[0]
            .outer
            .iter()
            .filter(|l| matches!(l, BodyLit::Builtin(Builtin::Add, _)))
            .collect();
        assert_eq!(adds.len(), 1);
        assert_eq!(rules[0].num_vars, 3);
    }

    #[test]
    fn lowers_nested_arithmetic_with_temps() {
        let (_, rules) = lower_src("s(K) :- a(M), K = M + 2 * M - 1.");
        let builtins = rules[0]
            .outer
            .iter()
            .filter(|l| matches!(l, BodyLit::Builtin(..)))
            .count();
        // mul, add, sub (the last fused with = K) — at least 3 builtins.
        assert!(builtins >= 3, "got {builtins}");
    }

    #[test]
    fn negated_comparison_flips_operator() {
        let (_, rules) = lower_src("p(X) :- q(X, Y), not X = Y.");
        assert!(rules[0]
            .outer
            .iter()
            .any(|l| matches!(l, BodyLit::Builtin(Builtin::Ne, _))));
        let (_, rules) = lower_src("p(X) :- q(X, Y), not X < Y.");
        // ¬(X < Y) ⇒ Y ≤ X.
        assert!(rules[0]
            .outer
            .iter()
            .any(|l| matches!(l, BodyLit::Builtin(Builtin::Le, _))));
    }

    #[test]
    fn grouping_head_produces_spec() {
        let (_, rules) = lower_src("owns(P, <C>) :- car(P, C).");
        let g = rules[0].group.as_ref().expect("group spec");
        assert_eq!(g.arg_pos, 1);
    }

    #[test]
    fn special_head_rejected() {
        let program = parse_program("union(X, Y, Z) :- p(X, Y, Z).").unwrap();
        let mut engine = Engine::new(EvalConfig::default());
        let err = lower_clause(&mut engine, program.clauses().next().unwrap()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
    }

    #[test]
    fn negating_builtin_pred_name_is_rejected() {
        let program = parse_program("p(X) :- q(X, Y, Z), not union(X, Y, Z).").unwrap();
        let mut engine = Engine::new(EvalConfig::default());
        let err = lower_clause(&mut engine, program.clauses().next().unwrap()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
    }

    #[test]
    fn end_to_end_via_engine() {
        let program = parse_program(
            "edge(a, b). edge(b, c).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let mut engine = Engine::new(EvalConfig::default());
        load_program(&mut engine, &program).unwrap();
        engine.run().unwrap();
        let path = engine.lookup_pred("path", 2).unwrap();
        assert_eq!(engine.tuples(path).count(), 3);
    }
}
