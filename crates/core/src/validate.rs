//! Clause validation per Definition 5 and the dialect restrictions.
//!
//! * Heads must be **non-special** atomic formulas: not `=`, `∈`, nor
//!   any builtin relation name (`union`, `scons`, …). The paper
//!   requires this "since otherwise we could write a clause that
//!   redefines equality or membership".
//! * `PureLps` bodies must be a restricted-universal prefix over a
//!   conjunction of atomic formulas (Definition 5 exactly).
//! * Negation and grouping require the `StratifiedElps` dialect.
//! * Non-nesting dialects reject nested set literals (the sort checker
//!   handles the variable-driven cases).
//! * Arithmetic expressions may appear only inside comparisons.

use lps_engine::Builtin;
use lps_syntax::{Clause, Formula, HeadArg, Literal, Program, Term};

use crate::dialect::Dialect;
use crate::error::CoreError;
use crate::sorts::check_flat_sets;

/// Names that may not appear as clause heads.
pub fn is_special_pred(name: &str, arity: usize) -> bool {
    Builtin::from_pred_name(name, arity).is_some()
}

/// Validate a whole program under `dialect`.
pub fn validate_program(program: &Program, dialect: Dialect) -> Result<(), CoreError> {
    for clause in program.clauses() {
        validate_clause(clause, dialect)?;
    }
    if !dialect.allows_nesting() {
        check_flat_sets(program)?;
    }
    Ok(())
}

/// Validate one clause under `dialect`.
pub fn validate_clause(clause: &Clause, dialect: Dialect) -> Result<(), CoreError> {
    // Head checks.
    if is_special_pred(&clause.head.pred, clause.head.args.len()) {
        return Err(CoreError::invalid(
            clause.head.span,
            format!(
                "`{}` is a special (builtin) predicate and cannot be redefined (Definition 5)",
                clause.head.pred
            ),
        ));
    }
    let group_slots = clause
        .head
        .args
        .iter()
        .filter(|a| matches!(a, HeadArg::Group(..)))
        .count();
    if group_slots > 0 && !dialect.allows_negation() {
        return Err(CoreError::invalid(
            clause.head.span,
            "grouping heads require the StratifiedElps dialect (Definition 14 / §6)",
        ));
    }
    if group_slots > 1 {
        return Err(CoreError::invalid(
            clause.head.span,
            "at most one grouping slot per head",
        ));
    }
    for arg in &clause.head.args {
        if let HeadArg::Term(t) = arg {
            if t.has_arith() {
                return Err(CoreError::invalid(
                    t.span(),
                    "arithmetic expressions are only allowed inside comparisons",
                ));
            }
        }
    }
    if group_slots == 1 && clause.body.is_none() {
        return Err(CoreError::invalid(
            clause.head.span,
            "a grouping head requires a body to group over",
        ));
    }

    // Body checks.
    if let Some(body) = &clause.body {
        check_formula(body, dialect)?;
        if !dialect.allows_positive_bodies() && !is_pure_lps_body(body) {
            return Err(CoreError::invalid(
                clause.span,
                "PureLps bodies must be a universal-quantifier prefix over a conjunction \
                 of atomic formulas (Definition 5); use the Lps dialect for positive bodies",
            ));
        }
    }
    Ok(())
}

fn check_formula(f: &Formula, dialect: Dialect) -> Result<(), CoreError> {
    match f {
        Formula::Lit(lit) => check_literal(lit),
        Formula::Not(inner, span) => {
            if !dialect.allows_negation() {
                return Err(CoreError::invalid(
                    *span,
                    "negation requires the StratifiedElps dialect (§4.2)",
                ));
            }
            check_formula(inner, dialect)
        }
        Formula::And(fs) | Formula::Or(fs) => fs.iter().try_for_each(|f| check_formula(f, dialect)),
        Formula::Forall { set, body, .. } | Formula::Exists { set, body, .. } => {
            if set.has_arith() {
                return Err(CoreError::invalid(
                    set.span(),
                    "arithmetic expressions are only allowed inside comparisons",
                ));
            }
            check_formula(body, dialect)
        }
    }
}

fn check_literal(lit: &Literal) -> Result<(), CoreError> {
    match lit {
        Literal::Pred(_, args, _) => {
            for a in args {
                if a.has_arith() {
                    return Err(CoreError::invalid(
                        a.span(),
                        "arithmetic expressions are only allowed inside comparisons",
                    ));
                }
            }
            Ok(())
        }
        Literal::Cmp(..) => Ok(()),
    }
}

/// Is the body already in Definition-5 form: `(∀x₁∈X₁)…(∀xₙ∈Xₙ)(B₁ ∧ …
/// ∧ Bₖ)` with the `Bᵢ` atomic?
pub fn is_pure_lps_body(body: &Formula) -> bool {
    fn conj_of_atoms(f: &Formula) -> bool {
        match f {
            Formula::Lit(_) => true,
            Formula::And(fs) => fs.iter().all(|f| matches!(f, Formula::Lit(_))),
            _ => false,
        }
    }
    // Strip the quantifier prefix. Quantifier domains must be variables
    // (Definition 5: "each Xᵢ is a variable of sort s").
    let mut cur = body;
    while let Formula::Forall { set, body, .. } = cur {
        if !matches!(set, Term::Var(..)) {
            return false;
        }
        cur = body;
    }
    conj_of_atoms(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_syntax::{parse_clause, parse_program};

    fn check(src: &str, dialect: Dialect) -> Result<(), CoreError> {
        validate_program(&parse_program(src).unwrap(), dialect)
    }

    #[test]
    fn special_heads_are_rejected() {
        for src in [
            "union(X, Y, Z) :- p(X, Y, Z).",
            "scons(X, Y, Z) :- p(X, Y, Z).",
            "card(X, N) :- p(X, N).",
        ] {
            let err = check(src, Dialect::Elps).unwrap_err();
            assert!(matches!(err, CoreError::InvalidClause { .. }), "{src}");
        }
        // `union/2` is not special — arity matters.
        assert!(check("union(X, Y) :- p(X, Y).", Dialect::Elps).is_ok());
    }

    #[test]
    fn pure_lps_accepts_definition_5_shape() {
        assert!(check(
            "disj(X, Y) :- forall U in X, forall V in Y: U != V.",
            Dialect::PureLps
        )
        .is_ok());
        assert!(check("p(X) :- q(X), r(X).", Dialect::PureLps).is_ok());
        assert!(check("p(a).", Dialect::PureLps).is_ok());
    }

    #[test]
    fn pure_lps_rejects_disjunction_and_existentials() {
        let err = check("p(X) :- q(X) ; r(X).", Dialect::PureLps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
        let err = check("p(X) :- exists U in X: q(U).", Dialect::PureLps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
        // Quantifier not in prefix position.
        let err = check("p(X) :- q(X), forall U in X: r(U).", Dialect::PureLps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
        // All are fine in Lps.
        assert!(check("p(X) :- q(X) ; r(X).", Dialect::Lps).is_ok());
        assert!(check("p(X) :- q(X), forall U in X: r(U).", Dialect::Lps).is_ok());
    }

    #[test]
    fn negation_needs_stratified_dialect() {
        let err = check("p(X) :- q(X), not r(X).", Dialect::Elps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
        assert!(check("p(X) :- q(X), not r(X).", Dialect::StratifiedElps).is_ok());
    }

    #[test]
    fn grouping_needs_stratified_dialect() {
        let err = check("owns(P, <C>) :- car(P, C).", Dialect::Elps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
        assert!(check("owns(P, <C>) :- car(P, C).", Dialect::StratifiedElps).is_ok());
    }

    #[test]
    fn at_most_one_grouping_slot() {
        let err = check("p(<X>, <Y>) :- q(X, Y).", Dialect::StratifiedElps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
    }

    #[test]
    fn grouping_fact_is_rejected() {
        let err = check("p(<X>).", Dialect::StratifiedElps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
    }

    #[test]
    fn arithmetic_restricted_to_comparisons() {
        let err = check("p(X + 1) :- q(X).", Dialect::Elps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
        let err = check("p(Y) :- q(X + 1, Y).", Dialect::Elps).unwrap_err();
        assert!(matches!(err, CoreError::InvalidClause { .. }));
        assert!(check("p(Y) :- q(X), Y = X + 1.", Dialect::Elps).is_ok());
    }

    #[test]
    fn nested_sets_rejected_without_elps() {
        let err = check("p({{a}}).", Dialect::Lps).unwrap_err();
        assert!(matches!(err, CoreError::Sort { .. }));
        assert!(check("p({{a}}).", Dialect::Elps).is_ok());
    }

    #[test]
    fn pure_body_recognizer() {
        let c = parse_clause("p(X) :- forall U in X: q(U).").unwrap();
        assert!(is_pure_lps_body(c.body.as_ref().unwrap()));
        let c = parse_clause("p(X) :- forall U in X: (q(U), r(U)).").unwrap();
        assert!(is_pure_lps_body(c.body.as_ref().unwrap()));
        let c = parse_clause("p(X) :- forall U in X: (q(U) ; r(U)).").unwrap();
        assert!(!is_pure_lps_body(c.body.as_ref().unwrap()));
        // Domain must be a variable in Definition 5.
        let c = parse_clause("p(X) :- forall U in {a, b}: q(U).").unwrap();
        assert!(!is_pure_lps_body(c.body.as_ref().unwrap()));
    }
}
