//! High-level API: parse → validate → sort-check → compile (Theorem 6)
//! → lower → evaluate → query.

use lps_engine::{Engine, EvalConfig, EvalStats};
use lps_syntax::{parse_program, Clause, HeadArg, HeadAtom, Item, Program, Span, Term};

use crate::dialect::Dialect;
use crate::error::CoreError;
use crate::lower::load_program_sorted;
use crate::sorts::{infer_sorts, SortTable};
use crate::transform::magic::{QueryAnswers, QueryAnswersRef};
use crate::transform::positive::normalize_program;
use crate::validate::validate_program;

pub use lps_term::Value;

/// A logic-programming-with-sets database: program text plus facts,
/// evaluated on demand.
///
/// ```
/// use lps_core::{Database, Dialect, Value};
///
/// let mut db = Database::new(Dialect::Lps);
/// db.load_str(
///     "parts(widget, {bolt, nut, gear}).
///      has_part(X, P) :- parts(X, Ps), P in Ps.",
/// ).unwrap();
/// let model = db.evaluate().unwrap();
/// let rows = model.extension("has_part");
/// assert_eq!(rows.len(), 3);
/// assert!(rows.contains(&vec![Value::atom("widget"), Value::atom("bolt")]));
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    dialect: Dialect,
    config: EvalConfig,
    program: Program,
}

impl Database {
    /// Empty database in the given dialect with default evaluation
    /// settings.
    pub fn new(dialect: Dialect) -> Self {
        Database {
            dialect,
            config: EvalConfig::default(),
            program: Program { items: Vec::new() },
        }
    }

    /// Empty database with explicit evaluation settings.
    pub fn with_config(dialect: Dialect, config: EvalConfig) -> Self {
        Database {
            dialect,
            config,
            program: Program { items: Vec::new() },
        }
    }

    /// The dialect this database enforces.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Evaluation settings (mutable until [`Database::evaluate`]).
    pub fn config_mut(&mut self) -> &mut EvalConfig {
        &mut self.config
    }

    /// Parse and append program text (declarations, facts, rules).
    pub fn load_str(&mut self, src: &str) -> Result<&mut Self, CoreError> {
        let parsed = parse_program(src)?;
        self.program.items.extend(parsed.items);
        Ok(self)
    }

    /// Append an already-parsed program.
    pub fn load_program(&mut self, program: Program) -> &mut Self {
        self.program.items.extend(program.items);
        self
    }

    /// Append one ground fact built from owned values.
    pub fn add_fact(&mut self, pred: &str, args: &[Value]) -> &mut Self {
        let head = HeadAtom {
            pred: pred.to_owned(),
            args: args
                .iter()
                .map(|v| HeadArg::Term(value_to_term(v)))
                .collect(),
            span: Span::default(),
        };
        self.program.items.push(Item::Clause(Clause {
            head,
            body: None,
            span: Span::default(),
        }));
        self
    }

    /// The accumulated source program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Validate and sort-check without evaluating.
    pub fn check(&self) -> Result<SortTable, CoreError> {
        validate_program(&self.program, self.dialect)?;
        infer_sorts(&self.program, self.dialect)
    }

    /// The Theorem-6-normalized program that will actually be lowered.
    pub fn normalized(&self) -> Result<Program, CoreError> {
        self.check()?;
        normalize_program(&self.program)
    }

    /// Validate, compile, evaluate to the least model. The returned
    /// [`Model`] owns a live engine session: facts can be appended with
    /// [`Model::add_fact`] and reconciled incrementally with
    /// [`Model::update`] instead of re-evaluating from scratch.
    pub fn evaluate(&self) -> Result<Model, CoreError> {
        let mut model = self.session()?;
        model.engine.run()?;
        Ok(model)
    }

    /// Validate, compile, and load the program *without* materializing
    /// the least model. The returned session answers point and
    /// conjunctive queries demand-driven ([`Model::query`],
    /// [`Model::query_str`]): the engine magic-rewrites the reachable
    /// rules for the query's binding pattern and derives only what the
    /// bindings can reach, caching the specialized plan per adornment
    /// (conjunctive goals per shape). Demand spaces are *retained*
    /// between queries: a repeated query is a pure read, and a new
    /// constant — or facts added via [`Model::add_fact`] in between —
    /// continues the fixpoint incrementally from the retained
    /// relations, so a long query stream costs O(new demand) per
    /// query, not O(reach). Anything that needs the full model
    /// ([`Model::extension`], [`Model::update`], a non-monotone
    /// query) materializes it on first use, after which queries read
    /// the maintained model.
    pub fn session(&self) -> Result<Model, CoreError> {
        let normalized = self.normalized()?;
        // Re-infer sorts over the *normalized* program so auxiliary
        // predicates introduced by the Theorem-6 compiler carry sort
        // information too; universe enumeration in the engine respects
        // it (lenient inference: never fails here).
        let sorts = infer_sorts(&normalized, crate::Dialect::StratifiedElps).ok();
        let mut engine = Engine::new(self.config);
        load_program_sorted(&mut engine, &normalized, sorts.as_ref())?;
        Ok(Model { engine })
    }
}

fn value_to_term(v: &Value) -> Term {
    match v {
        Value::Atom(a) => Term::Const(a.clone(), Span::default()),
        Value::Int(i) => Term::Int(*i, Span::default()),
        Value::App(f, args) => Term::App(
            f.clone(),
            args.iter().map(value_to_term).collect(),
            Span::default(),
        ),
        Value::Set(elems) => {
            Term::SetLit(elems.iter().map(value_to_term).collect(), Span::default())
        }
    }
}

/// The least (stratified-perfect) model of a database: queryable, and
/// *maintainable* — it owns the engine session, so facts added after
/// evaluation are folded in by [`Model::update`] via the engine's
/// incremental path rather than a from-scratch recompute.
#[derive(Debug)]
pub struct Model {
    engine: Engine,
}

impl Model {
    /// Evaluation statistics accumulated over the session (`T_P`
    /// rounds, facts derived, incremental runs, …): the initial
    /// evaluation plus every [`Model::update`] since.
    pub fn stats(&self) -> EvalStats {
        self.engine.cumulative_stats()
    }

    /// Statistics of the most recent evaluation or update pass alone.
    pub fn last_stats(&self) -> EvalStats {
        self.engine.stats()
    }

    /// Direct access to the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access (interning query terms).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Queue one ground fact into the live session. The model stays on
    /// its previous fixpoint until [`Model::update`] reconciles; use
    /// [`Model::needs_update`] to check. Unknown predicates register on
    /// the fly. Note this bypasses dialect validation — the fact is
    /// ground by construction, which every dialect admits.
    pub fn add_fact(&mut self, pred: &str, args: &[Value]) -> Result<(), CoreError> {
        let id = self.engine.pred(pred, args.len());
        self.engine.fact_values(id, args)?;
        Ok(())
    }

    /// Re-reach the least model after queued fact additions: seeds the
    /// engine's semi-naive deltas and re-runs from the lowest affected
    /// stratum, reusing the retained relations (`stats().
    /// incremental_runs` counts the passes that avoided a recompute).
    /// A no-op on a clean model.
    pub fn update(&mut self) -> Result<EvalStats, CoreError> {
        Ok(self.engine.update()?)
    }

    /// Whether queries would see a stale fixpoint until
    /// [`Model::update`] (or a reset dropped the materialization).
    pub fn needs_update(&self) -> bool {
        self.engine.state() != lps_engine::EngineState::Materialized
    }

    /// Drop all facts while keeping the rules and their compiled
    /// *batch* plans — the session returns to the prepared state, so
    /// facts added afterwards evaluate without restratifying or
    /// recompiling. Cached demand plans are evicted (their retained
    /// spaces are meaningless without the facts) and their relation
    /// slots reclaimed, so sessions that alternate resets and queries
    /// do not accumulate demand-space memory.
    pub fn reset_facts(&mut self) {
        self.engine.reset_facts();
    }

    /// Demand-driven point query: answer `pred(args…)` with `Some` as
    /// bound and `None` as free positions, *without* materializing the
    /// full model when the session has none (see
    /// [`Database::session`]). Unknown predicates register on the fly
    /// and answer with no rows. On a materialized session this reads
    /// the maintained model (reconciling pending facts first).
    ///
    /// ```
    /// use lps_core::{Database, Dialect, Value};
    /// use lps_engine::QueryPath;
    ///
    /// let mut db = Database::new(Dialect::Elps);
    /// db.load_str(
    ///     "e(a, b). e(b, c).
    ///      t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
    /// ).unwrap();
    /// let mut session = db.session().unwrap();
    /// let ans = session
    ///     .query("t", &[Some(Value::atom("b")), None])
    ///     .unwrap();
    /// assert_eq!(ans.path, QueryPath::Demand);
    /// assert_eq!(ans.rows, vec![vec![Value::atom("b"), Value::atom("c")]]);
    /// ```
    pub fn query(&mut self, pred: &str, args: &[Option<Value>]) -> Result<QueryAnswers, CoreError> {
        Ok(self.query_view(pred, args)?.to_owned())
    }

    /// [`Model::query`] returning the borrowed, interned-row
    /// [`QueryAnswersRef`] view: rows stay as engine term ids next to
    /// the session's store, so callers that only count rows, test
    /// membership, or render selectively skip the per-atom `Value`
    /// (and `String`) construction of the owned form. The owned API is
    /// a [`QueryAnswersRef::to_owned`] wrapper over this one.
    pub fn query_view(
        &mut self,
        pred: &str,
        args: &[Option<Value>],
    ) -> Result<QueryAnswersRef<'_>, CoreError> {
        let id = self.engine.pred(pred, args.len());
        let interned: Vec<Option<lps_term::TermId>> = args
            .iter()
            .map(|a| a.as_ref().map(|v| v.intern(self.engine.store_mut())))
            .collect();
        let res = self.engine.query(id, &interned)?;
        Ok(QueryAnswersRef::from_result(
            self.engine.store(),
            Vec::new(),
            res,
        ))
    }

    /// Explain how the point query `pred(args…)` would be answered —
    /// chosen adornment, SIPS policy, and per-rule join order — without
    /// running it. The compiled plan is cached, so a subsequent
    /// [`Model::query`] with the same shape reuses it (`:explain` in
    /// `lpsi`).
    pub fn explain(&mut self, pred: &str, args: &[Option<Value>]) -> Result<String, CoreError> {
        let id = self.engine.pred(pred, args.len());
        let interned: Vec<Option<lps_term::TermId>> = args
            .iter()
            .map(|a| a.as_ref().map(|v| v.intern(self.engine.store_mut())))
            .collect();
        Ok(self.engine.explain(id, &interned)?)
    }

    /// Demand-driven conjunctive query from surface syntax: the goal
    /// text (ending with `.`) is compiled into a temporary query rule
    /// ([`crate::transform::magic::compile_query`]) and evaluated
    /// through the engine's magic-set pipeline. The answer columns are
    /// the goal's free variables in first-appearance order; a fully
    /// ground goal answers with one empty row ("yes") or none ("no").
    pub fn query_str(&mut self, body: &str) -> Result<QueryAnswers, CoreError> {
        Ok(self.query_str_view(body)?.to_owned())
    }

    /// [`Model::query_str`] returning the borrowed, interned-row
    /// [`QueryAnswersRef`] view (see [`Model::query_view`]).
    pub fn query_str_view(&mut self, body: &str) -> Result<QueryAnswersRef<'_>, CoreError> {
        let goal = crate::transform::magic::compile_query(&mut self.engine, body)?;
        let res = self.engine.query_rule(goal.rule)?;
        Ok(QueryAnswersRef::from_result(
            self.engine.store(),
            goal.columns,
            res,
        ))
    }

    /// Does `pred(args…)` hold in the least model?
    pub fn holds(&mut self, pred: &str, args: &[Value]) -> bool {
        let Some(id) = self.engine.lookup_pred(pred, args.len()) else {
            return false;
        };
        let tuple: Vec<_> = args
            .iter()
            .map(|v| v.intern(self.engine.store_mut()))
            .collect();
        self.engine.holds(id, &tuple)
    }

    /// The full extension of a predicate, as sorted owned rows. The
    /// arity is resolved by name; if several arities exist, use
    /// [`Model::extension_n`].
    pub fn extension(&self, pred: &str) -> Vec<Vec<Value>> {
        for arity in 0..=32 {
            if let Some(id) = self.engine.lookup_pred(pred, arity) {
                return self.engine.extension(id);
            }
        }
        Vec::new()
    }

    /// The extension of `pred/arity`.
    pub fn extension_n(&self, pred: &str, arity: usize) -> Vec<Vec<Value>> {
        self.engine
            .lookup_pred(pred, arity)
            .map(|id| self.engine.extension(id))
            .unwrap_or_default()
    }

    /// Number of facts for a predicate (O(1) via the borrowing row
    /// iterator).
    pub fn count(&self, pred: &str, arity: usize) -> usize {
        self.engine
            .lookup_pred(pred, arity)
            .map(|id| self.engine.rows(id).len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_engine::SetUniverse;

    #[test]
    fn example_1_and_2_disj_subset() {
        let mut db = Database::new(Dialect::Lps);
        db.load_str(
            "pair({a, b}, {c}).
             pair({a, b}, {b, c}).
             pair({}, {a}).
             disj(X, Y) :- pair(X, Y), forall U in X, forall V in Y: U != V.
             sub(X, Y) :- pair(X, Y), forall U in X: U in Y.",
        )
        .unwrap();
        let mut m = db.evaluate().unwrap();
        let ab = Value::set([Value::atom("a"), Value::atom("b")]);
        let c = Value::set([Value::atom("c")]);
        let bc = Value::set([Value::atom("b"), Value::atom("c")]);
        let empty = Value::empty_set();
        let a = Value::set([Value::atom("a")]);
        assert!(m.holds("disj", &[ab.clone(), c.clone()]));
        assert!(!m.holds("disj", &[ab.clone(), bc.clone()]));
        assert!(m.holds("disj", &[empty.clone(), a.clone()]));
        assert!(m.holds("sub", &[empty, a]));
        assert!(!m.holds("sub", &[ab, c]));
    }

    #[test]
    fn example_3_union_with_disjunction_body() {
        // The Theorem-6 path: disjunction under a quantifier, checked
        // against candidate triples provided by a driver relation.
        let mut db = Database::new(Dialect::Lps);
        db.load_str(
            "cand({a}, {b}, {a, b}).
             cand({a}, {b}, {a, b, c}).
             cand({a}, {}, {a}).
             u(X, Y, Z) :- cand(X, Y, Z),
                 (forall U in X: U in Z),
                 (forall V in Y: V in Z),
                 (forall W in Z: (W in X ; W in Y)).",
        )
        .unwrap();
        let mut m = db.evaluate().unwrap();
        let a = Value::set([Value::atom("a")]);
        let b = Value::set([Value::atom("b")]);
        let ab = Value::set([Value::atom("a"), Value::atom("b")]);
        let abc = Value::set([Value::atom("a"), Value::atom("b"), Value::atom("c")]);
        let empty = Value::empty_set();
        assert!(m.holds("u", &[a.clone(), b.clone(), ab]));
        assert!(!m.holds("u", &[a.clone(), b, abc]));
        assert!(m.holds("u", &[a.clone(), empty, a]));
    }

    #[test]
    fn theorem_8_shape_requires_policy() {
        // b(X) :- forall U in X: a(U). — X only under the quantifier.
        let mut db = Database::new(Dialect::Lps);
        db.load_str("a(c1). b(X) :- forall U in X: a(U).").unwrap();
        assert!(db.evaluate().is_err(), "rejected under default policy");

        let mut db = Database::with_config(
            Dialect::Lps,
            EvalConfig {
                set_universe: SetUniverse::ActiveSubsets { max_card: 2 },
                ..EvalConfig::default()
            },
        );
        db.load_str("a(c1). a(c2). item(c3). b(X) :- forall U in X: a(U).")
            .unwrap();
        let mut m = db.evaluate().unwrap();
        // b holds for every subset of {x : a(x)} — Theorem 8's point:
        // the defining clause admits all subsets, not just the full set.
        let c1 = Value::atom("c1");
        let c2 = Value::atom("c2");
        assert!(m.holds("b", &[Value::empty_set()]));
        assert!(m.holds("b", &[Value::set([c1.clone()])]));
        assert!(m.holds("b", &[Value::set([c2.clone()])]));
        assert!(m.holds("b", &[Value::set([c1.clone(), c2.clone()])]));
        assert!(!m.holds("b", &[Value::set([Value::atom("c3")])]));
        assert!(!m.holds("b", &[Value::set([c1, Value::atom("c3")])]));
    }

    #[test]
    fn add_fact_api() {
        let mut db = Database::new(Dialect::Elps);
        db.add_fact(
            "owns",
            &[
                Value::atom("alice"),
                Value::set([Value::atom("car"), Value::int(3)]),
            ],
        );
        db.load_str("rich(P) :- owns(P, S), card(S, N), N >= 2.")
            .unwrap();
        let mut m = db.evaluate().unwrap();
        assert!(m.holds("rich", &[Value::atom("alice")]));
    }

    #[test]
    fn stats_are_exposed() {
        let mut db = Database::new(Dialect::Elps);
        db.load_str("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).")
            .unwrap();
        let m = db.evaluate().unwrap();
        assert!(m.stats().facts_derived >= 5);
        assert!(m.stats().iterations >= 2);
        assert_eq!(m.count("t", 2), 3);
    }

    #[test]
    fn query_view_matches_owned_answers() {
        let mut db = Database::new(Dialect::Elps);
        db.load_str("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).")
            .unwrap();
        let mut session = db.session().unwrap();
        let owned = session.query("t", &[Some(Value::atom("a")), None]).unwrap();
        let view = session
            .query_view("t", &[Some(Value::atom("a")), None])
            .unwrap();
        assert_eq!(view.len(), 2);
        assert_eq!(view.to_owned().rows, owned.rows);
        // Rows stay interned: lifting one on demand round-trips.
        let lifted: Vec<Vec<Value>> = view.iter().map(|r| view.value_row(r)).collect();
        assert!(lifted.contains(&vec![Value::atom("a"), Value::atom("c")]));

        let owned = session.query_str("t(a, X), e(X, Y).").unwrap();
        let view = session.query_str_view("t(a, X), e(X, Y).").unwrap();
        assert_eq!(view.columns, vec!["X", "Y"]);
        assert_eq!(view.to_owned().rows, owned.rows);
    }

    #[test]
    fn model_add_fact_then_update_is_incremental() {
        let mut db = Database::new(Dialect::Elps);
        db.load_str("e(a, b). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).")
            .unwrap();
        let mut m = db.evaluate().unwrap();
        assert_eq!(m.count("t", 2), 1);
        m.add_fact("e", &[Value::atom("b"), Value::atom("c")])
            .unwrap();
        assert!(m.needs_update());
        let stats = m.update().unwrap();
        assert!(!m.needs_update());
        assert_eq!(stats.incremental_runs, 1);
        assert_eq!(stats.delta_seed_facts, 1);
        assert_eq!(m.count("t", 2), 3);
        // …and agrees with a from-scratch evaluation of the grown DB.
        let mut grown = db.clone();
        grown.add_fact("e", &[Value::atom("b"), Value::atom("c")]);
        let batch = grown.evaluate().unwrap();
        assert_eq!(m.extension_n("t", 2), batch.extension_n("t", 2));
        // Cumulative vs per-pass stats differ once updates happened.
        assert!(m.stats().iterations > m.last_stats().iterations);
    }

    #[test]
    fn model_reset_facts_keeps_rules_live() {
        let mut db = Database::new(Dialect::Elps);
        db.load_str("e(a, b). t(X, Y) :- e(X, Y).").unwrap();
        let mut m = db.evaluate().unwrap();
        assert_eq!(m.count("t", 2), 1);
        m.reset_facts();
        assert!(m.needs_update());
        m.update().unwrap();
        assert_eq!(m.count("t", 2), 0);
        m.add_fact("e", &[Value::atom("x"), Value::atom("y")])
            .unwrap();
        m.update().unwrap();
        assert!(m.holds("t", &[Value::atom("x"), Value::atom("y")]));
        assert_eq!(m.count("t", 2), 1);
    }

    #[test]
    fn session_answers_point_queries_demand_driven() {
        use lps_engine::QueryPath;
        let mut db = Database::new(Dialect::Elps);
        db.load_str(
            "e(a, b). e(b, c). e(c, d).
             t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        )
        .unwrap();
        let mut s = db.session().unwrap();
        let ans = s.query("t", &[Some(Value::atom("b")), None]).unwrap();
        assert_eq!(ans.path, QueryPath::Demand);
        assert_eq!(ans.rows.len(), 2, "b reaches c and d");
        assert_eq!(ans.stats.magic_facts_seeded, 1);
        // The cached plan serves the next constant without recompiling.
        let ans = s.query("t", &[Some(Value::atom("a")), None]).unwrap();
        assert_eq!(ans.stats.adornments_compiled, 0);
        assert_eq!(ans.rows.len(), 3);
        // Unknown predicates answer empty instead of erroring.
        let ans = s.query("nosuch", &[None]).unwrap();
        assert!(ans.rows.is_empty());
        // Forcing the extension materializes; queries then read the
        // model.
        s.update().unwrap();
        let ans = s.query("t", &[Some(Value::atom("c")), None]).unwrap();
        assert_eq!(ans.path, QueryPath::Materialized);
        assert_eq!(ans.rows, vec![vec![Value::atom("c"), Value::atom("d")]]);
    }

    #[test]
    fn session_answers_conjunctive_queries() {
        use lps_engine::QueryPath;
        let mut db = Database::new(Dialect::Elps);
        db.load_str(
            "r(x1, {p, q}). r(x2, {q}).
             s(X, Y) :- r(X, Ys), Y in Ys.",
        )
        .unwrap();
        let mut m = db.session().unwrap();
        let ans = m.query_str("s(X, q), r(X, Ys).").unwrap();
        assert_eq!(ans.path, QueryPath::Demand);
        assert_eq!(ans.columns, vec!["X", "Ys"]);
        assert_eq!(ans.rows.len(), 2);
        // Ground goal: one empty row means yes, none means no.
        let yes = m.query_str("s(x1, p).").unwrap();
        assert_eq!(yes.rows, vec![Vec::<Value>::new()]);
        let no = m.query_str("s(x2, p).").unwrap();
        assert!(no.rows.is_empty());
    }

    #[test]
    fn session_query_falls_back_on_negation() {
        use lps_engine::QueryPath;
        let mut db = Database::new(Dialect::StratifiedElps);
        db.load_str(
            "node(a). node(b). e(a, b).
             reach(a). reach(Y) :- reach(X), e(X, Y).
             un(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let mut s = db.session().unwrap();
        let ans = s.query("un", &[None]).unwrap();
        assert_eq!(ans.path, QueryPath::Fallback);
        assert_eq!(ans.stats.demand_fallbacks, 1);
        assert!(ans.rows.is_empty(), "all nodes reachable");
        // Demand answers and model answers agree on the monotone part.
        let ans = s.query("reach", &[Some(Value::atom("b"))]).unwrap();
        assert_eq!(ans.rows, vec![vec![Value::atom("b")]]);
    }

    #[test]
    fn dialect_violations_surface_from_evaluate() {
        let mut db = Database::new(Dialect::Elps);
        db.load_str("p(X) :- q(X), not r(X).").unwrap();
        assert!(matches!(
            db.evaluate().unwrap_err(),
            CoreError::InvalidClause { .. }
        ));
    }
}
