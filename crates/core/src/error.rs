//! Unified error type for the core language layer.

use std::fmt;

use lps_engine::EngineError;
use lps_syntax::{Span, SyntaxError};

/// Errors from parsing, validation, sort checking, transformation, or
/// evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// Lexing/parsing failure.
    Syntax(SyntaxError),
    /// Sort error in LPS mode (the two-sorted logic of §2.1).
    Sort {
        /// What went wrong.
        message: String,
        /// Where.
        span: Span,
    },
    /// A clause violates the dialect's well-formedness rules
    /// (Definition 5 and the dialect restrictions).
    InvalidClause {
        /// What went wrong.
        message: String,
        /// Where.
        span: Span,
    },
    /// Error surfaced from the evaluation engine.
    Engine(EngineError),
}

impl CoreError {
    /// Convenience constructor.
    pub fn invalid(span: Span, message: impl Into<String>) -> Self {
        CoreError::InvalidClause {
            message: message.into(),
            span,
        }
    }

    /// Convenience constructor for sort errors.
    pub fn sort(span: Span, message: impl Into<String>) -> Self {
        CoreError::Sort {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Syntax(e) => write!(f, "{e}"),
            CoreError::Sort { message, .. } => write!(f, "sort error: {message}"),
            CoreError::InvalidClause { message, .. } => write!(f, "invalid clause: {message}"),
            CoreError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<SyntaxError> for CoreError {
    fn from(e: SyntaxError) -> Self {
        CoreError::Syntax(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_each_variant() {
        let s: CoreError = SyntaxError::new(Span::point(0), "boom").into();
        assert!(s.to_string().contains("boom"));
        let e: CoreError = EngineError::IterationLimit { limit: 3 }.into();
        assert!(e.to_string().contains("3"));
        assert!(CoreError::sort(Span::point(0), "mixed sorts")
            .to_string()
            .contains("mixed sorts"));
        assert!(CoreError::invalid(Span::point(0), "bad head")
            .to_string()
            .contains("bad head"));
    }
}
