//! The Theorem-6 compiler: positive-formula bodies → pure LPS.
//!
//! Two implementations are provided:
//!
//! * [`compile_positive_paper`] — the *literal* inductive construction
//!   from the proof of Theorem 6 (binary conjunction/disjunction
//!   splits, an auxiliary predicate per connective). On the paper's
//!   `union` example this yields exactly the 11-clause program of
//!   Example 9.
//! * [`normalize_program`] — an optimized compiler producing far fewer
//!   auxiliary predicates: conjunctions of atoms stay inline,
//!   disjunction/complex-negation/quantified-subformula cases get
//!   auxiliaries, and top-level existentials inline as membership
//!   literals. Its output is what the engine evaluates.
//!
//! Both preserve the paper's semantics; experiment E4 measures the
//! difference in auxiliary-predicate count and evaluation cost.
//!
//! **Scope subtlety** (§4.1 of the paper): `(∀x∈X)(A ∧ B)` is *not*
//! `A ∧ (∀x∈X)B` when `X` may be empty, so neither compiler ever
//! hoists a conjunct out of a quantifier. Likewise `∃` *inside* a `∀`
//! is chosen per element, so it is compiled through an auxiliary
//! predicate rather than inlined (inlining is only valid at the top
//! level of a clause body, where the clause closure makes it an
//! outer existential).

use lps_syntax::{Clause, CmpOp, Formula, HeadArg, HeadAtom, Item, Literal, Program, Span, Term};

use crate::error::CoreError;
use crate::fresh::FreshNames;

/// Result of compiling one clause: the replacement clauses, in order
/// (auxiliary definitions first).
pub type Compiled = Vec<Clause>;

fn var(name: &str) -> Term {
    Term::Var(name.to_owned(), Span::default())
}

fn head_of(pred: &str, vars: &[String]) -> HeadAtom {
    HeadAtom {
        pred: pred.to_owned(),
        args: vars.iter().map(|v| HeadArg::Term(var(v))).collect(),
        span: Span::default(),
    }
}

fn pred_lit(pred: &str, vars: &[String]) -> Formula {
    Formula::Lit(Literal::Pred(
        pred.to_owned(),
        vars.iter().map(|v| var(v)).collect(),
        Span::default(),
    ))
}

fn clause(head: HeadAtom, body: Option<Formula>) -> Clause {
    Clause {
        head,
        body,
        span: Span::default(),
    }
}

/// Compile a whole program with the paper's construction. Clauses
/// whose bodies are already in Definition-5 form pass through; others
/// are replaced by `f(A :- B)`.
pub fn compile_positive_paper(program: &Program) -> Result<Program, CoreError> {
    let mut fresh = FreshNames::for_program(program);
    let mut items = Vec::new();
    for item in &program.items {
        match item {
            Item::Decl(d) => items.push(Item::Decl(d.clone())),
            Item::Clause(c) => {
                for out in compile_clause_paper(c, &mut fresh)? {
                    items.push(Item::Clause(out));
                }
            }
        }
    }
    Ok(Program { items })
}

/// The paper's `f(A :- B)` on a single clause.
pub fn compile_clause_paper(c: &Clause, fresh: &mut FreshNames) -> Result<Compiled, CoreError> {
    let Some(body) = &c.body else {
        return Ok(vec![c.clone()]);
    };
    if !body.is_positive() {
        return Err(CoreError::invalid(
            c.span,
            "Theorem 6 applies to positive formulas only (Definition 12)",
        ));
    }
    let mut out = Vec::new();
    f_construct(c.head.clone(), body.clone(), fresh, &mut out);
    Ok(out)
}

/// Cases 1–5 of the proof of Theorem 6.
fn f_construct(head: HeadAtom, body: Formula, fresh: &mut FreshNames, out: &mut Vec<Clause>) {
    match body {
        // Case 1: atomic.
        Formula::Lit(_) => out.push(clause(head, Some(body))),
        // Case 2: C₁ ∧ C₂ (n-ary folded as binary, like the proof).
        Formula::And(mut fs) => {
            if fs.len() == 1 {
                let only = fs.pop().expect("len checked");
                f_construct(head, only, fresh, out);
                return;
            }
            let c1 = fs.remove(0);
            let c2 = Formula::and(fs);
            let n1 = fresh.pred("aux");
            let n2 = fresh.pred("aux");
            let v1 = c1.free_vars();
            let v2 = c2.free_vars();
            f_construct(head_of(&n1, &v1), c1, fresh, out);
            f_construct(head_of(&n2, &v2), c2, fresh, out);
            out.push(clause(
                head,
                Some(Formula::and(vec![pred_lit(&n1, &v1), pred_lit(&n2, &v2)])),
            ));
        }
        // Case 3: C₁ ∨ C₂.
        Formula::Or(mut fs) => {
            if fs.len() == 1 {
                let only = fs.pop().expect("len checked");
                f_construct(head, only, fresh, out);
                return;
            }
            let c1 = fs.remove(0);
            let c2 = Formula::or(fs);
            let n1 = fresh.pred("aux");
            let n2 = fresh.pred("aux");
            let v1 = c1.free_vars();
            let v2 = c2.free_vars();
            f_construct(head_of(&n1, &v1), c1, fresh, out);
            f_construct(head_of(&n2, &v2), c2, fresh, out);
            out.push(clause(head.clone(), Some(pred_lit(&n1, &v1))));
            out.push(clause(head, Some(pred_lit(&n2, &v2))));
        }
        // Case 4: (∃x∈X)C — A :- N(x̄, x) ∧ x ∈ X.
        Formula::Exists {
            var: x,
            set,
            body: c,
            ..
        } => {
            let n = fresh.pred("aux");
            // Free variables of C, with x included (the proof's
            // (n+1)-ary predicate); keep x last for readability.
            let mut vars = c.free_vars();
            vars.retain(|v| v != &x);
            vars.push(x.clone());
            f_construct(head_of(&n, &vars), *c, fresh, out);
            out.push(clause(
                head,
                Some(Formula::and(vec![
                    pred_lit(&n, &vars),
                    Formula::Lit(Literal::Cmp(CmpOp::In, var(&x), set, Span::default())),
                ])),
            ));
        }
        // Case 5: (∀x∈X)C — A :- (∀x∈X) N(x̄, x).
        Formula::Forall {
            var: x,
            set,
            body: c,
            ..
        } => {
            let n = fresh.pred("aux");
            let mut vars = c.free_vars();
            vars.retain(|v| v != &x);
            vars.push(x.clone());
            f_construct(head_of(&n, &vars), *c, fresh, out);
            out.push(clause(
                head,
                Some(Formula::Forall {
                    var: x.clone(),
                    set,
                    body: Box::new(pred_lit(&n, &vars)),
                    span: Span::default(),
                }),
            ));
        }
        Formula::Not(..) => unreachable!("checked positive"),
    }
}

// ---------------------------------------------------------------------
// Optimized normalizer.
// ---------------------------------------------------------------------

/// A flattened body item produced by the normalizer.
enum Flat {
    /// A plain literal.
    Lit(Literal),
    /// A negated literal (StratifiedElps only).
    Neg(Literal),
    /// A quantifier group: binder prefix over literal items.
    Group {
        binders: Vec<(String, Term)>,
        inner: Vec<Flat>,
    },
}

/// Normalize every clause of a program into evaluable shape: bodies
/// become conjunctions of (possibly negated) literals plus at most one
/// `(∀…)` group whose inner part is again literals. Top-level
/// disjunctions split the clause; disjunctions/existentials/complex
/// negations *under* a quantifier are compiled into auxiliary
/// predicates **guarded by the clause's positive context literals**,
/// which keeps the auxiliaries range-restricted (a deviation from the
/// paper's unguarded construction, recorded in DESIGN.md §4; the
/// unguarded construction is available as [`compile_positive_paper`]).
pub fn normalize_program(program: &Program) -> Result<Program, CoreError> {
    let mut fresh = FreshNames::for_program(program);
    let mut items = Vec::new();
    for item in &program.items {
        match item {
            Item::Decl(d) => items.push(Item::Decl(d.clone())),
            Item::Clause(c) => {
                for out in normalize_clause(c, &mut fresh)? {
                    items.push(Item::Clause(out));
                }
            }
        }
    }
    Ok(Program { items })
}

/// Normalize one clause (auxiliary clauses emitted first).
pub fn normalize_clause(c: &Clause, fresh: &mut FreshNames) -> Result<Compiled, CoreError> {
    let Some(body) = &c.body else {
        return Ok(vec![c.clone()]);
    };
    // Distribute top-level disjunctions: A :- P ∧ (C₁ ∨ C₂) splits into
    // A :- P ∧ C₁ and A :- P ∧ C₂ (least-model preserving).
    let bodies = distribute_or(body);
    let mut out = Vec::new();
    for b in bodies {
        normalize_one(c, &b, fresh, &mut out)?;
    }
    Ok(out)
}

/// Expand top-level (conjunctive-position) disjunctions into a list of
/// disjunction-free-at-top-level bodies.
fn distribute_or(body: &Formula) -> Vec<Formula> {
    let conjuncts: Vec<&Formula> = match body {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    };
    let mut alternatives: Vec<Vec<Formula>> = vec![Vec::new()];
    for c in conjuncts {
        match c {
            Formula::Or(ds) => {
                let mut next = Vec::with_capacity(alternatives.len() * ds.len());
                for alt in &alternatives {
                    for d in ds {
                        // Each disjunct may itself be a conjunction
                        // with further Ors: recurse.
                        for sub in distribute_or(d) {
                            let mut a = alt.clone();
                            a.push(sub);
                            next.push(a);
                        }
                    }
                }
                alternatives = next;
            }
            other => {
                for alt in &mut alternatives {
                    alt.push(other.clone());
                }
            }
        }
    }
    alternatives.into_iter().map(Formula::and).collect()
}

fn normalize_one(
    c: &Clause,
    body: &Formula,
    fresh: &mut FreshNames,
    out: &mut Vec<Clause>,
) -> Result<(), CoreError> {
    // Context literals: positive, non-builtin predicate atoms at the
    // top level. These guard auxiliary-clause bodies so aux heads stay
    // range-restricted.
    let conjuncts: Vec<&Formula> = match body {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    };
    let ctx: Vec<Formula> = conjuncts
        .iter()
        .filter(|f| {
            matches!(f, Formula::Lit(Literal::Pred(name, args, _))
                if lps_engine::Builtin::from_pred_name(name, args.len()).is_none())
        })
        .map(|f| (*f).clone())
        .collect();

    let mut aux = Vec::new();
    let items = flatten(body.clone(), false, &ctx, fresh, &mut aux)?;
    // Keep at most one group inline; wrap the rest in auxiliaries.
    let mut lits: Vec<Formula> = Vec::new();
    let mut group_seen = false;
    for item in items {
        match item {
            Flat::Lit(l) => lits.push(Formula::Lit(l)),
            Flat::Neg(l) => lits.push(Formula::Not(Box::new(Formula::Lit(l)), Span::default())),
            Flat::Group { binders, inner } => {
                let formula = rebuild_group(&binders, inner);
                if group_seen {
                    emit_aux_with_ctx(&formula, &ctx, fresh, &mut aux, &mut lits)?;
                } else {
                    group_seen = true;
                    lits.push(formula);
                }
            }
        }
    }
    let new_body = Formula::and(lits);
    out.append(&mut aux);
    out.push(Clause {
        head: c.head.clone(),
        body: Some(new_body),
        span: c.span,
    });
    Ok(())
}

/// Create an auxiliary predicate for `formula`, guarded by `ctx`, and
/// push the call literal onto `lits`.
fn emit_aux_with_ctx(
    formula: &Formula,
    ctx: &[Formula],
    fresh: &mut FreshNames,
    aux: &mut Vec<Clause>,
    lits: &mut Vec<Formula>,
) -> Result<(), CoreError> {
    let n = fresh.pred("aux");
    let vars = formula.free_vars();
    let mut guarded = ctx.to_vec();
    guarded.push(formula.clone());
    for c in normalize_clause(
        &clause(head_of(&n, &vars), Some(Formula::and(guarded))),
        fresh,
    )? {
        aux.push(c);
    }
    lits.push(pred_lit(&n, &vars));
    Ok(())
}

fn rebuild_group(binders: &[(String, Term)], inner: Vec<Flat>) -> Formula {
    let inner_fs: Vec<Formula> = inner
        .into_iter()
        .map(|i| match i {
            Flat::Lit(l) => Formula::Lit(l),
            Flat::Neg(l) => Formula::Not(Box::new(Formula::Lit(l)), Span::default()),
            Flat::Group { .. } => unreachable!("nested groups are aux-wrapped"),
        })
        .collect();
    let mut f = Formula::and(inner_fs);
    for (v, set) in binders.iter().rev() {
        f = Formula::Forall {
            var: v.clone(),
            set: set.clone(),
            body: Box::new(f),
            span: Span::default(),
        };
    }
    f
}

/// Flatten a formula into items. `inside_forall` controls the
/// existential-inlining rule (see module docs).
fn flatten(
    f: Formula,
    inside_forall: bool,
    ctx: &[Formula],
    fresh: &mut FreshNames,
    aux: &mut Vec<Clause>,
) -> Result<Vec<Flat>, CoreError> {
    match f {
        Formula::Lit(l) => Ok(vec![Flat::Lit(l)]),
        Formula::And(fs) => {
            let mut out = Vec::new();
            for f in fs {
                out.extend(flatten(f, inside_forall, ctx, fresh, aux)?);
            }
            Ok(out)
        }
        Formula::Not(inner, span) => {
            match *inner {
                Formula::Lit(l) => Ok(vec![Flat::Neg(l)]),
                complex => {
                    // Complex negation: auxiliary predicate, negated.
                    if !complex.is_positive() {
                        return Err(CoreError::invalid(
                            span,
                            "nested negation is not supported; stratify explicitly",
                        ));
                    }
                    let mut lits = Vec::new();
                    emit_aux_with_ctx(&complex, ctx, fresh, aux, &mut lits)?;
                    let Formula::Lit(call) = lits.pop().expect("one call emitted") else {
                        unreachable!("emit_aux_with_ctx pushes a literal");
                    };
                    Ok(vec![Flat::Neg(call)])
                }
            }
        }
        Formula::Or(fs) => {
            // Under a quantifier (or left over after distribution):
            // auxiliary predicate with one guarded clause per disjunct.
            let whole = Formula::Or(fs);
            let n = fresh.pred("aux");
            let vars = whole.free_vars();
            let Formula::Or(fs) = whole else {
                unreachable!()
            };
            for disjunct in fs {
                let mut guarded = ctx.to_vec();
                guarded.push(disjunct);
                for c in normalize_clause(
                    &clause(head_of(&n, &vars), Some(Formula::and(guarded))),
                    fresh,
                )? {
                    aux.push(c);
                }
            }
            Ok(vec![Flat::Lit(Literal::Pred(
                n,
                vars.iter().map(|v| var(v)).collect(),
                Span::default(),
            ))])
        }
        Formula::Exists {
            var: x,
            set,
            body,
            span,
        } => {
            if inside_forall {
                // Per-element choice: compile through an auxiliary.
                let whole = Formula::Exists {
                    var: x,
                    set,
                    body,
                    span,
                };
                let mut lits = Vec::new();
                emit_aux_with_ctx(&whole, ctx, fresh, aux, &mut lits)?;
                let Formula::Lit(call) = lits.pop().expect("one call emitted") else {
                    unreachable!();
                };
                Ok(vec![Flat::Lit(call)])
            } else {
                // Top level: the clause closure makes this an outer
                // existential — inline a membership literal. Rename the
                // binder to avoid clashes.
                let x2 = fresh.var("Ex");
                let renamed = rename_var(*body, &x, &x2);
                let mut out = vec![Flat::Lit(Literal::Cmp(CmpOp::In, var(&x2), set, span))];
                out.extend(flatten(renamed, false, ctx, fresh, aux)?);
                Ok(out)
            }
        }
        Formula::Forall {
            var: x,
            set,
            body,
            span,
        } => {
            if inside_forall {
                // A ∀ nested below another ∀ but not in chain position
                // is aux-wrapped.
                let whole = Formula::Forall {
                    var: x,
                    set,
                    body,
                    span,
                };
                let mut lits = Vec::new();
                emit_aux_with_ctx(&whole, ctx, fresh, aux, &mut lits)?;
                let Formula::Lit(call) = lits.pop().expect("one call emitted") else {
                    unreachable!();
                };
                return Ok(vec![Flat::Lit(call)]);
            }
            // Collect the ∀-chain: ∀x₁∈X₁ … ∀xₙ∈Xₙ body (renaming
            // binders to fresh names to eliminate shadowing).
            let mut binders = Vec::new();
            let mut cur_var = x;
            let mut cur_set = set;
            let mut cur_body = body;
            loop {
                let x2 = fresh.var("Q");
                let renamed = rename_var(*cur_body, &cur_var, &x2);
                binders.push((x2, cur_set));
                match renamed {
                    Formula::Forall {
                        var: v2,
                        set: s2,
                        body: b2,
                        ..
                    } => {
                        cur_var = v2;
                        cur_set = s2;
                        cur_body = b2;
                    }
                    other => {
                        *cur_body = other;
                        break;
                    }
                }
            }
            let inner_items = flatten(*cur_body, true, ctx, fresh, aux)?;
            // Inner groups were aux-wrapped by the recursion, so all
            // items are literals.
            Ok(vec![Flat::Group {
                binders,
                inner: inner_items,
            }])
        }
    }
}

/// Rename free occurrences of `from` to `to` in a formula.
fn rename_var(f: Formula, from: &str, to: &str) -> Formula {
    match f {
        Formula::Lit(l) => Formula::Lit(rename_lit(l, from, to)),
        Formula::Not(inner, span) => Formula::Not(Box::new(rename_var(*inner, from, to)), span),
        Formula::And(fs) => Formula::And(fs.into_iter().map(|f| rename_var(f, from, to)).collect()),
        Formula::Or(fs) => Formula::Or(fs.into_iter().map(|f| rename_var(f, from, to)).collect()),
        Formula::Forall {
            var,
            set,
            body,
            span,
        } => {
            let set = rename_term(set, from, to);
            if var == from {
                // Shadowed below: stop renaming in the body.
                Formula::Forall {
                    var,
                    set,
                    body,
                    span,
                }
            } else {
                Formula::Forall {
                    var,
                    set,
                    body: Box::new(rename_var(*body, from, to)),
                    span,
                }
            }
        }
        Formula::Exists {
            var,
            set,
            body,
            span,
        } => {
            let set = rename_term(set, from, to);
            if var == from {
                Formula::Exists {
                    var,
                    set,
                    body,
                    span,
                }
            } else {
                Formula::Exists {
                    var,
                    set,
                    body: Box::new(rename_var(*body, from, to)),
                    span,
                }
            }
        }
    }
}

fn rename_lit(l: Literal, from: &str, to: &str) -> Literal {
    match l {
        Literal::Pred(p, args, span) => Literal::Pred(
            p,
            args.into_iter().map(|t| rename_term(t, from, to)).collect(),
            span,
        ),
        Literal::Cmp(op, lhs, rhs, span) => Literal::Cmp(
            op,
            rename_term(lhs, from, to),
            rename_term(rhs, from, to),
            span,
        ),
    }
}

fn rename_term(t: Term, from: &str, to: &str) -> Term {
    match t {
        Term::Var(v, span) => {
            if v == from {
                Term::Var(to.to_owned(), span)
            } else {
                Term::Var(v, span)
            }
        }
        Term::App(f, args, span) => Term::App(
            f,
            args.into_iter().map(|t| rename_term(t, from, to)).collect(),
            span,
        ),
        Term::SetLit(elems, span) => Term::SetLit(
            elems
                .into_iter()
                .map(|t| rename_term(t, from, to))
                .collect(),
            span,
        ),
        Term::BinOp(op, l, r, span) => Term::BinOp(
            op,
            Box::new(rename_term(*l, from, to)),
            Box::new(rename_term(*r, from, to)),
            span,
        ),
        other => other,
    }
}

/// Count clauses and distinct auxiliary predicates introduced relative
/// to `original` — the quantities Example 9 reports (11 clauses for
/// `union`). Used by experiment E4.
pub fn compilation_size(original: &Program, compiled: &Program) -> (usize, usize) {
    use std::collections::HashSet;
    let orig_preds: HashSet<&str> = original.clauses().map(|c| c.head.pred.as_str()).collect();
    let clauses = compiled.clauses().count();
    let aux_preds: HashSet<&str> = compiled
        .clauses()
        .map(|c| c.head.pred.as_str())
        .filter(|p| !orig_preds.contains(p))
        .collect();
    (clauses, aux_preds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_pure_lps_body;
    use lps_syntax::parse_program;

    const UNION_SRC: &str = "union(X, Y, Z) :- \
        (forall U in X: U in Z), \
        (forall V in Y: V in Z), \
        (forall W in Z: (W in X ; W in Y)).";

    #[test]
    fn paper_construction_on_union_yields_eleven_clauses() {
        // Example 9: "The proof gives us the program [of 11 clauses]".
        let p = parse_program(UNION_SRC).unwrap();
        let compiled = compile_positive_paper(&p).unwrap();
        let (clauses, aux) = compilation_size(&p, &compiled);
        assert_eq!(clauses, 11, "Example 9's clause count");
        assert!(aux >= 8, "Example 9 introduces N1..N9-style auxiliaries");
        // Every output clause is pure LPS.
        for c in compiled.clauses() {
            if let Some(b) = &c.body {
                assert!(
                    is_pure_lps_body(b),
                    "not pure: {}",
                    lps_syntax::pretty::pretty_clause(c)
                );
            }
        }
    }

    #[test]
    fn paper_construction_passes_through_definition_5_bodies() {
        let p = parse_program("subset(X, Y) :- forall U in X: U in Y.").unwrap();
        let compiled = compile_positive_paper(&p).unwrap();
        // The ∀ case still introduces one auxiliary (the proof is
        // uniform), so expect exactly 2 clauses.
        assert_eq!(compiled.clauses().count(), 2);
    }

    #[test]
    fn paper_construction_rejects_negation() {
        let p = parse_program("p(X) :- not q(X).").unwrap();
        assert!(compile_positive_paper(&p).is_err());
    }

    #[test]
    fn normalizer_keeps_pure_clauses_small() {
        let p = parse_program("subset(X, Y) :- forall U in X: U in Y.").unwrap();
        let n = normalize_program(&p).unwrap();
        assert_eq!(n.clauses().count(), 1, "no auxiliaries needed");
    }

    #[test]
    fn normalizer_on_union_is_smaller_than_paper() {
        let p = parse_program(UNION_SRC).unwrap();
        let paper = compile_positive_paper(&p).unwrap();
        let opt = normalize_program(&p).unwrap();
        let (paper_clauses, _) = compilation_size(&p, &paper);
        let (opt_clauses, opt_aux) = compilation_size(&p, &opt);
        assert!(
            opt_clauses < paper_clauses,
            "{opt_clauses} < {paper_clauses}"
        );
        // Only the disjunction under the third quantifier and the
        // extra groups need auxiliaries.
        assert!(opt_aux <= 3, "got {opt_aux} auxiliaries");
    }

    #[test]
    fn normalizer_inlines_top_level_exists() {
        let p = parse_program("nonempty(X) :- exists U in X: U = U.").unwrap();
        let n = normalize_program(&p).unwrap();
        assert_eq!(n.clauses().count(), 1);
        let c = n.clauses().next().unwrap();
        let printed = lps_syntax::pretty::pretty_clause(c);
        assert!(printed.contains("in X"), "inlined membership: {printed}");
    }

    #[test]
    fn normalizer_auxiliarizes_exists_under_forall() {
        // ∀U∈X ∃V∈Y q(U,V): the ∃ must be per-U.
        let p = parse_program("p(X, Y) :- forall U in X: exists V in Y: q(U, V).").unwrap();
        let n = normalize_program(&p).unwrap();
        assert!(
            n.clauses().count() >= 2,
            "an auxiliary must carry the inner existential"
        );
        // The main clause keeps a ∀ whose body is the auxiliary.
        let main = n.clauses().last().unwrap();
        match main.body.as_ref().unwrap() {
            Formula::Forall { body, .. } => {
                assert!(matches!(**body, Formula::Lit(Literal::Pred(..))));
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn normalizer_handles_negated_literals() {
        let mut fresh = FreshNames::default();
        let p = parse_program("p(X) :- q(X), not r(X).").unwrap();
        let c = p.clauses().next().unwrap();
        let out = normalize_clause(c, &mut fresh).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn normalizer_distributes_top_level_disjunction() {
        let p = parse_program("p(X) :- q(X) ; r(X).").unwrap();
        let n = normalize_program(&p).unwrap();
        // p :- q. p :- r. — clause split, no auxiliaries.
        assert_eq!(n.clauses().count(), 2);
        for c in n.clauses() {
            assert_eq!(c.head.pred, "p");
        }
        // Conjoined context distributes into both copies.
        let p = parse_program("p(X) :- s(X), (q(X) ; r(X)).").unwrap();
        let n = normalize_program(&p).unwrap();
        assert_eq!(n.clauses().count(), 2);
        for c in n.clauses() {
            let printed = lps_syntax::pretty::pretty_clause(c);
            assert!(printed.contains("s(X)"), "{printed}");
        }
    }

    #[test]
    fn aux_clauses_are_context_guarded() {
        // Disjunction under a quantifier: the aux clauses must carry
        // the outer positive literal so they stay range-restricted.
        let p = parse_program("u(X, Y, Z) :- cand(X, Y, Z), forall W in Z: (W in X ; W in Y).")
            .unwrap();
        let n = normalize_program(&p).unwrap();
        let aux_clauses: Vec<String> = n
            .clauses()
            .filter(|c| c.head.pred.starts_with("aux"))
            .map(lps_syntax::pretty::pretty_clause)
            .collect();
        assert_eq!(aux_clauses.len(), 2, "{aux_clauses:?}");
        for c in &aux_clauses {
            assert!(c.contains("cand(X, Y, Z)"), "guarded: {c}");
        }
    }

    #[test]
    fn binder_shadowing_is_resolved_by_renaming() {
        // The outer U (from q) and the quantified U are different.
        let p = parse_program("p(U, X) :- q(U), forall U in X: r(U).").unwrap();
        let n = normalize_program(&p).unwrap();
        let main = n.clauses().last().unwrap();
        let printed = lps_syntax::pretty::pretty_clause(main);
        // The binder must have been renamed away from U.
        assert!(printed.contains("forall Q"), "renamed binder: {printed}");
        assert!(
            printed.contains("q(U)"),
            "outer occurrence intact: {printed}"
        );
    }

    #[test]
    fn forall_chain_merges_into_one_group() {
        let p = parse_program("disj(X, Y) :- forall U in X: forall V in Y: U != V.").unwrap();
        let n = normalize_program(&p).unwrap();
        assert_eq!(n.clauses().count(), 1, "chains need no auxiliaries");
    }

    #[test]
    fn two_sibling_groups_wrap_the_second() {
        let p = parse_program("p(X, Y) :- (forall U in X: q(U)), (forall V in Y: r(V)).").unwrap();
        let n = normalize_program(&p).unwrap();
        assert_eq!(n.clauses().count(), 2, "second group becomes an auxiliary");
    }

    #[test]
    fn compiled_output_reparses() {
        let p = parse_program(UNION_SRC).unwrap();
        for program in [
            compile_positive_paper(&p).unwrap(),
            normalize_program(&p).unwrap(),
        ] {
            let printed = lps_syntax::pretty_program(&program);
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("{}\n{printed}", e.render(&printed)));
            assert_eq!(
                lps_syntax::pretty_program(&reparsed),
                printed,
                "round-trip stable"
            );
        }
    }
}
