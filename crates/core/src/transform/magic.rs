//! Demand-driven query answering — the surface half of the magic-set
//! subsystem.
//!
//! The engine half ([`lps_engine::magic`]) rewrites the *lowered* rule
//! set for a query's bound/free pattern and caches the specialized
//! plan per adornment behind [`Engine::query`]. This module supplies
//! the surface-language entry points on top of it:
//!
//! * [`compile_query`] lowers a *conjunctive* goal written in the
//!   surface syntax — `p(X), q(X, {a}).` — into a temporary query
//!   rule `query#goal(vars…) :- p(X), q(X, {a})` whose head collects
//!   the goal's free variables in first-appearance order. Ground
//!   terms inside the goal become magic seeds, so
//!   `tc(a, X), color(X, blue).` derives only from `a` onward. The
//!   head predicate lives in the engine's `#`-namespace, which the
//!   lexer cannot produce, so it never collides with program
//!   predicates. Downstream, the engine canonicalizes the rule to its
//!   *shape* (`lps_engine::magic::lift_goal`: the rule modulo
//!   top-level constants, constants lifted into the magic seed tuple)
//!   and caches the compiled magic-set plan per shape — so a stream
//!   of [`crate::Model::query_str`] calls that differ only in
//!   constants compiles one plan, and under demand retention shares
//!   one retained demand space, giving conjunctive goals the same
//!   amortization point queries have.
//! * [`QueryAnswersRef`] is the borrowed, *interned-row* result view:
//!   answer rows stay as engine `TermId`s next to the store that owns
//!   them, so counting, membership tests, and benchmark loops pay no
//!   per-atom `String` allocation.
//! * [`QueryAnswers`] is the owned, [`Value`]-level result form used
//!   by [`crate::Model::query`] and [`crate::Model::query_str`] (and
//!   by `lpsi`) — a [`QueryAnswersRef::to_owned`] wrapper.
//!
//! Goals may use everything a normalized rule body may: positive and
//! negated literals, comparisons, arithmetic, and a restricted
//! universal quantifier group. Non-monotone goals (negation, or any
//! predicate reaching negation/grouping) are answered soundly through
//! the engine's full-materialization fallback — see
//! `DESIGN.md` §3 for the fallback discipline.

use lps_engine::pattern::{Pattern, VarId};
use lps_engine::{Engine, EvalStats, QueryPath, QueryResult, RowSet, Rule};
use lps_syntax::{parse_program, Span};
use lps_term::{TermId, TermStore, Value};

use crate::error::CoreError;
use crate::lower::lower_clause;

/// A compiled conjunctive goal: the temporary rule to hand to
/// [`Engine::query_rule`], plus the answer column names.
#[derive(Debug)]
pub struct QueryGoal {
    /// `query#goal(vars…) :- goal-conjunction`.
    pub rule: Rule,
    /// The goal's free variable names, in head-argument order. Empty
    /// for a fully ground goal (whose single empty answer row means
    /// "yes").
    pub columns: Vec<String>,
}

/// Owned answers of a demand query, lifted to [`Value`]s and sorted.
#[derive(Debug, Clone)]
pub struct QueryAnswers {
    /// Column names for conjunctive goals (empty for single-predicate
    /// queries, whose rows follow the predicate's argument order).
    pub columns: Vec<String>,
    /// The matching rows, sorted.
    pub rows: Vec<Vec<Value>>,
    /// Which engine pipeline answered (demand, model, or fallback).
    pub path: QueryPath,
    /// Work the query performed.
    pub stats: EvalStats,
}

impl QueryAnswers {
    /// Lift an engine-level result into owned values.
    pub fn from_result(engine: &Engine, columns: Vec<String>, res: QueryResult) -> Self {
        QueryAnswersRef::from_result(engine.store(), columns, res).to_owned()
    }
}

/// Borrowed, interned-row view of a query's answers: the rows stay in
/// the engine's flat [`RowSet`] (one allocation per answer set, rows
/// are `TermId` slices), paired with the [`TermStore`] that interns
/// them. The hot path — row counts, existence checks, streaming rows
/// through a benchmark — never builds a [`Value`] (and so never
/// allocates a `String` per atom); [`QueryAnswersRef::value_row`]
/// lifts single rows and [`QueryAnswersRef::to_owned`] the whole set
/// on demand.
#[derive(Debug)]
pub struct QueryAnswersRef<'a> {
    store: &'a TermStore,
    /// Column names for conjunctive goals (empty for single-predicate
    /// queries, whose rows follow the predicate's argument order).
    pub columns: Vec<String>,
    /// The matching rows, interned, in derivation order (unsorted —
    /// sorting happens at the `Value` level in
    /// [`QueryAnswersRef::to_owned`]).
    pub rows: RowSet,
    /// Which engine pipeline answered (demand, model, or fallback).
    pub path: QueryPath,
    /// Work the query performed.
    pub stats: EvalStats,
}

impl<'a> QueryAnswersRef<'a> {
    /// Wrap an engine-level result without marshalling any row.
    pub fn from_result(store: &'a TermStore, columns: Vec<String>, res: QueryResult) -> Self {
        QueryAnswersRef {
            store,
            columns,
            rows: res.rows,
            path: res.path,
            stats: res.stats,
        }
    }

    /// Number of answer rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the query had no answers ("no" for ground goals).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate over the interned rows.
    pub fn iter(&self) -> impl Iterator<Item = &[TermId]> {
        self.rows.iter()
    }

    /// The store the rows are interned in (for custom rendering).
    pub fn store(&self) -> &'a TermStore {
        self.store
    }

    /// Lift one interned row to owned [`Value`]s.
    pub fn value_row(&self, row: &[TermId]) -> Vec<Value> {
        row.iter()
            .map(|&id| Value::from_store(self.store, id))
            .collect()
    }

    /// Lift every row to the owned, sorted [`Value`]-level form.
    pub fn to_owned(&self) -> QueryAnswers {
        let mut rows: Vec<Vec<Value>> = self.iter().map(|row| self.value_row(row)).collect();
        rows.sort();
        QueryAnswers {
            columns: self.columns.clone(),
            rows,
            path: self.path,
            stats: self.stats,
        }
    }
}

/// Compile a conjunctive goal written in the surface syntax (ending
/// with `.`) into a [`QueryGoal`]. The goal is lowered exactly like a
/// rule body — predicates register on the fly, arithmetic flattens to
/// builtin literals — and the answer head collects its free variables
/// (compiler temporaries and quantifier-bound variables are
/// existential and do not appear).
pub fn compile_query(engine: &mut Engine, body: &str) -> Result<QueryGoal, CoreError> {
    let wrapped = format!("query_goal :- {body}");
    let parsed = parse_program(&wrapped)?;
    let mut clauses = parsed.clauses();
    let clause = clauses
        .next()
        .ok_or_else(|| CoreError::invalid(Span::default(), "empty query"))?;
    if clauses.next().is_some() {
        return Err(CoreError::invalid(
            Span::default(),
            "a query is a single goal conjunction, e.g. `?- p(X), q(X, {a}).`",
        ));
    }
    if clause.body.is_none() {
        return Err(CoreError::invalid(clause.span, "empty query body"));
    }
    let mut rule = lower_clause(engine, clause)?;

    // Answer columns: free variables of the goal — outer-literal
    // variables plus the quantifier group's free variables — in first
    // appearance order, minus `$`-prefixed compiler temporaries.
    let mut head_vars: Vec<VarId> = Vec::new();
    for lit in &rule.outer {
        for v in lit.vars() {
            if !head_vars.contains(&v) {
                head_vars.push(v);
            }
        }
    }
    if let Some(q) = &rule.quant {
        for v in q.free_vars() {
            if !head_vars.contains(&v) {
                head_vars.push(v);
            }
        }
    }
    head_vars.retain(|v| !rule.var_names[v.index()].starts_with('$'));
    let columns: Vec<String> = head_vars
        .iter()
        .map(|v| rule.var_names[v.index()].clone())
        .collect();

    // Graft the real head: a dedicated predicate in the engine's
    // unparseable `#`-namespace (the parsed `query_goal` head atom was
    // only a vehicle for lowering the body).
    rule.head = engine.pred("query#goal", head_vars.len());
    rule.head_args = head_vars.into_iter().map(Pattern::Var).collect();
    Ok(QueryGoal { rule, columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_engine::EvalConfig;

    fn engine_with(src: &str) -> Engine {
        let program = parse_program(src).unwrap();
        let mut engine = Engine::new(EvalConfig::default());
        crate::lower::load_program(&mut engine, &program).unwrap();
        engine
    }

    #[test]
    fn compile_query_collects_free_vars_in_order() {
        let mut e = engine_with("e(a, b). e(b, c). t(X, Y) :- e(X, Y).");
        let goal = compile_query(&mut e, "t(X, Y), e(Y, Z).").unwrap();
        assert_eq!(goal.columns, vec!["X", "Y", "Z"]);
        assert_eq!(goal.rule.head_args.len(), 3);
    }

    #[test]
    fn ground_goal_has_no_columns() {
        let mut e = engine_with("e(a, b).");
        let goal = compile_query(&mut e, "e(a, b).").unwrap();
        assert!(goal.columns.is_empty());
        assert_eq!(goal.rule.head_args.len(), 0);
    }

    #[test]
    fn quantifier_binders_are_not_answer_columns() {
        let mut e = engine_with("pair({a}, {a, b}).");
        let goal = compile_query(&mut e, "pair(X, Y), forall U in X: U in Y.").unwrap();
        assert_eq!(goal.columns, vec!["X", "Y"]);
    }

    #[test]
    fn arithmetic_temporaries_are_existential() {
        let mut e = engine_with("n(3). n(5).");
        let goal = compile_query(&mut e, "n(M), n(N), K = M + N - 1.").unwrap();
        assert_eq!(goal.columns, vec!["M", "N", "K"]);
    }

    #[test]
    fn end_to_end_demand_answers() {
        let mut e = engine_with(
            "e(a, b). e(b, c). e(c, d).
             t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        );
        let goal = compile_query(&mut e, "t(a, X), e(X, Y).").unwrap();
        let res = e.query_rule(goal.rule).unwrap();
        assert_eq!(res.path, QueryPath::Demand);
        // X ∈ {b, c} with a successor: (b,c), (c,d).
        assert_eq!(res.rows.len(), 2);
    }

    #[test]
    fn repeated_goals_share_one_conjunctive_plan() {
        let mut e = engine_with(
            "e(a, b). e(b, c). e(c, d).
             t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).",
        );
        let first = compile_query(&mut e, "t(a, X), e(X, Y).").unwrap();
        let res = e.query_rule(first.rule).unwrap();
        assert!(res.stats.adornments_compiled >= 1, "first goal compiles");
        assert_eq!(res.rows.len(), 2);
        // Same goal shape, different constant: the engine's
        // shape-keyed cache serves it without recompiling, continuing
        // over the retained demand space.
        let second = compile_query(&mut e, "t(b, X), e(X, Y).").unwrap();
        let res = e.query_rule(second.rule).unwrap();
        assert_eq!(res.stats.adornments_compiled, 0, "shape-cache hit");
        assert_eq!(res.stats.demand_continuations, 1);
        assert_eq!(res.rows.len(), 1, "b → c → d");
        // Repeating the first goal is a zero-work read.
        let again = compile_query(&mut e, "t(a, X), e(X, Y).").unwrap();
        let res = e.query_rule(again.rule).unwrap();
        assert_eq!(res.stats.facts_derived, 0);
        assert_eq!(res.rows.len(), 2);
    }

    #[test]
    fn multiple_clauses_are_rejected() {
        let mut e = engine_with("e(a, b).");
        assert!(compile_query(&mut e, "e(X, Y). e(Y, X).").is_err());
    }
}
